#!/usr/bin/env python3
"""Section 4-5 reproduction: chip-level studies behind Evanesco's design.

Four experiments on the calibrated NAND physics model:

1. Figure 6  -- why one-shot reprogramming (OSR) fails on 3D NAND;
2. Figure 9  -- the pLock design-space exploration selecting (Vp4, 100us);
3. Figure 12 -- the bLock design-space exploration selecting (Vb6, 300us);
4. Figure 10 -- the open-interval effect that forces lazy erase.

Run:  python examples/chip_design_exploration.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import explore_block_design, explore_plock_design
from repro.core.design_space import RETENTION_DAYS_GRID
from repro.flash.geometry import CellType
from repro.flash.osr import OSR_CONDITIONS, osr_study
from repro.flash.reliability import (
    OPEN_INTERVAL_CONDITIONS,
    open_interval_penalty,
    open_interval_study,
)


def figure6() -> None:
    print("-- Figure 6: RBER of valid MSB pages under OSR " + "-" * 20)
    for cell_type in (CellType.MLC, CellType.TLC):
        study = osr_study(cell_type, n_wordlines=400, seed=0)
        rows = [
            [
                cond,
                f"{study.box_stats(cond)['median']:.2f}",
                f"{study.box_stats(cond)['max']:.2f}",
                f"{study.fraction_exceeding_limit(cond):.1%}",
            ]
            for cond in OSR_CONDITIONS
        ]
        print(
            render_table(
                ["condition", "median", "max", "unreadable pages"],
                rows,
                title=f"{cell_type.name} at {study.pe_cycles} P/E cycles "
                "(normalized RBER, ECC limit = 1.0)",
            )
        )
        print()


def figure9() -> None:
    print("-- Figure 9: pLock design space " + "-" * 35)
    result = explore_plock_design()
    for point in result.points:
        tag = f" ({point.label})" if point.label else ""
        print(
            f"  {point.pulse}: disturb x{point.data_rber_factor:.3f}, "
            f"program {point.program_success:.1%} -> {point.region}{tag}"
        )
    sel = result.selected_pulse
    print(f"  selected: ({result.selected_label}) {sel} -> tpLock = "
          f"{sel.latency_us:.0f} us, 9-cell majority flags\n")


def figure12() -> None:
    print("-- Figure 12: bLock design space " + "-" * 34)
    result = explore_block_design()
    years5 = list(RETENTION_DAYS_GRID).index(1825.0)
    for label, pulse in result.candidates.items():
        v5 = result.vth_curves[label][years5]
        verdict = "OK" if v5 > 3.0 else "fails retention"
        print(f"  ({label}) {pulse}: SSL Vth after 5y = {v5:.2f} V -> {verdict}")
    sel = result.selected_pulse
    print(f"  selected: ({result.selected_label}) {sel} -> tbLock = "
          f"{sel.latency_us:.0f} us\n")


def figure10() -> None:
    print("-- Figure 10: the open-interval effect " + "-" * 28)
    points = open_interval_study()
    for cond in OPEN_INTERVAL_CONDITIONS:
        penalty = open_interval_penalty(points, cond)
        print(f"  {cond}: +{penalty:.0%} RBER at the longest interval")
    print("  -> blocks must be erased lazily, right before reuse; an")
    print("     immediate-erase sanitizer is not deployable on 3D NAND.\n")


def main() -> None:
    figure6()
    figure9()
    figure12()
    figure10()
    print("Conclusion: destroying data physically either corrupts the")
    print("wordline's surviving pages (OSR) or collides with the lazy-")
    print("erase requirement; blocking access with spare-cell flags does")
    print("neither -- which is exactly Evanesco's design point.")


if __name__ == "__main__":
    main()
