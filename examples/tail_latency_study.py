#!/usr/bin/env python3
"""Tail-latency study: what deallocation really costs a reader.

Figure 14 compares average IOPS, but the user-visible difference
between the sanitization techniques lives in the latency *tail*: one
erSSD file deletion puts a train of 3.5-ms erases on the critical
path, and any read unlucky enough to land behind one waits.  Evanesco's
claim is that 100-us pLock pulses -- deferrable and drained in idle
windows -- make that tail disappear.

This example replays the identical MailServer trace (create/deliver/
delete: trim-heavy) through the closed-loop discrete-event engine on
all four variants, each under its honest best scheduling policy, with
the runtime sanitizer proving that deferral never leaves a secured
page readable.

Run:  python examples/tail_latency_study.py
"""

from __future__ import annotations

from repro.analysis.latency import format_tail_latency, run_tail_latency_study
from repro.ssd.config import scaled_config


def main() -> None:
    config = scaled_config(blocks_per_chip=16, wordlines_per_block=8)
    results = run_tail_latency_study(config, workload="MailServer")

    print(format_tail_latency(results))
    print()

    er = results["erSSD"].report.latency["read"]["p99_us"]
    sec = results["secSSD"].report.latency["read"]["p99_us"]
    checker = results["secSSD"].report.checker
    print(f"erSSD p99 host read:  {er:8.0f} us  (reads wait out in-service "
          "erase trains)")
    print(f"secSSD p99 host read: {sec:8.0f} us  "
          f"({er / sec:.0f}x lower: pulses deferred, GC erases suspended)")
    print(f"sanitizer: {checker.get('probes', 0)} unreadability probes, "
          f"{checker.get('violations')} violations with deferral active")


if __name__ == "__main__":
    main()
