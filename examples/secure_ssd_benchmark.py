#!/usr/bin/env python3
"""Section 7 reproduction: SecureSSD vs. the physical-sanitization SSDs.

Replays the four Table 2 workloads on five SSD variants and prints the
Figure 14 comparison (normalized IOPS and WAF) plus the Section 1
headline ratios.

Run:  python examples/secure_ssd_benchmark.py           (quick, ~1 min)
      python examples/secure_ssd_benchmark.py --full    (larger device)
"""

from __future__ import annotations

import statistics
import sys

from repro.analysis import (
    format_figure14,
    format_secure_fraction,
    render_table,
    run_figure14,
    run_secure_fraction_sweep,
)
from repro.ssd import scaled_config


def main() -> None:
    full = "--full" in sys.argv
    config = (
        scaled_config(blocks_per_chip=40, wordlines_per_block=32)
        if full
        else scaled_config(blocks_per_chip=20, wordlines_per_block=16)
    )
    print(
        f"device: {config.logical_bytes / 2**20:.0f} MiB logical, "
        f"{config.n_channels} channels x {config.chips_per_channel} chips, "
        f"{config.geometry.pages_per_block} pages/block"
    )
    print("timing: tREAD=80us tPROG=700us tBERS=3.5ms tpLock=100us tbLock=300us\n")

    results = run_figure14(config, write_multiplier=1.0)
    print(format_figure14(results))

    rows, ratios, erases, plocks = [], [], [], []
    for workload, fig in results.items():
        ratio = fig.iops_ratio("secSSD", "scrSSD")
        erase_red = fig.erase_reduction_vs("scrSSD")
        plock_red = fig.plock_reduction_from_block_lock()
        ratios.append(ratio)
        erases.append(erase_red)
        plocks.append(plock_red)
        rows.append(
            [workload, f"{ratio:.2f}x", f"{erase_red:.0%}", f"{plock_red:.0%}"]
        )
    rows.append(
        [
            "average",
            f"{statistics.mean(ratios):.2f}x",
            f"{statistics.mean(erases):.0%}",
            f"{statistics.mean(plocks):.0%}",
        ]
    )
    print()
    print(
        render_table(
            ["workload", "IOPS vs scrSSD", "erase reduction", "pLock cut by bLock"],
            rows,
            title="Headline ratios (paper: 2.9x avg / 4.8x max IOPS; "
            "62% avg / 79% max erases; 28% avg / 57% max pLocks)",
        )
    )

    print()
    sweep = run_secure_fraction_sweep(
        config, fractions=(0.6, 0.8, 1.0), write_multiplier=1.0
    )
    print(format_secure_fraction(sweep))
    print()
    print("Takeaway: erase- and scrub-based sanitization pay for immediacy")
    print("with relocation storms; Evanesco's on-chip locks sanitize at a")
    print("latency small enough to hide behind normal device parallelism.")


if __name__ == "__main__":
    main()
