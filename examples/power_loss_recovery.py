#!/usr/bin/env python3
"""Crash-consistency walkthrough: do sanitization guarantees survive
power loss?

A crash wipes the FTL's RAM tables; recovery rebuilds them by scanning
every readable page's spare-area annotations. That scan is exactly where
a plain SSD resurrects "deleted" data -- and where Evanesco's flash-cell
lock flags keep sanitized data dead with no metadata at all.

Run:  python examples/power_loss_recovery.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.ftl.recovery import PowerLossRecovery
from repro.host import FileSystem
from repro.security import RawChipAttacker
from repro.ssd import SSD, scaled_config


def crash_scenario(variant: str):
    config = scaled_config(blocks_per_chip=16, wordlines_per_block=8)
    ssd = SSD(config, variant)
    fs = FileSystem(ssd)

    fs.create("tax-returns")
    fs.append("tax-returns", 10)
    fs.create("notes")
    fs.append("notes", 6)
    secret_fid = fs.lookup("tax-returns").fid
    fs.delete("tax-returns")          # secure delete...
    # ... and the machine loses power before GC ever erases anything

    recovery = PowerLossRecovery(ssd.ftl)
    recovery.simulate_power_loss()
    report = recovery.recover()

    attacker = RawChipAttacker(ssd)
    ghost_pages = attacker.recover_file(secret_fid)
    notes_ok = all(
        ssd.ftl.mapped_gppa(lpa) >= 0 for lpa in fs.lookup("notes").lpas
    )
    return report, ghost_pages, notes_ok


def main() -> None:
    rows = []
    for variant in ("baseline", "secSSD"):
        report, ghosts, notes_ok = crash_scenario(variant)
        rows.append(
            [
                variant,
                report.pages_scanned,
                report.live_pages_recovered,
                report.locked_pages_skipped,
                "intact" if notes_ok else "LOST",
                f"{len(ghosts)} pages" if ghosts else "none",
            ]
        )
    print(
        render_table(
            ["variant", "pages scanned", "live recovered", "locked skipped",
             "surviving file", "deleted data resurrected"],
            rows,
            title="Power-loss recovery after a secure delete",
        )
    )
    print()
    print("On the plain SSD the recovery scan cannot distinguish the deleted")
    print("file's pages from live ones -- the 'deleted' tax returns come back.")
    print("On SecureSSD the pAP flags are flash cells: they survive the crash,")
    print("the scan reads zeros, and the deletion stays permanent.")


if __name__ == "__main__":
    main()
