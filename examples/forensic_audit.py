#!/usr/bin/env python3
"""Threat-model walkthrough: auditing C1/C2 against every SSD variant.

Simulates a mixed application workload (secure records + O_INSEC cache
files), then runs the Section 5.1 raw-chip attacker against each SSD
variant and audits the paper's two sanitization conditions:

* C1 -- no content of a deleted file is recoverable;
* C2 -- no stale version of a live page is recoverable.

Run:  python examples/forensic_audit.py
"""

from __future__ import annotations

import random

from repro.analysis import render_table
from repro.host import FileSystem, OpenFlags
from repro.security import SanitizationAuditor, collect_live_versions
from repro.ssd import SSD, scaled_config

VARIANTS = ("baseline", "erSSD", "scrSSD", "secSSD_nobLock", "secSSD")


def run_app(ssd: SSD, seed: int = 7) -> tuple[FileSystem, set[object]]:
    """A small records application with secure and insecure files."""
    fs = FileSystem(ssd)
    rng = random.Random(seed)
    deleted: set[object] = set()

    for i in range(6):
        fs.create(f"record-{i}")               # secure by default
        fs.append(f"record-{i}", 8)
    for i in range(3):
        fs.create(f"cache-{i}", OpenFlags.O_INSEC)
        fs.append(f"cache-{i}", 8)

    serial = 6
    for _ in range(300):
        roll = rng.random()
        records = [f.name for f in fs.files() if f.name.startswith("record-")]
        if roll < 0.6 and records:
            fs.overwrite_whole(rng.choice(records))
        elif roll < 0.9:
            fs.overwrite_whole(f"cache-{rng.randrange(3)}")
        elif records:
            # retire one record and open a replacement
            name = rng.choice(records)
            deleted.add(fs.lookup(name).fid)
            fs.delete(name)
            fs.create(f"record-{serial}")
            fs.append(f"record-{serial}", 8)
            serial += 1
    return fs, deleted


def main() -> None:
    config = scaled_config(blocks_per_chip=20, wordlines_per_block=8)
    rows = []
    for variant in VARIANTS:
        ssd = SSD(config, variant)
        fs, deleted = run_app(ssd)
        # C2 applies to the *secure* files only (O_INSEC data is exempt)
        secure_lpas = {
            lpa
            for info in fs.files()
            if info.secure
            for lpa in info.lpas
        }
        auditor = SanitizationAuditor(ssd)
        c1 = auditor.audit_deleted_files(deleted)
        c2 = auditor.audit_updated_lpas(collect_live_versions(ssd, secure_lpas))
        exposure = auditor.exposure_summary()
        rows.append(
            [
                variant,
                "PASS" if c1.clean else f"FAIL ({len(c1.violations)} pages)",
                "PASS" if c2.clean else f"FAIL ({len(c2.violations)} pages)",
                exposure["readable_pages"],
                f"{ssd.stats.plocks}/{ssd.stats.block_locks}",
                f"{ssd.stats.waf:.2f}",
            ]
        )
    print(
        render_table(
            ["variant", "C1 (deletes)", "C2 (updates)",
             "readable pages", "pLock/bLock", "WAF"],
            rows,
            title="Sanitization audit under the Section 5.1 attacker",
        )
    )
    print()
    print("Note: C1/C2 cover *secure* files only -- the O_INSEC cache files")
    print("deliberately remain recoverable on every variant, which is the")
    print("selective-security contract of Section 6.")


if __name__ == "__main__":
    main()
