#!/usr/bin/env python3
"""Quickstart: secure file deletion with Evanesco.

Walks the paper's core story end to end:

1. write a secret file to a plain SSD, delete it, and recover it with a
   raw-chip forensic attack (the Section 3 vulnerability);
2. do the same on SecureSSD and watch the attack come back empty;
3. peek at the device counters to see what the lock manager did.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SSD, scaled_config
from repro.host import FileSystem
from repro.security import RawChipAttacker


def demo(variant: str) -> None:
    print(f"=== {variant} " + "=" * (40 - len(variant)))
    config = scaled_config(blocks_per_chip=16, wordlines_per_block=8)
    ssd = SSD(config, variant=variant)
    fs = FileSystem(ssd)

    # the user saves a private photo, then deletes it
    fs.create("vacation-photo.jpg")
    fs.append("vacation-photo.jpg", 12)  # 12 x 16 KiB pages
    photo_id = fs.lookup("vacation-photo.jpg").fid
    fs.delete("vacation-photo.jpg")

    # ... later, an attacker de-solders the chips and reads them raw
    attacker = RawChipAttacker(ssd)
    recovered = attacker.recover_file(photo_id)
    if recovered:
        print(f"ATTACK SUCCEEDED: recovered {len(recovered)} pages of the "
              "'deleted' photo, e.g.", recovered[0].payload)
    else:
        print("attack failed: no page of the deleted photo is readable")

    stats = ssd.stats
    print(
        f"device counters: {stats.plocks} pLock, {stats.block_locks} bLock, "
        f"{stats.flash_erases} erases, WAF={stats.waf:.2f}"
    )
    print()


def main() -> None:
    demo("baseline")   # a standard SSD: deleted data lingers
    demo("secSSD")     # Evanesco: deleted data locks instantly

    print("Evanesco sanitizes at invalidation time: the deleted pages are")
    print("locked inside the flash chips and unlock only after the block")
    print("is physically erased -- C1 and C2 hold against the raw-chip")
    print("attacker, at the cost of a 100 us pLock per stale page.")


if __name__ == "__main__":
    main()
