#!/usr/bin/env python3
"""Section 3 reproduction: how many stale versions does a file leave?

Replays the Mobile, MailServer, and DBServer traces on a plain SSD with
the VerTrace profiler attached, then prints Table 1 (VAF / Tinsecure per
file class) and Figure 4-style trajectories for the most interesting
uni-version and multi-version files.

Run:  python examples/data_versioning_study.py
"""

from __future__ import annotations

from repro.analysis import (
    format_table1,
    run_timeplot_study,
    run_versioning_study,
)
from repro.ssd import scaled_config

WORKLOADS = ("Mobile", "MailServer", "DBServer")


def sparkline(series: list[int], width: int = 64) -> str:
    if not series:
        return ""
    peak = max(series) or 1
    chars = " .:-=+*#%@"
    step = max(1, len(series) // width)
    return "".join(
        chars[min(len(chars) - 1, int(series[i] / peak * (len(chars) - 1)))]
        for i in range(0, len(series), step)
    )


def main() -> None:
    config = scaled_config(blocks_per_chip=24, wordlines_per_block=16)
    print(f"device: {config.logical_bytes / 2**20:.0f} MiB logical, "
          f"{config.n_chips} chips, {config.geometry.pages_per_block} pages/block")
    print("protocol: fill 75 % of capacity, then write 4 capacities of traffic\n")

    summaries = {}
    for workload in WORKLOADS:
        result = run_versioning_study(config, workload, write_multiplier=4.0)
        summaries[workload] = result.summary
        print(f"{workload}: replayed "
              f"{result.run.stats.host_writes} page writes, "
              f"WAF={result.run.waf:.2f}")
    print()
    print(format_table1(summaries))
    print()

    print("Figure 4: valid/invalid page trajectories")
    for workload, cls in (("Mobile", "uv"), ("DBServer", "mv")):
        plots = run_timeplot_study(config, workload, write_multiplier=4.0)
        series = plots[cls]
        valid = [s.valid for s in series]
        invalid = [s.invalid for s in series]
        label = "fmb (append-only)" if cls == "uv" else "fdb (hot-updated)"
        print(f"\n  {workload} / {label}")
        print(f"    valid   |{sparkline(valid)}|  peak {max(valid)}")
        print(f"    invalid |{sparkline(invalid)}|  peak {max(invalid)}")

    print()
    print("Takeaway: even never-updated files leave stale copies (GC moves),")
    print("and hot-updated files keep several times their size in stale")
    print("versions for most of the device's lifetime -- the data that")
    print("Evanesco's pLock/bLock make unreadable.")


if __name__ == "__main__":
    main()
