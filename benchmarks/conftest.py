"""Shared benchmark configuration.

Benchmarks reproduce the paper's tables and figures on capacity-scaled
devices (see DESIGN.md): the topology, page size, and timing constants
match Section 7; block count and wordline count are reduced so a full
run finishes in minutes.  Every benchmark prints the regenerated
table/figure rows so the output can be compared with the paper.
"""

from __future__ import annotations

import pytest

from repro.ssd.config import SSDConfig, scaled_config


def pytest_configure(config):
    # one round per benchmark: these are macro-benchmarks reproducing
    # experiments, not micro-benchmarks hunting nanoseconds.
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False


@pytest.fixture(scope="session")
def versioning_config() -> SSDConfig:
    """Device used for the Section 3 study (Table 1 / Figure 4)."""
    return scaled_config(blocks_per_chip=24, wordlines_per_block=16)


@pytest.fixture(scope="session")
def system_config() -> SSDConfig:
    """Device used for the Section 7 evaluation (Figure 14)."""
    return scaled_config(blocks_per_chip=28, wordlines_per_block=24)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
