"""Figure 10 -- RBER vs. open-interval length.

Paper: RBER grows monotonically with how long a block stayed erased
before programming; at the longest tracked interval it is ~30 % larger
than at zero interval, and the effect compounds with P/E cycling and
retention.  This motivates lazy erase -- and therefore bLock.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.flash.reliability import (
    OPEN_INTERVAL_BINS,
    OPEN_INTERVAL_CONDITIONS,
    open_interval_penalty,
    open_interval_study,
)


def test_fig10_open_interval(benchmark):
    points = run_once(benchmark, open_interval_study)

    rows = []
    for cond in OPEN_INTERVAL_CONDITIONS:
        series = sorted(
            (p for p in points if p.condition == cond), key=lambda p: p.x_value
        )
        rows.append(
            [cond, *(f"{p.normalized_rber:.3f}" for p in series)]
        )
    print()
    print(
        render_table(
            ["condition", *OPEN_INTERVAL_BINS],
            rows,
            title="Figure 10: normalized RBER vs open-interval length",
        )
    )

    for cond in OPEN_INTERVAL_CONDITIONS:
        series = sorted(
            (p for p in points if p.condition == cond), key=lambda p: p.x_value
        )
        values = [p.rber for p in series]
        assert values == sorted(values), cond
        penalty = open_interval_penalty(points, cond)
        print(f"{cond}: +{penalty:.0%} at the longest interval")
        # paper's headline: ~30 % penalty at the longest interval
        assert 0.10 <= penalty <= 0.60, cond

    # the cycled+aged series is the worst (Fig. 10 top curve)
    worst = [p for p in points if p.condition == OPEN_INTERVAL_CONDITIONS[2]]
    best = [p for p in points if p.condition == OPEN_INTERVAL_CONDITIONS[0]]
    assert min(p.rber for p in worst) > max(p.rber for p in best)
