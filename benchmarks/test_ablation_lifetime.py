"""Ablation -- SSD lifetime under each sanitization technique.

Section 1: "the amplified writes in erSSD and scrSSD can greatly degrade
the SSD lifetime"; secSSD "reduces the number of block erasures by up to
79 % (62 % on average)".  This benchmark projects how much host data each
variant's device can absorb before wearing out, under the same DBServer
trace.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.lifetime import LifetimeEstimate, WearStats, erase_reduction
from repro.analysis.tables import render_table
from repro.host.filesystem import FileSystem
from repro.host.trace import TraceReplayer
from repro.ssd.device import SSD
from repro.workloads import WORKLOADS

VARIANTS = ("baseline", "secSSD", "scrSSD", "erSSD")


def _run(variant: str, config):
    ssd = SSD(config, variant)
    generator = WORKLOADS["DBServer"](capacity_pages=config.logical_pages, seed=9)
    TraceReplayer(FileSystem(ssd)).replay(generator.ops(write_multiplier=1.0))
    return ssd.ftl


def test_ablation_lifetime(benchmark, versioning_config):
    ftls = run_once(
        benchmark, lambda: {v: _run(v, versioning_config) for v in VARIANTS}
    )

    estimates = {v: LifetimeEstimate.from_ftl(ftl) for v, ftl in ftls.items()}
    base = estimates["baseline"]
    rows = [
        [
            variant,
            est.wear.total_erases,
            f"{est.erases_per_host_page:.4f}",
            f"{est.wear.evenness:.2f}",
            f"{est.relative_to(base):.2f}x",
        ]
        for variant, est in estimates.items()
    ]
    print()
    print(
        render_table(
            ["variant", "erases", "erases/host page", "wear evenness",
             "lifetime vs baseline"],
            rows,
            title="Lifetime ablation (DBServer; endurance = 1K P/E, TLC)",
        )
    )

    # secSSD wears the device like the baseline does
    assert estimates["secSSD"].relative_to(base) > 0.9
    # scrubbing costs real lifetime; erasing costs an order of magnitude
    assert estimates["scrSSD"].relative_to(base) < 0.75
    assert estimates["erSSD"].relative_to(base) < 0.25
    # the Section 1 erase-reduction headline vs the reprogram baseline
    red = erase_reduction(
        WearStats.from_ftl(ftls["secSSD"]), WearStats.from_ftl(ftls["scrSSD"])
    )
    assert 0.30 <= red <= 0.90