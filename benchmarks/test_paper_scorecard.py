"""The reproduction scorecard: every tracked paper value in one table.

Runs the chip-level studies and one medium system sweep, evaluates all
measurements against :mod:`repro.analysis.paper_targets`, and prints the
full paper-vs-measured scorecard.  This is the one benchmark to run when
asking "does the reproduction still match the paper?".
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.paper_targets import evaluate, format_scorecard
from repro.analysis.scorecard import collect_measurements


def test_paper_scorecard(benchmark, system_config):
    measurements = run_once(benchmark, lambda: collect_measurements(system_config))
    checks = evaluate(measurements)
    print()
    print(format_scorecard(checks))

    assert checks, "scorecard must not be empty"
    failed = [c for c in checks if not c.passed]
    assert not failed, "targets failed: " + ", ".join(
        f"{c.target.experiment}/{c.target.metric}={c.measured}" for c in failed
    )
    # every registered target with a measurement must have been checked
    assert len(checks) == len(measurements)
