"""Ablation -- OSR damage vs. cell density (the Section 1 extrapolation).

"As the MLC technique advances to support more bits per cell ...
reprogram operations quickly degrade the reliability of flash memory."
This ablation runs the Figure 6 experiment across MLC, TLC, and QLC and
shows reprogram-based sanitization aging out of viability, while
Evanesco's flag cells are SLC-mode and density-independent.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.core.flag_cells import FlagCellModel, default_plock_pulse
from repro.flash.geometry import CellType, PageRole
from repro.flash.osr import osr_study

DENSITIES = (CellType.MLC, CellType.TLC, CellType.QLC)


def _adjacent_study(cell_type: CellType, seed: int = 21):
    """Sanitize the low page(s), measure the page adjacent to them.

    MLC/TLC keep Figure 6's exact setup (sanitize all but the top page);
    on QLC we measure the MSB page -- the survivor whose read boundary
    borders the reprogram targets -- since the distant TSB boundary
    would understate the damage.
    """
    roles = PageRole.for_cell_type(cell_type)
    if cell_type is CellType.QLC:
        return osr_study(
            cell_type,
            n_wordlines=300,
            seed=seed,
            sanitize_roles=roles[:2],
            measure_role=PageRole.MSB,
        )
    return osr_study(cell_type, n_wordlines=300, seed=seed)


def test_ablation_osr_vs_density(benchmark):
    studies = run_once(
        benchmark, lambda: {ct: _adjacent_study(ct) for ct in DENSITIES}
    )

    rows = []
    for ct, study in studies.items():
        rows.append(
            [
                ct.name,
                study.pe_cycles,
                f"{study.box_stats('after_sanitize')['median']:.2f}",
                f"{study.fraction_exceeding_limit('after_sanitize'):.1%}",
                f"{study.fraction_exceeding_limit('after_retention'):.1%}",
            ]
        )
    print()
    print(
        render_table(
            ["density", "P/E point", "median RBER after OSR",
             "unreadable (fresh)", "unreadable (1y)"],
            rows,
            title="OSR damage to the surviving page vs cell density",
        )
    )

    # the paper's claim: beyond MLC, reprogram-based sanitization stops
    # being viable.  MLC loses a few percent of its neighbours; TLC and
    # QLC lose the majority outright (their margins cannot absorb the
    # one-shot pulse's spread), and retention only makes it worse.
    fresh = {
        ct: studies[ct].fraction_exceeding_limit("after_sanitize")
        for ct in DENSITIES
    }
    aged = {
        ct: studies[ct].fraction_exceeding_limit("after_retention")
        for ct in DENSITIES
    }
    assert fresh[CellType.MLC] < 0.15
    assert fresh[CellType.TLC] >= 0.999
    assert fresh[CellType.QLC] >= 0.5
    for ct in DENSITIES:
        assert aged[ct] >= fresh[ct] - 1e-9

    # Evanesco's flag cells, by contrast, are density-independent: the
    # same SLC-mode pulse qualifies for every chip generation
    model = FlagCellModel()
    pulse = default_plock_pulse()
    assert model.programs_reliably(pulse)
    assert model.flag_failure_prob(pulse, 1825.0) < 0.01
