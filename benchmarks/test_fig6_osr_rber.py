"""Figure 6 -- RBER of MSB pages under one-shot reprogramming (OSR).

Paper anchors:
* MLC (3K P/E): 7.4 % of MSB pages exceed the ECC limit right after the
  LSB page is sanitized; after 1-year retention most exceed it, some by
  more than 1.5x.
* TLC (1K P/E): after sanitizing LSB+CSB, *all* MSB pages are
  unreadable, before and after retention.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.flash.geometry import CellType
from repro.flash.osr import OSR_CONDITIONS, osr_study

N_WORDLINES = 600


def _report(study):
    rows = []
    for cond in OSR_CONDITIONS:
        stats = study.box_stats(cond)
        rows.append(
            [
                cond,
                f"{stats['q1']:.2f}",
                f"{stats['median']:.2f}",
                f"{stats['q3']:.2f}",
                f"{stats['max']:.2f}",
                f"{study.fraction_exceeding_limit(cond):.1%}",
            ]
        )
    return render_table(
        ["condition", "q1", "median", "q3", "max", "frac > ECC limit"],
        rows,
        title=f"Figure 6 ({study.cell_type.name}, {study.pe_cycles} P/E cycles), "
        "normalized RBER of MSB pages",
    )


def test_fig6a_mlc(benchmark):
    study = run_once(
        benchmark, lambda: osr_study(CellType.MLC, n_wordlines=N_WORDLINES, seed=42)
    )
    print()
    print(_report(study))

    assert study.fraction_exceeding_limit("initial") == 0.0
    frac = study.fraction_exceeding_limit("after_sanitize")
    assert 0.03 <= frac <= 0.13  # paper: 7.4 %
    assert study.fraction_exceeding_limit("after_retention") > 0.5
    assert study.box_stats("after_retention")["max"] > 1.5


def test_fig6b_tlc(benchmark):
    study = run_once(
        benchmark, lambda: osr_study(CellType.TLC, n_wordlines=N_WORDLINES, seed=42)
    )
    print()
    print(_report(study))

    assert study.fraction_exceeding_limit("initial") == 0.0
    # paper: ALL TLC MSB pages become unreadable
    assert study.fraction_exceeding_limit("after_sanitize") == 1.0
    assert study.fraction_exceeding_limit("after_retention") == 1.0
