"""Ablation -- GC victim-selection policy (DESIGN.md design choice).

The paper's FTL collects greedily.  This ablation quantifies the choice
by replaying the same MailServer trace under four policies and compares
write amplification, erase counts, and IOPS.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.lifetime import WearStats
from repro.analysis.tables import render_table
from repro.ftl.gc_policies import GC_POLICIES
from repro.host.filesystem import FileSystem
from repro.host.trace import TraceReplayer
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSD
from repro.workloads import WORKLOADS


def _run_policy(policy: str, base: SSDConfig):
    config = SSDConfig(
        n_channels=base.n_channels,
        chips_per_channel=base.chips_per_channel,
        geometry=base.geometry,
        overprovision=base.overprovision,
        gc_policy=policy,
    )
    ssd = SSD(config, "baseline")
    generator = WORKLOADS["MailServer"](
        capacity_pages=config.logical_pages, seed=5
    )
    TraceReplayer(FileSystem(ssd)).replay(generator.ops(write_multiplier=1.5))
    return ssd


def test_ablation_gc_policy(benchmark, versioning_config):
    runs = run_once(
        benchmark,
        lambda: {
            policy: _run_policy(policy, versioning_config)
            for policy in sorted(GC_POLICIES)
        },
    )

    rows = []
    metrics = {}
    for policy, ssd in runs.items():
        wear = WearStats.from_ftl(ssd.ftl)
        result = ssd.result()
        metrics[policy] = (result.waf, result.iops, wear)
        rows.append(
            [
                policy,
                f"{result.waf:.2f}",
                f"{result.iops:,.0f}",
                wear.total_erases,
                f"{wear.cv:.3f}",
            ]
        )
    print()
    print(
        render_table(
            ["policy", "WAF", "IOPS", "erases", "wear CV"],
            rows,
            title="GC policy ablation (MailServer, identical trace)",
        )
    )

    # FIFO ignores liveness: it must not beat the liveness-aware policies
    assert metrics["fifo"][0] >= metrics["greedy"][0] - 0.05
    assert metrics["fifo"][0] >= metrics["cost-benefit"][0] - 0.05
    # wear-aware matches greedy's WAF (the tie-break term is sub-page)
    assert abs(metrics["wear-aware"][0] - metrics["greedy"][0]) < 0.15
    # and spreads wear at least as evenly
    assert metrics["wear-aware"][2].cv <= metrics["greedy"][2].cv + 0.05
    # lower WAF -> higher IOPS, across the policy spread
    ordered = sorted(metrics.values(), key=lambda m: m[0])
    assert ordered[0][1] >= ordered[-1][1]
