"""Figure 11(b) -- RBER vs. center Vth of the SSL.

Paper: programming a block's SSL cells above ~3 V cuts the bitline
current enough that any read of the block fails (RBER beyond the ECC
limit), which is the physical mechanism behind bLock.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis.tables import render_table
from repro.core.ssl_lock import read_rber_vs_ssl_vth
from repro.flash import constants

VTH_GRID = tuple(np.arange(0.5, 5.01, 0.25))


def test_fig11b_rber_vs_ssl_vth(benchmark):
    def sweep():
        return {
            pe: [read_rber_vs_ssl_vth(v, pe) for v in VTH_GRID]
            for pe in (0, 1000)
        }

    curves = run_once(benchmark, sweep)
    rows = [
        [f"{pe} P/E", *(f"{r:.2f}" for r in series)]
        for pe, series in curves.items()
    ]
    print()
    print(
        render_table(
            ["condition", *(f"{v:.2f}V" for v in VTH_GRID)],
            rows,
            title="Figure 11(b): normalized RBER vs SSL center Vth",
        )
    )

    for pe, series in curves.items():
        assert series == sorted(series), "RBER must rise with SSL Vth"

    # below the cutoff reads succeed; above, they fail (at 1K P/E)
    aged = dict(zip(VTH_GRID, curves[1000]))
    assert aged[2.0] < 1.0
    cutoff_idx = VTH_GRID.index(constants.SSL_CUTOFF_VTH)
    assert curves[1000][cutoff_idx] >= 0.95
    assert aged[4.0] > 1.0
    # cycling shifts the whole curve up
    assert all(a > f for a, f in zip(curves[1000], curves[0]))
