"""Figure 9 -- pLock design-space exploration.

Panels:
(a/b) the (program voltage x latency) grid with Region I pruned for data
      disturbance; (c) flag-cell program success with Region II pruned;
(d)   retention errors of the six candidates at k = 9, which qualifies
      combination (ii) = (Vp4, 100 us) as the final design.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.core.design_space import RETENTION_DAYS_GRID, explore_plock_design
from repro.core.qualification import qualify_candidates
from repro.flash import constants


def test_fig9_plock_design_space(benchmark):
    result = run_once(benchmark, explore_plock_design)

    rows = [
        [
            str(p.pulse),
            f"{p.data_rber_factor:.3f}",
            f"{p.program_success:.3f}",
            p.region,
            p.label or "",
        ]
        for p in result.points
    ]
    print()
    print(
        render_table(
            ["pulse", "data RBER factor", "flag success", "region", "label"],
            rows,
            title="Figure 9(a-c): pLock design grid",
        )
    )
    day_headers = [f"{d:g}d" for d in RETENTION_DAYS_GRID]
    rows = [
        [label, *(f"{e:.2f}" for e in result.retention_errors[label])]
        for label in result.candidates
    ]
    print()
    print(
        render_table(
            ["candidate", *day_headers],
            rows,
            title="Figure 9(d): expected flipped flag cells (k=9) vs retention",
        )
    )
    quals = qualify_candidates(result.candidates, n_flags=20_000)
    rows = [
        [
            label,
            f"{q.mean_errors:.2f}",
            q.max_errors,
            f"{q.fail_open_rate:.2%}",
            "qualifies" if q.qualifies else "FAILS",
        ]
        for label, q in quals.items()
    ]
    print()
    print(
        render_table(
            ["candidate", "mean errors", "max observed", "fail-open rate",
             "5-year verdict"],
            rows,
            title="Figure 9(d) Monte-Carlo qualification (20K flags, k=9, 5y)",
        )
    )
    print(f"selected: ({result.selected_label}) {result.selected_pulse}")

    # the Monte-Carlo qualification agrees with the paper's observations
    assert quals["vi"].max_errors >= 5      # "(vi) leads to 5 retention errors"
    assert quals["i"].mean_errors <= 2.0    # "(i) leads to at most 2 errors"
    assert not quals["vi"].qualifies
    assert quals["ii"].fail_open_rate < 0.02

    # the paper's pruning structure and final selection
    regions = [p.region for p in result.points]
    assert regions.count("region-i") == 4
    assert regions.count("region-ii") == 5
    assert result.selected_label == "ii"
    assert result.selected_pulse.latency_us == constants.T_PLOCK_US
    # Fig. 9(c) anchor: the weakest pulse programs ~47.3 % of flag cells
    weakest = min(result.points, key=lambda p: (p.pulse.vpgm, p.pulse.latency_us))
    assert abs(weakest.program_success - 0.473) < 0.05
    # Fig. 9(d) anchor: (vi) loses ~5 of 9 cells at 5 years, (i) at most ~2
    five_years = list(RETENTION_DAYS_GRID).index(constants.RETENTION_5Y_DAYS)
    assert result.retention_errors["vi"][five_years] > 3.0
    assert result.retention_errors["i"][five_years] <= 2.0
