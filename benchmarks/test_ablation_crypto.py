"""Ablation -- encryption-based sanitization vs. Evanesco (Section 8).

Key-per-version encryption sanitizes by deleting keys: zero flash
operations, so it should be *faster* than secSSD -- but it pays an AES
pipeline on every transfer, and it collapses under the paper's threat
model, which grants the attacker the encryption keys.  This benchmark
quantifies both sides on the same MailServer trace.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.host.filesystem import FileSystem
from repro.host.trace import TraceReplayer
from repro.security.attacker import KeyCompromiseAttacker
from repro.ssd.device import SSD
from repro.workloads import WORKLOADS

VARIANTS = ("baseline", "secSSD", "cryptSSD")


def _run(variant: str, config):
    ssd = SSD(config, variant)
    attacker = KeyCompromiseAttacker(ssd)
    generator = WORKLOADS["MailServer"](
        capacity_pages=config.logical_pages, seed=3
    )
    ops = list(generator.ops(write_multiplier=1.0))
    replayer = TraceReplayer(FileSystem(ssd))
    # cold boot midway: the attacker snapshots keys, the workload keeps
    # deleting files afterwards
    half = len(ops) // 2
    replayer.replay(ops[:half])
    snapshot = attacker.snapshot_keys()
    replayer.replay(ops[half:])
    return ssd, attacker, snapshot


def test_ablation_crypto_vs_evanesco(benchmark, versioning_config):
    runs = run_once(
        benchmark, lambda: {v: _run(v, versioning_config) for v in VARIANTS}
    )

    rows = []
    exposure = {}
    results = {}
    for variant, (ssd, attacker, snapshot) in runs.items():
        result = ssd.result()
        results[variant] = result
        live_lpas = {
            ssd.ftl.l2p.reverse(g)
            for g in range(ssd.config.physical_pages)
            if ssd.ftl.l2p.reverse(g) >= 0
        }
        image = attacker.image_with_keys(snapshot)
        stale = [
            p for p in image.pages
            if p.lpa is not None
            and (p.lpa not in live_lpas or p.payload != _live_payload(ssd, p.lpa))
        ]
        exposure[variant] = len(stale)
        rows.append(
            [
                variant,
                f"{result.iops:,.0f}",
                f"{result.waf:.2f}",
                ssd.stats.plocks + ssd.stats.block_locks,
                getattr(ssd.ftl, "key_deletions", 0),
                len(stale),
            ]
        )
    print()
    print(
        render_table(
            ["variant", "IOPS", "WAF", "lock ops", "key deletions",
             "stale pages exposed to key-compromise attacker"],
            rows,
            title="Encryption vs Evanesco under the Section 5.1 threat model",
        )
    )

    # sanitization cost: cryptSSD issues zero flash lock ops...
    crypt_ssd = runs["cryptSSD"][0]
    assert crypt_ssd.stats.plocks == 0
    assert crypt_ssd.ftl.key_deletions > 0
    # ...but the crypto engine taxes every transfer
    assert results["cryptSSD"].iops < results["baseline"].iops
    # security: the key-compromise attacker strips cryptSSD bare while
    # Evanesco (and even the plain baseline's *live* data) stay intact
    assert exposure["cryptSSD"] > 0
    assert exposure["secSSD"] == 0
    # the paper's complementarity argument in one line:
    assert exposure["secSSD"] < exposure["cryptSSD"]


def _live_payload(ssd, lpa):
    gppa = ssd.ftl.mapped_gppa(lpa)
    if gppa < 0:
        return None
    chip_id, ppn = ssd.ftl.split_gppa(gppa)
    payload = ssd.ftl.chips[chip_id].read_page(ppn).data
    decrypt = getattr(ssd.ftl, "decrypt", None)
    return decrypt(payload) if decrypt else payload
