"""Figure 12 -- bLock design-space exploration.

Paper: from a 6-voltage x 3-latency grid, Region I (cannot program the
SSL past the 3 V cutoff) is pruned; the six candidates' SSL Vth decay
curves qualify combinations against the retention requirement, selecting
(ii) = (Vb6, 300 us) -> tbLock = 300 us.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.core.design_space import RETENTION_DAYS_GRID, explore_block_design
from repro.flash import constants


def test_fig12_block_design_space(benchmark):
    result = run_once(benchmark, explore_block_design)

    rows = [
        [str(p.pulse), f"{p.initial_vth:.2f}", p.region, p.label or ""]
        for p in result.points
    ]
    print()
    print(
        render_table(
            ["pulse", "initial SSL Vth", "region", "label"],
            rows,
            title="Figure 12(a): bLock design grid",
        )
    )
    day_headers = [f"{d:g}d" for d in RETENTION_DAYS_GRID]
    rows = [
        [label, *(f"{v:.2f}" for v in result.vth_curves[label])]
        for label in result.candidates
    ]
    print()
    print(
        render_table(
            ["candidate", *day_headers],
            rows,
            title="Figure 12(b): center SSL Vth vs retention time",
        )
    )
    print(f"selected: ({result.selected_label}) {result.selected_pulse}")

    regions = [p.region for p in result.points]
    assert regions.count("candidate") == 6
    assert result.selected_label == "ii"
    assert result.selected_pulse.latency_us == constants.T_BLOCK_LOCK_US

    grid = list(RETENTION_DAYS_GRID)
    one_year = grid.index(constants.RETENTION_1Y_DAYS)
    five_years = grid.index(constants.RETENTION_5Y_DAYS)
    # (i) stays above 4 V even after 5 years
    assert result.vth_curves["i"][five_years] > 4.0
    # (vi) drops below the cutoff before 1 year
    assert result.vth_curves["vi"][one_year] < constants.SSL_CUTOFF_VTH
    # the selected combination holds the cutoff for the full requirement
    assert result.vth_curves["ii"][five_years] > constants.SSL_CUTOFF_VTH
