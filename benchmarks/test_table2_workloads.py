"""Table 2 -- I/O characteristics of the four benchmarks.

The generators *declare* the paper's characteristics; this benchmark
measures the traces they actually emit and verifies the empirical
read:write ratio, write pattern, and write-size range match the table:

    Benchmark   read:write  file write pattern               write size
    MailServer  1:1         create/append/delete e-mails     16-32 KiB
    DBServer    1:10        overwrite data and log files     16-256 KiB
    FileServer  3:4         create/append/delete files       32-128 KiB
    Mobile      1:50        create/delete pictures           0.5-8 MiB
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.analysis.tables import render_table
from repro.host.trace import TraceKind
from repro.workloads import WORKLOADS

CAPACITY = 16384
PAGE_KIB = 16


def _measure(name):
    gen = WORKLOADS[name](capacity_pages=CAPACITY, seed=11)
    list(gen.setup())
    ops = list(gen.steady(CAPACITY))
    reads = sum(1 for op in ops if op.kind is TraceKind.READ)
    writes = [op for op in ops if op.kind in (TraceKind.WRITE, TraceKind.APPEND)]
    overwrites = sum(1 for op in ops if op.kind is TraceKind.WRITE)
    deletes = sum(1 for op in ops if op.kind is TraceKind.DELETE)
    creates = sum(1 for op in ops if op.kind is TraceKind.CREATE)
    sizes = [op.npages for op in writes]
    return {
        "ratio": reads / len(writes),
        "min_kib": min(sizes) * PAGE_KIB,
        "max_kib": max(sizes) * PAGE_KIB,
        "overwrite_share": overwrites / len(writes),
        "creates": creates,
        "deletes": deletes,
    }


def test_table2_workload_characteristics(benchmark):
    measured = run_once(
        benchmark, lambda: {name: _measure(name) for name in WORKLOADS}
    )

    rows = [
        [
            name,
            f"1:{1 / m['ratio']:.1f}" if m["ratio"] else "0",
            f"{m['min_kib']}-{m['max_kib']} KiB",
            f"{m['overwrite_share']:.0%} overwrites",
            f"{m['creates']} creates / {m['deletes']} deletes",
        ]
        for name, m in measured.items()
    ]
    print()
    print(
        render_table(
            ["benchmark", "read:write", "write sizes", "pattern", "churn"],
            rows,
            title="Table 2 (measured from generated traces)",
        )
    )

    profiles = {n: cls.profile for n, cls in WORKLOADS.items()}
    for name, m in measured.items():
        p = profiles[name]
        assert m["ratio"] == pytest.approx(p.reads_per_write, rel=0.3), name
        lo, hi = p.write_size_pages
        assert m["min_kib"] >= lo * PAGE_KIB
        assert m["max_kib"] <= hi * PAGE_KIB

    # write patterns: DBServer overwrites; the others create/append/delete
    assert measured["DBServer"]["overwrite_share"] > 0.95
    assert measured["DBServer"]["deletes"] == 0
    for churny in ("MailServer", "FileServer", "Mobile"):
        assert measured[churny]["overwrite_share"] == 0.0
        assert measured[churny]["creates"] > 0
        assert measured[churny]["deletes"] > 0
