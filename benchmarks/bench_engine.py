#!/usr/bin/env python3
"""Discrete-event engine benchmark -> ``BENCH_sim.json``.

Times the :mod:`repro.sim` queueing engine on captured block traces and
writes a machine-readable artifact with the three numbers that matter:

* **events/sec** -- how fast the engine itself runs (wall-clock);
* **IOPS** -- what the simulated device sustained under the closed loop;
* **p99 read latency** -- the tail the engine exists to measure.

Same code path as ``repro bench``; this script is the form CI archives.

Run:  python benchmarks/bench_engine.py [--out BENCH_sim.json]
"""

from __future__ import annotations

import argparse

from repro.analysis.bench_engine import format_bench, run_bench, write_bench_json
from repro.ssd.config import scaled_config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--blocks", type=int, default=16)
    parser.add_argument("--wordlines", type=int, default=8)
    parser.add_argument("--workload", default="Mobile")
    parser.add_argument("--variants", nargs="*",
                        default=["baseline", "secSSD"])
    parser.add_argument("--qd", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default="BENCH_sim.json")
    args = parser.parse_args(argv)

    config = scaled_config(
        blocks_per_chip=args.blocks, wordlines_per_block=args.wordlines
    )
    payload = run_bench(
        config,
        workload=args.workload,
        variants=tuple(args.variants),
        queue_depth=args.qd,
        seed=args.seed,
        repeats=args.repeats,
    )
    print(format_bench(payload))
    target = write_bench_json(payload, args.out)
    print(f"benchmark artifact written to {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
