"""Table 1 -- data versioning study (Section 3).

Paper values for reference (avg / max):

    Workload    UV VAF        UV Tinsecure   MV VAF      MV Tinsecure
    Mobile      0.24 / 1.5    0.020 / 0.43   1.0 / 2.0   0.41 / 2.3
    MailServer  0.22 / 1.0    0.021 / 1.7    0.93 / 2.4  0.50 / 2.5
    DBServer    0.0048 / 0.24 0.52 / 2.6     3.2 / 7.8   3.5 / 3.5

We assert the qualitative structure the paper draws conclusions from,
not the absolute values (different traces, scaled device).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.experiments import run_versioning_study
from repro.analysis.tables import format_table1

TABLE1_WORKLOADS = ("Mobile", "MailServer", "DBServer")


def test_table1_data_versioning(benchmark, versioning_config):
    def experiment():
        return {
            workload: run_versioning_study(
                versioning_config, workload, write_multiplier=4.0
            ).summary
            for workload in TABLE1_WORKLOADS
        }

    summaries = run_once(benchmark, experiment)
    print()
    print(format_table1(summaries))

    for workload, summary in summaries.items():
        uv, mv = summary["uv"], summary["mv"]
        # both classes are populated
        assert uv["count"] > 0, workload
        assert mv["count"] > 0, workload
        # UV files pick up stale copies only through GC: modest VAF
        assert uv["vaf_max"] <= 2.0, workload
        # MV files are strictly more version-amplified than UV files
        assert mv["vaf_avg"] > uv["vaf_avg"], workload

    # observation 1: heavily-updated DBServer MV files reach high VAF
    assert summaries["DBServer"]["mv"]["vaf_max"] > 4.0
    assert summaries["DBServer"]["mv"]["vaf_avg"] > 2.0
    # observation 2: even UV files have stale copies (GC) in Mobile/Mail
    assert summaries["Mobile"]["uv"]["vaf_max"] > 0.0
    assert summaries["MailServer"]["uv"]["vaf_max"] > 0.0
    # observation 3: DBServer MV files stay insecure ~the whole run (4
    # capacities of writes -> Tinsecure close to 4)
    assert summaries["DBServer"]["mv"]["tinsec_avg"] > 3.0
