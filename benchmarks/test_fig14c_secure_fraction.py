"""Figure 14(c) -- secSSD IOPS vs. fraction of securely-managed data.

Paper: the fewer the secured pages, the closer secSSD gets to the
baseline; at 60 % secured data it is at most 6.2 % (2.8 % on average)
below the baseline, with DBServer the worst case.
"""

from __future__ import annotations

import statistics

from conftest import run_once

from repro.analysis.experiments import run_secure_fraction_sweep
from repro.analysis.tables import format_secure_fraction

FRACTIONS = (0.6, 0.7, 0.8, 0.9, 1.0)


def test_fig14c_secure_fraction_sweep(benchmark, system_config):
    sweep = run_once(
        benchmark,
        lambda: run_secure_fraction_sweep(
            system_config, fractions=FRACTIONS, write_multiplier=1.0
        ),
    )
    print()
    print(format_secure_fraction(sweep))

    gaps_at_60 = []
    for workload, series in sweep.items():
        # monotone: fewer secured pages never hurts (small tolerance for
        # GC-path noise between runs)
        ordered = [series[f] for f in FRACTIONS]
        for lighter, heavier in zip(ordered, ordered[1:]):
            assert lighter >= heavier - 0.02, workload
        # even fully-secured stays within a few percent of baseline
        assert series[1.0] > 0.90, workload
        gaps_at_60.append(1.0 - series[0.6])

    # paper: at 60 % secured data the gap is <= 6.2 % (avg 2.8 %)
    assert max(gaps_at_60) <= 0.10
    assert statistics.mean(gaps_at_60) <= 0.05

    # the write-intensive workloads (DBServer, Mobile) pay the most for
    # selective sanitization (Section 7 singles out DBServer)
    for fraction in FRACTIONS:
        worst = min(sweep, key=lambda wl: sweep[wl][fraction])
        assert worst in ("DBServer", "Mobile"), fraction
    assert sweep["DBServer"][1.0] <= sweep["MailServer"][1.0]
    assert sweep["DBServer"][1.0] <= sweep["FileServer"][1.0]
