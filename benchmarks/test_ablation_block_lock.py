"""Ablation -- the bLock break-even threshold (Section 6 policy).

The lock manager switches from per-page pLocks to one whole-block bLock
when a fully-dead block has enough sanitization-pending pages that
``n x tpLock > tbLock`` (4 pages at the paper's 100/300 us timings).
This ablation sweeps the threshold to show the paper's latency-derived
break-even is the right operating point: too low wastes nothing (bLock
is only legal on fully-dead blocks) but the policy space flattens; too
high degenerates into secSSD_nobLock.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.ftl.secure import SecureFtl
from repro.host.filesystem import FileSystem
from repro.host.trace import TraceReplayer
from repro.ssd.device import SSD
from repro.workloads import WORKLOADS

THRESHOLDS = (1, 2, 4, 8, 24, 10_000)


def _run_threshold(threshold: int, config):
    class TunedSecureFtl(SecureFtl):
        block_lock_threshold_pages = threshold

    ssd = SSD(config, ftl_class=TunedSecureFtl)
    generator = WORKLOADS["FileServer"](
        capacity_pages=config.logical_pages, seed=5
    )
    TraceReplayer(FileSystem(ssd)).replay(generator.ops(write_multiplier=1.5))
    return ssd.ftl


def test_ablation_block_lock_threshold(benchmark, versioning_config):
    runs = run_once(
        benchmark,
        lambda: {t: _run_threshold(t, versioning_config) for t in THRESHOLDS},
    )

    rows = []
    lock_time = {}
    for threshold, ftl in runs.items():
        s = ftl.stats
        total_us = s.plocks * ftl.config.t_plock_us + (
            s.block_locks * ftl.config.t_block_lock_us
        )
        lock_time[threshold] = total_us
        rows.append(
            [threshold, s.plocks, s.block_locks, f"{total_us / 1e3:.1f} ms"]
        )
    print()
    print(
        render_table(
            ["threshold (pages)", "pLocks", "bLocks", "total lock time"],
            rows,
            title="bLock break-even ablation (FileServer; paper operating "
            "point = 4 pages)",
        )
    )

    s4 = runs[4].stats
    s_inf = runs[10_000].stats
    # the giant threshold degenerates to pLock-only
    assert s_inf.block_locks == 0
    assert s_inf.plocks > s4.plocks
    # bLock at the paper's break-even cuts pLocks substantially
    assert s4.plocks < 0.9 * s_inf.plocks
    # total lock time at the latency break-even is minimal-or-tied:
    # thresholds below 4 can only match it (n*tpLock < tbLock never
    # happens on fully-dead blocks with n >= 4 anyway), never beat it
    best = min(lock_time.values())
    assert lock_time[4] <= best * 1.02
    # sanitization coverage is identical regardless of threshold: every
    # secured invalidation is locked one way or the other
    for ftl in runs.values():
        dump_tokens = [
            p for p in ftl.raw_device_dump().values() if isinstance(p, tuple)
        ]
        live = {ftl.l2p.reverse(g) for g in range(ftl.config.physical_pages)}
        for token in dump_tokens:
            assert token[0] in live
