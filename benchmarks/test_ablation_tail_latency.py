"""Ablation -- per-request sanitization tails.

Average IOPS (Fig. 14a) understates the user-visible difference between
the techniques: a single secured overwrite on erSSD triggers a whole-
block relocation storm *inside that request*, while on secSSD it adds
one 100-us pLock.  This benchmark reports per-request device-work
percentiles for the same DBServer trace.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import render_table
from repro.host.filesystem import FileSystem
from repro.host.trace import TraceReplayer
from repro.ssd.device import SSD
from repro.ssd.request import RequestOp
from repro.workloads import WORKLOADS

VARIANTS = ("baseline", "secSSD", "scrSSD", "erSSD")


def _run(variant: str, config):
    ssd = SSD(config, variant)
    generator = WORKLOADS["DBServer"](capacity_pages=config.logical_pages, seed=4)
    TraceReplayer(FileSystem(ssd)).replay(generator.ops(write_multiplier=1.0))
    return ssd


def test_ablation_write_tails(benchmark, versioning_config):
    runs = run_once(
        benchmark, lambda: {v: _run(v, versioning_config) for v in VARIANTS}
    )

    rows = []
    p99 = {}
    for variant, ssd in runs.items():
        summary = ssd.work_log.summary(RequestOp.WRITE)
        p99[variant] = summary["p99_us"]
        rows.append(
            [
                variant,
                f"{summary['mean_us']:.0f}",
                f"{summary['p50_us']:.0f}",
                f"{summary['p99_us']:.0f}",
                f"{summary['max_us'] / 1000:.1f} ms",
            ]
        )
    print()
    print(
        render_table(
            ["variant", "mean (us)", "p50 (us)", "p99 (us)", "max"],
            rows,
            title="Per-write-request device work (DBServer)",
        )
    )

    # tails order exactly like the techniques' sanitization costs
    assert p99["secSSD"] < p99["scrSSD"] < p99["erSSD"]
    # secSSD's p99 stays within ~2x of the baseline's (both are bounded
    # by GC bursts, not by sanitization)
    assert p99["secSSD"] <= 2.0 * p99["baseline"] + 1.0
    # erSSD's tail requests relocate whole blocks: an order of magnitude
    # beyond secSSD's
    assert p99["erSSD"] > 10 * p99["secSSD"]
