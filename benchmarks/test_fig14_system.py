"""Figure 14(a)/(b) -- system-level IOPS and WAF comparison (Section 7).

Every workload trace replays bit-identically on five SSDs:

* ``baseline`` -- no sanitization (the normalization target);
* ``erSSD`` -- erase-based immediate sanitization;
* ``scrSSD`` -- scrubbing-based;
* ``secSSD_nobLock`` -- Evanesco with pLock only (ablation);
* ``secSSD`` -- full Evanesco.

Paper headlines checked for shape:
* erSSD collapses (< 4 % of baseline IOPS; WAF orders of magnitude up);
* scrSSD lands around a third of baseline IOPS;
* secSSD stays within a few percent of baseline IOPS with baseline WAF;
* secSSD beats the reprogram-based scrSSD by ~2.9x IOPS on average;
* secSSD cuts block erasures by ~62 % on average vs scrSSD;
* bLock cuts the pLock count (28 % avg / 57 % max in the paper), with
  the biggest IOPS benefit on large-write workloads and the smallest on
  DBServer.
"""

from __future__ import annotations

import statistics

import pytest
from conftest import run_once

from repro.analysis.experiments import (
    FIGURE14_VARIANTS,
    FIGURE14_WORKLOADS,
    run_figure14,
)
from repro.analysis.tables import format_figure14, render_table


@pytest.fixture(scope="module")
def results(system_config):
    return run_figure14(system_config, write_multiplier=1.0)


def test_fig14ab_iops_and_waf(benchmark, system_config):
    results = run_once(
        benchmark, lambda: run_figure14(system_config, write_multiplier=1.0)
    )
    print()
    print(format_figure14(results))

    headline_rows = []
    ratios, erase_reductions, plock_reductions = [], [], []
    for workload, fig in results.items():
        ratio = fig.iops_ratio("secSSD", "scrSSD")
        erase_red = fig.erase_reduction_vs("scrSSD")
        plock_red = fig.plock_reduction_from_block_lock()
        ratios.append(ratio)
        erase_reductions.append(erase_red)
        plock_reductions.append(plock_red)
        headline_rows.append(
            [workload, f"{ratio:.2f}x", f"{erase_red:.0%}", f"{plock_red:.0%}"]
        )
    print()
    print(
        render_table(
            ["workload", "secSSD/scrSSD IOPS", "erase reduction", "pLock reduction"],
            headline_rows,
            title="Section 1 headline ratios (paper: 2.9x avg IOPS, 62% avg "
            "erase reduction, 28% avg pLock reduction)",
        )
    )

    for workload, fig in results.items():
        iops = {v: fig.outcomes[v].normalized_iops for v in FIGURE14_VARIANTS}
        waf = {v: fig.outcomes[v].normalized_waf for v in FIGURE14_VARIANTS}

        # ordering: baseline >= secSSD >= secSSD_nobLock > scrSSD > erSSD
        assert iops["secSSD"] <= 1.0 + 1e-9, workload
        assert iops["secSSD"] >= iops["secSSD_nobLock"] - 1e-9, workload
        assert iops["secSSD_nobLock"] > iops["scrSSD"], workload
        assert iops["scrSSD"] > iops["erSSD"], workload

        # magnitudes (paper: 94.5 % avg secSSD, ~34 % scrSSD, < 4 % erSSD)
        assert iops["secSSD"] > 0.90, workload
        assert 0.15 < iops["scrSSD"] < 0.55, workload
        assert iops["erSSD"] < 0.12, workload

        # WAF: secSSD adds no write amplification; the others do
        assert waf["secSSD"] == pytest.approx(1.0, abs=0.05), workload
        assert waf["secSSD_nobLock"] == pytest.approx(1.0, abs=0.05), workload
        assert waf["scrSSD"] > 1.3, workload
        # erSSD's WAF scales with pages-per-block (paper: 184-320x at 576
        # pages/block; ours: ~7-34x at 72); an order of magnitude suffices
        assert waf["erSSD"] > 5.0, workload

    # averaged headline ratios (paper: 2.9x, 62 %, 28 %)
    assert 2.0 <= statistics.mean(ratios) <= 4.5
    assert 0.45 <= statistics.mean(erase_reductions) <= 0.85
    assert 0.10 <= statistics.mean(plock_reductions) <= 0.65

    # bLock's IOPS benefit: DBServer's small scattered updates gain less
    # than the average workload (paper: the lowest benefit class), and
    # the largest gain comes from a batched-invalidation workload
    deltas = {
        wl: results[wl].outcomes["secSSD"].normalized_iops
        - results[wl].outcomes["secSSD_nobLock"].normalized_iops
        for wl in FIGURE14_WORKLOADS
    }
    assert deltas["DBServer"] <= statistics.mean(deltas.values())
    assert max(deltas, key=deltas.get) in ("FileServer", "MailServer", "Mobile")
