"""Figure 4 -- N_valid / N_invalid timeplots of a UV and an MV file.

Paper: fmb (append-only file from Mobile) shows invalid pages appearing
purely from GC copies; fdb (heavily-updated file from DBServer) shows
invalid counts racing past the valid count and decaying only slowly
after GC starts.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.experiments import run_timeplot_study


def _sparkline(series, width=60):
    if not series:
        return ""
    peak = max(series) or 1
    chars = " .:-=+*#%@"
    step = max(1, len(series) // width)
    out = []
    for i in range(0, len(series), step):
        v = series[i]
        out.append(chars[min(len(chars) - 1, int(v / peak * (len(chars) - 1)))])
    return "".join(out)


def test_fig4a_uni_version_file_mobile(benchmark, versioning_config):
    plots = run_once(
        benchmark,
        lambda: run_timeplot_study(versioning_config, "Mobile", write_multiplier=4.0),
    )
    uv = plots["uv"]
    valid = [s.valid for s in uv]
    invalid = [s.invalid for s in uv]
    print()
    print("fmb (UV)   valid  :", _sparkline(valid))
    print("fmb (UV)   invalid:", _sparkline(invalid))
    print(f"max_valid={max(valid)} max_invalid={max(invalid)}")

    # a UV file never loses valid pages to the host...
    assert max(valid) == valid[-1] or max(valid) > 0
    # ...yet it accumulates invalid copies purely from GC moves
    assert max(invalid) > 0
    assert max(invalid) <= max(valid)


def test_fig4b_multi_version_file_dbserver(benchmark, versioning_config):
    plots = run_once(
        benchmark,
        lambda: run_timeplot_study(
            versioning_config, "DBServer", write_multiplier=4.0
        ),
    )
    mv = plots["mv"]
    valid = [s.valid for s in mv]
    invalid = [s.invalid for s in mv]
    print()
    print("fdb (MV)   valid  :", _sparkline(valid))
    print("fdb (MV)   invalid:", _sparkline(invalid))
    print(f"max_valid={max(valid)} max_invalid={max(invalid)}")

    # the hot file's stale copies dwarf its live footprint...
    assert max(invalid) > 2 * max(valid)
    # ...while its valid page count stays flat (in-place update pattern)
    tail_valid = valid[len(valid) // 2 :]
    assert max(tail_valid) - min(tail_valid) <= max(2, max(valid) // 4)
    # invalid count decays after GC kicks in but never collapses to zero
    assert invalid[-1] > 0
