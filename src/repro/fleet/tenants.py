"""Tenant population model: placement, traffic weights, lifecycle.

A fleet campaign simulates hundreds of small devices serving a large
multi-tenant population.  This module turns the fleet-level description
(:class:`FleetConfig`) into per-device work:

* **Traffic weights** are heavy-tailed (Zipf with exponent ``zipf_s``):
  tenant *t* carries weight ``1 / (t + 1) ** s``, so a handful of hot
  tenants dominate while millions idle -- the regime where per-tenant
  deletion cost actually matters.
* **Placement** hash-shards tenants onto devices over a consistent-hash
  ring (``vnodes`` virtual nodes per device).  Growing the fleet from
  *k* to *k + 1* devices therefore moves only ~1/(k+1) of tenants, all
  of them onto the new device -- the stability property the placement
  tests assert.  The ``spread`` knob widens each tenant's candidate set
  to the next ``spread`` distinct devices clockwise (chosen by a second
  hash), trading placement stability for load spreading.
* **Lifecycle** -- arrival, churn, account deletion -- is driven by the
  storm schedule (:mod:`repro.fleet.storms`) plus replacement arrivals,
  all derived from the master seed so every shard agrees.

:func:`compile_fleet` is compile-time: pure, O(tenants) hashing, no
simulation.  Each device gets a frozen :class:`DeviceSpec` whose seed is
*variant-independent* -- every FTL variant replays the identical host
trace per device, the paper's methodology.  Devices model their top
``max_active_tenants`` tenants individually and aggregate the rest into
one *tail* pseudo-tenant, bounding generator state while conserving the
device's total traffic weight.

:class:`TenantWorkload` then renders a device's trace at run time: a
:class:`~repro.workloads.base.WorkloadGenerator` that picks a tenant per
operation by cumulative weight and applies the base workload's Table-2
mix (write sizes, read ratio, create/append/delete vs. overwrite) to
that tenant's own files.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from collections.abc import Iterator
from dataclasses import asdict, dataclass, field

from repro.analysis.parallel import derive_seed
from repro.fleet.storms import (
    STORM_KINDS,
    StormEvent,
    build_schedule,
    storm_affects,
)
from repro.host.trace import TraceOp, append, create, delete, read, write
from repro.workloads import WORKLOADS
from repro.workloads.base import WorkloadGenerator

__all__ = [
    "TAIL_TENANT",
    "FleetConfig",
    "TenantSlot",
    "DeviceSpec",
    "compile_fleet",
    "place_tenant",
    "tenant_weight",
    "tenant_secure",
    "TenantWorkload",
]

#: pseudo-tenant id aggregating every tenant beyond ``max_active_tenants``.
TAIL_TENANT = -1


@dataclass(frozen=True)
class FleetConfig:
    """Frozen description of one fleet campaign (picklable, hashable)."""

    devices: int = 16
    tenants: int = 2000
    seed: int = 1
    variants: tuple[str, ...] = ("baseline", "erSSD", "scrSSD", "secSSD")
    base_workload: str = "MailServer"
    zipf_s: float = 1.1
    spread: int = 1
    secure_fraction: float = 1.0
    storm: str = "none"
    storm_count: int = 1
    storm_fraction: float = 0.25
    device_blocks: int = 8
    device_wordlines: int = 4
    write_multiplier: float = 0.6
    queue_depth: int = 16
    devices_per_shard: int = 8
    max_active_tenants: int = 64
    vnodes: int = 64

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError("devices must be >= 1")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if not self.variants:
            raise ValueError("need at least one variant")
        if self.base_workload not in WORKLOADS:
            raise ValueError(f"unknown base workload {self.base_workload!r}")
        if self.zipf_s <= 0.0:
            raise ValueError("zipf_s must be positive")
        if self.spread < 1:
            raise ValueError("spread must be >= 1")
        if not 0.0 <= self.secure_fraction <= 1.0:
            raise ValueError("secure_fraction must be in [0, 1]")
        if self.storm != "none" and self.storm not in STORM_KINDS:
            raise ValueError(
                f"unknown storm kind {self.storm!r}; "
                f"choose 'none' or one of {STORM_KINDS}"
            )
        if self.storm_count < 0:
            raise ValueError("storm_count must be >= 0")
        if not 0.0 < self.storm_fraction <= 1.0:
            raise ValueError("storm_fraction must be in (0, 1]")
        if self.write_multiplier <= 0.0:
            raise ValueError("write_multiplier must be positive")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.devices_per_shard < 1:
            raise ValueError("devices_per_shard must be >= 1")
        if self.max_active_tenants < 1:
            raise ValueError("max_active_tenants must be >= 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")

    def schedule(self) -> tuple[StormEvent, ...]:
        """The campaign's storm schedule (empty for ``storm="none"``)."""
        return build_schedule(
            self.storm, self.storm_count, self.storm_fraction
        )

    def fingerprint(self) -> str:
        """Short stable hash of every campaign parameter.

        Embedded in each shard's cache key so a resume directory can
        never silently serve shards from a differently-parameterized
        campaign.
        """
        text = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class TenantSlot:
    """One individually-modeled tenant on one device."""

    tenant: int
    weight: float
    secure: bool


@dataclass(frozen=True)
class DeviceSpec:
    """Everything one device's shard needs to render its workload."""

    device_id: int
    #: variant-independent trace seed: every variant replays the same
    #: host traffic against this device.
    seed: int
    slots: tuple[TenantSlot, ...]
    tail_weight: float
    tail_tenants: int
    #: device write budget multiplier relative to the fleet mean load.
    traffic_scale: float
    storms: tuple[StormEvent, ...] = ()

    @property
    def tenants(self) -> int:
        return len(self.slots) + self.tail_tenants

    @property
    def weight(self) -> float:
        return sum(s.weight for s in self.slots) + self.tail_weight


# ----------------------------------------------------------------------
# compile-time placement
# ----------------------------------------------------------------------
def _hash_fraction(seed: int, *coordinates: object) -> float:
    """A deterministic draw in [0, 1) from fleet-domain coordinates."""
    return derive_seed(seed, *coordinates, domain="fleet") / 2.0**63


def tenant_weight(cfg: FleetConfig, tenant: int) -> float:
    """Zipf traffic weight: rank == tenant id, hottest first."""
    return 1.0 / float(tenant + 1) ** cfg.zipf_s


def tenant_secure(cfg: FleetConfig, tenant: int) -> bool:
    """Whether a tenant's data is security-sensitive (account-level)."""
    return _hash_fraction(cfg.seed, "secure", tenant) < cfg.secure_fraction


def _build_ring(cfg: FleetConfig) -> tuple[list[int], list[int]]:
    """The consistent-hash ring as parallel (hash, device) lists."""
    points = []
    for device in range(cfg.devices):
        for vnode in range(cfg.vnodes):
            points.append(
                (
                    derive_seed(
                        cfg.seed, "ring", device, vnode, domain="fleet"
                    ),
                    device,
                )
            )
    points.sort()
    return [h for h, _ in points], [d for _, d in points]


def place_tenant(
    cfg: FleetConfig, ring: tuple[list[int], list[int]], tenant: int
) -> int:
    """The device a tenant lives on under the current ring."""
    hashes, devices = ring
    start = bisect.bisect_left(
        hashes, derive_seed(cfg.seed, "tenant", tenant, domain="fleet")
    )
    candidates: list[int] = []
    want = min(cfg.spread, cfg.devices)
    i = start
    while len(candidates) < want:
        device = devices[i % len(devices)]
        if device not in candidates:
            candidates.append(device)
        i += 1
    if len(candidates) == 1:
        return candidates[0]
    pick = derive_seed(cfg.seed, "spread", tenant, domain="fleet")
    return candidates[pick % len(candidates)]


def compile_fleet(cfg: FleetConfig) -> tuple[DeviceSpec, ...]:
    """Compile the tenant population into per-device workload specs.

    Pure function of ``cfg``: placement over the consistent-hash ring,
    Zipf weights, per-tenant secure flags, top-``max_active_tenants``
    slot selection with tail aggregation, and per-device traffic scale
    (total device weight over the fleet mean, clamped to [0.25, 4.0] so
    one hot device cannot stretch the campaign unboundedly).
    """
    ring = _build_ring(cfg)
    placed: list[list[TenantSlot]] = [[] for _ in range(cfg.devices)]
    for tenant in range(cfg.tenants):
        placed[place_tenant(cfg, ring, tenant)].append(
            TenantSlot(
                tenant=tenant,
                weight=tenant_weight(cfg, tenant),
                secure=tenant_secure(cfg, tenant),
            )
        )
    totals = [sum(s.weight for s in slots) for slots in placed]
    mean = sum(totals) / cfg.devices
    schedule = cfg.schedule()
    specs = []
    for device, slots in enumerate(placed):
        slots.sort(key=lambda s: (-s.weight, s.tenant))
        active = tuple(slots[: cfg.max_active_tenants])
        tail = slots[cfg.max_active_tenants:]
        scale = totals[device] / mean if mean > 0.0 else 1.0
        specs.append(
            DeviceSpec(
                device_id=device,
                seed=derive_seed(cfg.seed, "device", device, domain="fleet"),
                slots=active,
                tail_weight=sum(s.weight for s in tail),
                tail_tenants=len(tail),
                traffic_scale=min(4.0, max(0.25, scale)),
                storms=schedule,
            )
        )
    return tuple(specs)


# ----------------------------------------------------------------------
# run-time trace rendering
# ----------------------------------------------------------------------
@dataclass
class _LiveSlot:
    """Mutable per-tenant state while rendering one device's trace."""

    tenant: int
    weight: float
    secure: bool
    files: list[str] = field(default_factory=list)


class TenantWorkload(WorkloadGenerator):
    """Multi-tenant trace generator for one device of the fleet.

    Applies the base workload's Table-2 mix per *tenant*: each operation
    first draws a tenant by cumulative traffic weight, then acts on that
    tenant's own files (create / append-or-overwrite / expire-oldest at
    the mail-server ratios, read debt at the profile's read:write
    ratio).  Storms fire at fixed fractions of the steady write budget;
    membership comes from :func:`repro.fleet.storms.storm_affects` on
    the *campaign* seed, so every shard deletes the same accounts.
    """

    def __init__(
        self, cfg: FleetConfig, spec: DeviceSpec, capacity_pages: int
    ) -> None:
        self.profile = WORKLOADS[cfg.base_workload].profile
        super().__init__(
            capacity_pages,
            seed=spec.seed,
            secure_fraction=cfg.secure_fraction,
        )
        self.cfg = cfg
        self.spec = spec
        self._slots: list[_LiveSlot] = [
            _LiveSlot(s.tenant, s.weight, s.secure) for s in spec.slots
        ]
        if spec.tail_tenants > 0:
            # the aggregated cold tail; per-file secure flags are drawn
            # like the base generators' (it stands for many tenants).
            self._slots.append(
                _LiveSlot(TAIL_TENANT, spec.tail_weight, True)
            )
        self._by_tenant = {slot.tenant: slot for slot in self._slots}
        self._cum: list[float] = []
        self._rebuild_cum()
        self._arrival_serial = 0
        #: storm accounting surfaced in the fleet report.
        self.storms_fired = 0
        self.storm_tenants_hit = 0
        self.storm_files_deleted = 0
        self.storm_pages_deleted = 0

    # -- tenant selection ----------------------------------------------
    def _rebuild_cum(self) -> None:
        total = 0.0
        self._cum = []
        for slot in self._slots:
            total += slot.weight
            self._cum.append(total)

    def _pick_slot(self) -> _LiveSlot:
        total = self._cum[-1] if self._cum else 0.0
        if total <= 0.0:
            # everyone was deleted: a replacement tenant arrives, so the
            # device keeps serving traffic (and the loop keeps moving).
            return self._spawn_arrival()
        draw = self.rng.random() * total
        return self._slots[
            min(bisect.bisect_right(self._cum, draw), len(self._slots) - 1)
        ]

    def _spawn_arrival(self) -> _LiveSlot:
        self._arrival_serial += 1
        tenant = derive_seed(
            self.cfg.seed,
            "arrival",
            self.spec.device_id,
            self._arrival_serial,
            domain="fleet",
        )
        slot = _LiveSlot(
            tenant=tenant,
            weight=1.0,
            secure=tenant_secure(self.cfg, tenant),
        )
        self._slots.append(slot)
        self._by_tenant[tenant] = slot
        self._rebuild_cum()
        return slot

    def _insec_for(self, slot: _LiveSlot) -> bool:
        if slot.tenant == TAIL_TENANT:
            return self._pick_insec()
        return not slot.secure

    # -- file operations ------------------------------------------------
    def _create_file(self, slot: _LiveSlot) -> Iterator[TraceOp]:
        name = self._new_name(f"t{slot.tenant}")
        self._track_create(name)
        slot.files.append(name)
        yield create(name, insec=self._insec_for(slot))
        pages = 0
        for _ in range(self.rng.randint(1, 2)):
            size = self._write_size()
            self._track_grow(name, size)
            yield append(name, size)
            pages += size
            yield from self._emit_reads()
        return pages

    def _delete_file(self, slot: _LiveSlot, name: str) -> Iterator[TraceOp]:
        slot.files.remove(name)
        pages = self._track_delete(name)
        yield delete(name)
        return pages

    def _emit_reads(self, writes: int = 1) -> Iterator[TraceOp]:
        for _ in range(self._reads_due(writes)):
            name = self._random_file()
            if name is None or self._sizes[name] == 0:
                continue
            npages = min(self._sizes[name], self.rng.randint(1, 2))
            yield read(name, 0, npages)

    def _trim_overall_oldest(self) -> Iterator[TraceOp]:
        name = self._oldest()
        if name is None:
            return
        # the global creation-order deque spans all tenants; find the
        # owner from the name prefix ("t<tenant>-<serial>").
        owner = int(name[1:].rsplit("-", 1)[0])
        yield from self._delete_file(self._by_tenant[owner], name)

    def _tenant_op(self, slot: _LiveSlot) -> Iterator[TraceOp]:
        roll = self.rng.random()
        overwrite = "overwrite" in self.profile.write_pattern
        if roll < 0.55 or not slot.files:
            pages = yield from self._create_file(slot)
            return pages
        if roll < 0.80:
            name = slot.files[self.rng.randrange(len(slot.files))]
            size = self._write_size()
            if overwrite and self._sizes[name] > 0:
                size = min(size, self._sizes[name])
                yield write(name, 0, size)
            else:
                self._track_grow(name, size)
                yield append(name, size)
            yield from self._emit_reads()
            return size
        yield from self._delete_file(slot, slot.files[0])
        return 0

    # -- storms ----------------------------------------------------------
    def _fire_storm(self, storm: StormEvent) -> Iterator[TraceOp]:
        self.storms_fired += 1
        changed = False
        for slot in list(self._slots):
            if slot.tenant == TAIL_TENANT:
                yield from self._storm_tail(storm, slot)
                continue
            if not storm_affects(self.cfg.seed, storm, slot.tenant):
                continue
            self.storm_tenants_hit += 1
            changed = True
            for name in list(slot.files):
                self.storm_files_deleted += 1
                self.storm_pages_deleted += yield from self._delete_file(
                    slot, name
                )
            self._slots.remove(slot)
            del self._by_tenant[slot.tenant]
            if storm.kind == "churn":
                # account closes, a fresh tenant arrives with the same
                # traffic share; identity hashed so re-churn stays unique.
                tenant = derive_seed(
                    self.cfg.seed,
                    "churn",
                    storm.index,
                    slot.tenant,
                    domain="fleet",
                )
                fresh = _LiveSlot(
                    tenant=tenant,
                    weight=slot.weight,
                    secure=tenant_secure(self.cfg, tenant),
                )
                self._slots.append(fresh)
                self._by_tenant[tenant] = fresh
        if changed:
            self._rebuild_cum()

    def _storm_tail(
        self, storm: StormEvent, slot: _LiveSlot
    ) -> Iterator[TraceOp]:
        """The aggregate tail loses its oldest ``tenant_fraction`` share."""
        victims = slot.files[: int(len(slot.files) * storm.tenant_fraction)]
        for name in list(victims):
            self.storm_files_deleted += 1
            self.storm_pages_deleted += yield from self._delete_file(
                slot, name
            )
        if storm.kind == "deletion":
            slot.weight *= 1.0 - storm.tenant_fraction
            self._rebuild_cum()

    # -- WorkloadGenerator interface -------------------------------------
    def setup(self) -> Iterator[TraceOp]:
        target = int(self.capacity_pages * self.fill_fraction)
        while self._used < target:
            yield from self._create_file(self._pick_slot())

    def steady(self, total_write_pages: int) -> Iterator[TraceOp]:
        written = 0
        next_storm = 0
        storms = self.spec.storms
        while written < total_write_pages:
            while (
                next_storm < len(storms)
                and written
                >= storms[next_storm].at_fraction * total_write_pages
            ):
                yield from self._fire_storm(storms[next_storm])
                next_storm += 1
            if self._used > self.capacity_pages * self.high_water:
                yield from self._trim_overall_oldest()
                continue
            written += yield from self._tenant_op(self._pick_slot())
        # storms scheduled past the last write still fire (at_fraction
        # is < 1 but integer write granularity can overshoot).
        while next_storm < len(storms):
            yield from self._fire_storm(storms[next_storm])
            next_storm += 1

    def storm_counters(self) -> dict[str, int]:
        """Storm accounting for the fleet report (JSON-ready)."""
        return {
            "storms_fired": self.storms_fired,
            "storm_tenants_hit": self.storm_tenants_hit,
            "storm_files_deleted": self.storm_files_deleted,
            "storm_pages_deleted": self.storm_pages_deleted,
        }
