"""Cross-fleet aggregation: merge per-device runs into one report.

The per-device unit of record is a JSON-primitive dict
(:func:`device_report`) so shard caching round-trips it losslessly;
:func:`aggregate_fleet` then folds the devices of each variant into the
distributions the campaign is actually run for:

* **WAF spread** across devices (min/p25/p50/p75/p95/max) -- fleet
  heterogeneity that single-device studies cannot show;
* **per-tenant p99** -- the tenant-weighted distribution of device p99
  latencies (tenants share their device's queue, so a tenant's p99 is
  approximated by its device's p99 weighted by tenant count; see
  DESIGN.md section 3j);
* **sanitization backlog over time** -- each device's queued
  sanitization-work step series sampled onto a common normalized time
  grid and summed fleet-wide, which is where a deletion storm shows up
  as a correlated burst rather than independent blips;
* **lock-vs-erase cost** -- flash-time spent on lock pulses vs.
  sanitization erases / scrubbing / relocation, the paper's central
  cost comparison, summed over the fleet.

Everything lands in one dict of JSON primitives, published through a
:class:`~repro.telemetry.MetricsRegistry` snapshot under ``"metrics"``.
Wall-clock readings and shard accounting stay out: the report must be
byte-identical across serial, parallel, and resumed campaigns.
"""

from __future__ import annotations

from repro.fleet.tenants import DeviceSpec, FleetConfig, TenantWorkload
from repro.sim.runner import SimResult
from repro.ssd.config import SSDConfig
from repro.telemetry import MetricsRegistry
from repro.telemetry.histogram import percentile

__all__ = [
    "device_report",
    "aggregate_fleet",
    "format_fleet",
]

#: points on the normalized [0, 1] campaign-time grid for fleet curves.
GRID_POINTS = 65

#: per-device backlog curve points kept in the report.
CURVE_POINTS = 64

#: DeviceStats counters carried into each device record.
_STAT_KEYS = (
    "host_writes",
    "host_trims",
    "flash_programs",
    "flash_erases",
    "gc_copies",
    "plocks",
    "block_locks",
    "scrubs",
    "relocation_copies",
    "sanitize_erases",
)


def sanitize_costs(
    config: SSDConfig, stats_counts: dict[str, int]
) -> dict[str, float]:
    """Flash-time cost split of sanitization work, in microseconds.

    ``lock_us`` is Evanesco's path (pLock/bLock pulses); ``erase_us`` +
    ``relocation_us`` is the erase-based path (immediate erases plus
    the page copies needed to empty shared blocks first); ``scrub_us``
    is the scrub-program path.  One relocation copy costs a read, a
    program, and two bus transfers.
    """
    return {
        "lock_us": (
            stats_counts["plocks"] * config.t_plock_us
            + stats_counts["block_locks"] * config.t_block_lock_us
        ),
        "erase_us": stats_counts["sanitize_erases"] * config.t_erase_us,
        "scrub_us": stats_counts["scrubs"] * config.t_scrub_us,
        "relocation_us": stats_counts["relocation_copies"]
        * (config.t_read_us + config.t_prog_us + 2.0 * config.t_xfer_us),
    }


def _downsample(
    curve: list[tuple[float, float]], max_points: int
) -> list[list[float]]:
    if len(curve) <= max_points:
        return [[t, v] for t, v in curve]
    step = (len(curve) - 1) / (max_points - 1)
    picked = [curve[round(i * step)] for i in range(max_points - 1)]
    picked.append(curve[-1])
    return [[t, v] for t, v in picked]


def device_report(
    config: SSDConfig,
    cfg: FleetConfig,
    spec: DeviceSpec,
    generator: TenantWorkload,
    result: SimResult,
) -> dict[str, object]:
    """One device's run as JSON primitives (the shard cache unit)."""
    report = result.report
    stats = result.run.stats
    counts = {key: getattr(stats, key) for key in _STAT_KEYS}
    return {
        "device": spec.device_id,
        "tenants": spec.tenants,
        "weight": spec.weight,
        "traffic_scale": spec.traffic_scale,
        "elapsed_us": report.sim_elapsed_us,
        "iops": report.iops,
        "waf": result.run.waf,
        "p99_read_us": report.latency["read"]["p99_us"],
        "p99_all_us": report.latency["all"]["p99_us"],
        "backlog_peak_us": report.sanitize_backlog_peak_us,
        "backlog_mean_us": report.sanitize_backlog_mean_us,
        "backlog": _downsample(report.sanitize_backlog, CURVE_POINTS),
        "stats": counts,
        "cost": sanitize_costs(config, counts),
        "storms": generator.storm_counters(),
    }


# ----------------------------------------------------------------------
# fleet-wide folds
# ----------------------------------------------------------------------
def _spread(values: list[float]) -> dict[str, float]:
    ordered = sorted(values)
    return {
        "min": ordered[0] if ordered else 0.0,
        "p25": percentile(ordered, 25.0),
        "p50": percentile(ordered, 50.0),
        "p75": percentile(ordered, 75.0),
        "p95": percentile(ordered, 95.0),
        "max": ordered[-1] if ordered else 0.0,
    }


def _weighted_percentile(
    pairs: list[tuple[float, float]], q: float
) -> float:
    """Weighted nearest-rank percentile of (value, weight) pairs."""
    ordered = sorted(pairs)
    total = sum(weight for _, weight in ordered)
    if total <= 0.0:
        return 0.0
    target = q / 100.0 * total
    cum = 0.0
    for value, weight in ordered:
        cum += weight
        if cum >= target:
            return value
    return ordered[-1][0]


def _level_at(curve: list[list[float]], time_us: float) -> float:
    """Step-function value of a (time, level) series at ``time_us``."""
    level = 0.0
    for t, value in curve:
        if t > time_us:
            break
        level = value
    return level


def _fleet_backlog(devices: list[dict[str, object]]) -> list[list[float]]:
    """Sum device backlog step series on a normalized time grid.

    Devices finish at different simulated times, so the grid is each
    device's own [0, elapsed] range normalized to [0, 1]: point *i* is
    the fleet-wide queued sanitization work when every device is at the
    same logical fraction of its campaign.
    """
    grid = []
    for i in range(GRID_POINTS):
        fraction = i / (GRID_POINTS - 1)
        total = 0.0
        for device in devices:
            elapsed = float(device["elapsed_us"])  # type: ignore[arg-type]
            total += _level_at(
                device["backlog"], fraction * elapsed  # type: ignore[arg-type]
            )
        grid.append([fraction, total])
    return grid


def _fold_certificates(
    devices: list[dict[str, object]],
) -> dict[str, object] | None:
    """Fleet-level exposure/coverage gauges from per-device certificates.

    Each audited device record carries its signed certificate plus the
    verifier's verdict (``repro.fleet.scheduler._shard_task`` issues
    them in-worker, forensic probe included).  The fold reads only the
    certificate's chained evidence sections -- exposure summary and
    ledger accounting -- so the fleet gauges are backed by exactly the
    bytes an offline re-verification would check.
    """
    audited = [d["audit"] for d in devices if "audit" in d]
    if not audited:
        return None
    exposures = [
        a["certificate"]["sections"]["exposure"] for a in audited  # type: ignore[index]
    ]
    ledgers = [
        a["certificate"]["sections"]["ledger"] for a in audited  # type: ignore[index]
    ]
    return {
        "certified_devices": len(audited),
        "verified_ok": sum(
            1 for a in audited if a["report"]["ok"]  # type: ignore[index]
        ),
        "windows": sum(int(e["count"]) for e in exposures),
        "exposure_p50_us": percentile(
            sorted(float(e["p50_us"]) for e in exposures), 50.0
        ),
        "exposure_p99_us": max(
            (float(e["p99_us"]) for e in exposures), default=0.0
        ),
        "exposure_max_us": max(
            (float(e["max_us"]) for e in exposures), default=0.0
        ),
        "residual_secured": sum(
            int(led["residual_secured"]) for led in ledgers
        ),
    }


def aggregate_fleet(
    cfg: FleetConfig, shard_results: list[object]
) -> dict[str, object]:
    """Merge canonical-order shard results into the fleet report.

    ``shard_results`` is :func:`repro.fleet.scheduler.run_fleet`'s
    merged grid output: variants outer, shards inner, devices ascending
    within each shard -- so per-variant device lists are already in
    canonical device order and the fold is deterministic.
    """
    by_variant: dict[str, list[dict[str, object]]] = {
        variant: [] for variant in cfg.variants
    }
    for shard in shard_results:
        by_variant[shard["variant"]].extend(shard["devices"])  # type: ignore[index]
    registry = MetricsRegistry()
    variants: dict[str, object] = {}
    for variant in cfg.variants:
        devices = by_variant[variant]
        wafs = [float(d["waf"]) for d in devices]
        p99_pairs = [
            (float(d["p99_all_us"]), float(d["tenants"])) for d in devices
        ]
        backlog = _fleet_backlog(devices)
        peak = max((level for _, level in backlog), default=0.0)
        mean = (
            sum(level for _, level in backlog) / len(backlog)
            if backlog
            else 0.0
        )
        cost = {
            key: sum(float(d["cost"][key]) for d in devices)  # type: ignore[index]
            for key in ("lock_us", "erase_us", "scrub_us", "relocation_us")
        }
        storms = {
            key: sum(int(d["storms"][key]) for d in devices)  # type: ignore[index]
            for key in (
                "storms_fired",
                "storm_tenants_hit",
                "storm_files_deleted",
                "storm_pages_deleted",
            )
        }
        totals = {
            key: sum(int(d["stats"][key]) for d in devices)  # type: ignore[index]
            for key in _STAT_KEYS
        }
        summary = {
            "devices": len(devices),
            "iops_total": sum(float(d["iops"]) for d in devices),
            "waf_spread": _spread(wafs),
            "tenant_p99_us": {
                "p50": _weighted_percentile(p99_pairs, 50.0),
                "p90": _weighted_percentile(p99_pairs, 90.0),
                "p99": _weighted_percentile(p99_pairs, 99.0),
            },
            "backlog": backlog,
            "backlog_peak_us": peak,
            "backlog_mean_us": mean,
            "cost": cost,
            "storms": storms,
            "stats": totals,
            "devices_detail": devices,
        }
        sanitization = _fold_certificates(devices)
        if sanitization is not None:
            summary["sanitization"] = sanitization
        variants[variant] = summary
        prefix = f"fleet.{variant}"
        registry.gauge(f"{prefix}.backlog_peak_us").set(peak)
        registry.gauge(f"{prefix}.backlog_mean_us").set(mean)
        registry.gauge(f"{prefix}.waf_p50").set(summary["waf_spread"]["p50"])  # type: ignore[index]
        registry.gauge(f"{prefix}.tenant_p99_us").set(
            summary["tenant_p99_us"]["p99"]  # type: ignore[index]
        )
        registry.counter(f"{prefix}.storm_files_deleted").inc(
            storms["storm_files_deleted"]
        )
        registry.gauge(f"{prefix}.lock_cost_us").set(cost["lock_us"])
        registry.gauge(f"{prefix}.erase_cost_us").set(
            cost["erase_us"] + cost["relocation_us"]
        )
        if sanitization is not None:
            registry.gauge(f"{prefix}.certified_devices").set(
                sanitization["certified_devices"]
            )
            registry.gauge(f"{prefix}.audit_failures").set(
                sanitization["certified_devices"]
                - sanitization["verified_ok"]  # type: ignore[operator]
            )
            registry.gauge(f"{prefix}.exposure_p99_us").set(
                sanitization["exposure_p99_us"]
            )
            registry.gauge(f"{prefix}.residual_secured").set(
                sanitization["residual_secured"]
            )
    return {
        "config": {
            "devices": cfg.devices,
            "tenants": cfg.tenants,
            "seed": cfg.seed,
            "variants": list(cfg.variants),
            "base_workload": cfg.base_workload,
            "zipf_s": cfg.zipf_s,
            "spread": cfg.spread,
            "storm": cfg.storm,
            "storm_count": cfg.storm_count,
            "storm_fraction": cfg.storm_fraction,
            "fingerprint": cfg.fingerprint(),
        },
        "variants": variants,
        "metrics": registry.snapshot(),
    }


def format_fleet(report: dict[str, object]) -> str:
    """The fleet report as an aligned summary table."""
    config = report["config"]  # type: ignore[index]
    lines = [
        "fleet: {devices} devices, {tenants} tenants, storm={storm}"
        " (x{storm_count}, {storm_fraction:.0%} of tenants)".format(**config)
    ]
    header = (
        f"{'variant':<16} {'waf p50':>8} {'tenant p99 us':>14}"
        f" {'backlog peak ms':>16} {'lock ms':>10} {'erase ms':>10}"
        f" {'storm dels':>10}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for variant, summary in report["variants"].items():  # type: ignore[union-attr]
        cost = summary["cost"]
        lines.append(
            f"{variant:<16}"
            f" {summary['waf_spread']['p50']:>8.2f}"
            f" {summary['tenant_p99_us']['p99']:>14.0f}"
            f" {summary['backlog_peak_us'] / 1000.0:>16.2f}"
            f" {cost['lock_us'] / 1000.0:>10.2f}"
            f" {(cost['erase_us'] + cost['relocation_us']) / 1000.0:>10.2f}"
            f" {summary['storms']['storm_files_deleted']:>10}"
        )
    audited = [
        (variant, summary["sanitization"])
        for variant, summary in report["variants"].items()  # type: ignore[union-attr]
        if "sanitization" in summary
    ]
    if audited:
        lines.append("")
        header = (
            f"{'variant':<16} {'certified':>10} {'verified ok':>12}"
            f" {'windows':>9} {'exposure p99 us':>16} {'residual':>9}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for variant, sanitization in audited:
            lines.append(
                f"{variant:<16}"
                f" {sanitization['certified_devices']:>10}"
                f" {sanitization['verified_ok']:>12}"
                f" {sanitization['windows']:>9}"
                f" {sanitization['exposure_p99_us']:>16.0f}"
                f" {sanitization['residual_secured']:>9}"
            )
    return "\n".join(lines)
