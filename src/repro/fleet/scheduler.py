"""Fleet campaign scheduler: device shards over the grid runner.

A campaign is a grid of *(variant, device-shard)* cells.  Each cell
renders its shard's device traces (variant-independent seeds), replays
them through the closed-loop engine with the variant's honest-best
scheduling policy, and returns one JSON-primitive report per device.
Everything fans out through :func:`repro.analysis.parallel.run_grid`
-- the repo's single multiprocessing site (rule SIM09) -- which is
what buys the fleet the established determinism contract for free:

* tasks enumerated in canonical order (variants outer, shards inner),
  merged in that order, never in completion order;
* per-shard seeds from :func:`derive_seed` under the ``"fleet"``
  domain, so fleet seeds can never collide with bench-grid seeds that
  share the same master seed;
* shard results persisted through :class:`GridResultCache`, so a
  killed campaign resumes from its last completed shard and the merged
  report is byte-identical to an uninterrupted run.

Shard cache keys embed :meth:`FleetConfig.fingerprint`, so a resume
directory can never serve shards from a differently-parameterized
campaign -- mismatched keys quarantine and recompute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.latency import policy_for_variant
from repro.analysis.parallel import (
    GridResultCache,
    GridTask,
    derive_seed,
    run_grid_detailed,
)
from repro.audit.run import (
    audit_sim_result,
    audit_telemetry,
    config_fingerprint,
    sanitize_latency_map,
)
from repro.fleet.report import aggregate_fleet, device_report
from repro.fleet.tenants import (
    DeviceSpec,
    FleetConfig,
    TenantWorkload,
    compile_fleet,
)
from repro.sim.arrivals import ClosedLoopArrivals
from repro.sim.runner import SimResult, capture_generator_trace, simulate_trace
from repro.ssd.config import SSDConfig, scaled_config
from repro.telemetry import Telemetry, TraceEvent
from repro.telemetry.export import trace_header, write_chrome_trace, write_jsonl

if TYPE_CHECKING:
    from repro.analysis.progress import ProgressReporter

__all__ = [
    "FleetRun",
    "device_config",
    "run_device",
    "plan_tasks",
    "run_fleet",
    "write_fleet_traces",
]


def device_config(cfg: FleetConfig) -> SSDConfig:
    """The (small) per-device geometry every fleet device shares."""
    return scaled_config(
        blocks_per_chip=cfg.device_blocks,
        wordlines_per_block=cfg.device_wordlines,
    )


def run_device(
    cfg: FleetConfig,
    spec: DeviceSpec,
    variant: str,
    telemetry: Telemetry | None = None,
) -> tuple[TenantWorkload, SimResult]:
    """Render one device's tenant trace and replay it on one variant.

    The trace capture depends only on (cfg, spec) -- never the variant
    -- so all variants see identical host traffic, and the write budget
    scales with the device's share of fleet traffic weight.  Passing a
    :class:`~repro.telemetry.Telemetry` session records the device's
    structured event stream (the audit/trace paths attach one).
    """
    config = device_config(cfg)
    generator = TenantWorkload(cfg, spec, config.logical_pages)
    write_pages = int(
        config.logical_pages * cfg.write_multiplier * spec.traffic_scale
    )
    requests, steady_start = capture_generator_trace(
        config, generator, write_pages
    )
    result = simulate_trace(
        config,
        workload=f"fleet-device-{spec.device_id}",
        variant=variant,
        requests=requests,
        steady_start=steady_start,
        seed=spec.seed,
        policy=policy_for_variant(variant),
        arrivals=ClosedLoopArrivals(cfg.queue_depth),
        telemetry=telemetry,
    )
    return generator, result


def _shards(cfg: FleetConfig, specs: tuple[DeviceSpec, ...]):
    return [
        specs[i: i + cfg.devices_per_shard]
        for i in range(0, len(specs), cfg.devices_per_shard)
    ]


def plan_tasks(
    cfg: FleetConfig,
    specs: tuple[DeviceSpec, ...],
    audit: bool = False,
    trace: bool = False,
) -> list[GridTask]:
    """The canonical task enumeration: variants outer, shards inner.

    ``audit``/``trace`` grow each shard's result with per-device
    certificates / event streams, so they are folded into the workload
    label: shard cache keys embed the label, and an audit-enabled
    campaign must never be served a cached shard that carries no
    evidence (or vice versa).
    """
    shards = _shards(cfg, specs)
    fingerprint = cfg.fingerprint()
    tag = ("+audit" if audit else "") + ("+trace" if trace else "")
    tasks = []
    for variant in cfg.variants:
        for shard_index, chunk in enumerate(shards):
            tasks.append(
                GridTask(
                    index=len(tasks),
                    variant=variant,
                    workload=f"fleet-{fingerprint}[{shard_index}]{tag}",
                    seed=derive_seed(
                        cfg.seed,
                        "shard",
                        variant,
                        shard_index,
                        domain="fleet",
                    ),
                    payload=(cfg, chunk, audit, trace),
                )
            )
    return tasks


def _device_header(
    telemetry: Telemetry,
    config: SSDConfig,
    spec: DeviceSpec,
    variant: str,
) -> dict[str, object]:
    """The evidence-disclosure header for one fleet device's stream."""
    return trace_header(
        telemetry.bus,
        workload=f"fleet-device-{spec.device_id}",
        variant=variant,
        seed=spec.seed,
        device=spec.device_id,
        pages_per_block=config.geometry.pages_per_block,
        config_fingerprint=config_fingerprint(config),
        sanitize_latency_us=sanitize_latency_map(config),
    )


def _shard_task(task: GridTask) -> dict[str, object]:
    """Worker entry point (module-level: picklable for ``jobs > 1``).

    Returns only JSON primitives so the shard cache round-trips results
    identically and the merged report serializes byte-identically.
    With ``audit`` each device record gains a signed sanitization
    certificate (issued and forensically verified here, while the
    simulated device is still alive); with ``trace`` it gains the raw
    event stream plus header for the merge-time trace export.
    """
    cfg, chunk, audit, trace = task.payload  # type: ignore[misc]
    config = device_config(cfg)
    devices = []
    for spec in chunk:
        telemetry = audit_telemetry() if (audit or trace) else None
        generator, result = run_device(
            cfg, spec, task.variant, telemetry=telemetry
        )
        record = device_report(config, cfg, spec, generator, result)
        if audit:
            assert telemetry is not None
            audited = audit_sim_result(
                result,
                telemetry,
                config,
                seed=spec.seed,
                device=spec.device_id,
            )
            record["audit"] = audited.to_dict()
        if trace:
            assert telemetry is not None
            record["trace"] = {
                "header": _device_header(
                    telemetry, config, spec, task.variant
                ),
                "events": [
                    [e.name, e.cat, e.ph, e.ts_us, e.dur_us, e.tid, dict(e.args)]
                    for e in telemetry.bus.events
                ],
            }
        devices.append(record)
    return {"variant": task.variant, "devices": devices}


def write_fleet_traces(
    out_dir: str | Path, shard_results: list[object]
) -> list[Path]:
    """Export a traced campaign: per-device JSONL + one merged Chrome trace.

    ``shard_results`` is the merged grid output (canonical order), so
    file enumeration -- and therefore the merged trace's process order
    -- is deterministic.  Each device's JSONL leads with its disclosure
    header; the Chrome trace carries every ``variant/device`` stream as
    its own process with the header attached as process metadata.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    processes: dict[str, list[TraceEvent]] = {}
    headers: dict[str, dict[str, object]] = {}
    for shard in shard_results:
        variant = shard["variant"]  # type: ignore[index]
        for device in shard["devices"]:  # type: ignore[index]
            payload = device.get("trace")
            if payload is None:
                continue
            events = [
                TraceEvent(name, cat, ph, ts_us, dur_us=dur_us, tid=tid, args=args)
                for name, cat, ph, ts_us, dur_us, tid, args in payload["events"]
            ]
            name = f"{variant}-device-{int(device['device']):04d}"
            path = out / f"{name}.jsonl"
            write_jsonl(path, events, header=payload["header"])
            written.append(path)
            processes[name] = events
            headers[name] = payload["header"]
    merged = out / "trace.json"
    write_chrome_trace(merged, processes, headers=headers)
    written.append(merged)
    return written


def _strip_traces(shard_results: list[object]) -> None:
    """Drop raw event payloads before aggregation: the fleet report must
    not depend on whether ``--trace-out`` was requested."""
    for shard in shard_results:
        for device in shard["devices"]:  # type: ignore[index]
            device.pop("trace", None)


@dataclass
class FleetRun:
    """A completed campaign: the merged report plus shard accounting.

    The accounting (cache hits, retries) intentionally stays *outside*
    ``report``: it differs between fresh and resumed invocations, while
    the report must be byte-identical across them.
    """

    report: dict[str, object]
    shards: int
    cached_shards: int
    retried_shards: int
    #: files written by ``--trace-out`` (empty when tracing was off).
    trace_files: list[Path] = field(default_factory=list)


def run_fleet(
    cfg: FleetConfig,
    jobs: int = 1,
    resume_dir: str | Path | None = None,
    stop_after_shards: int | None = None,
    audit: bool = False,
    trace_dir: str | Path | None = None,
    progress: ProgressReporter | None = None,
) -> FleetRun | None:
    """Run a whole fleet campaign; ``None`` when stopped early.

    ``resume_dir`` persists per-shard results; re-running with the same
    directory (and the same config -- the fingerprint in each cache key
    enforces it) resumes from the last completed shard.
    ``stop_after_shards`` runs only the first N pending cells and then
    returns ``None`` -- the injected-kill hook the resume smoke tests
    use to interrupt a campaign at a deterministic point.

    ``audit`` issues a signed sanitization certificate per device and
    folds the fleet-level exposure/coverage gauges into the report;
    ``trace_dir`` exports per-device JSONL streams plus one merged
    Chrome trace there.  ``progress`` streams shard-completion lines to
    stderr and has zero effect on any artifact.
    """
    specs = compile_fleet(cfg)
    trace = trace_dir is not None
    tasks = plan_tasks(cfg, specs, audit=audit, trace=trace)
    cache = (
        GridResultCache(resume_dir) if resume_dir is not None else None
    )
    if stop_after_shards is not None:
        run_grid_detailed(
            _shard_task,
            tasks[:stop_after_shards],
            jobs=jobs,
            cache=cache,
            progress=progress,
        )
        return None
    grid = run_grid_detailed(
        _shard_task, tasks, jobs=jobs, cache=cache, progress=progress
    )
    trace_files: list[Path] = []
    if trace_dir is not None:
        trace_files = write_fleet_traces(trace_dir, grid.results)
        _strip_traces(grid.results)
    report = aggregate_fleet(cfg, grid.results)
    return FleetRun(
        report=report,
        shards=len(tasks),
        cached_shards=grid.cached_shards,
        retried_shards=grid.retried_shards,
        trace_files=trace_files,
    )
