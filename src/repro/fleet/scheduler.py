"""Fleet campaign scheduler: device shards over the grid runner.

A campaign is a grid of *(variant, device-shard)* cells.  Each cell
renders its shard's device traces (variant-independent seeds), replays
them through the closed-loop engine with the variant's honest-best
scheduling policy, and returns one JSON-primitive report per device.
Everything fans out through :func:`repro.analysis.parallel.run_grid`
-- the repo's single multiprocessing site (rule SIM09) -- which is
what buys the fleet the established determinism contract for free:

* tasks enumerated in canonical order (variants outer, shards inner),
  merged in that order, never in completion order;
* per-shard seeds from :func:`derive_seed` under the ``"fleet"``
  domain, so fleet seeds can never collide with bench-grid seeds that
  share the same master seed;
* shard results persisted through :class:`GridResultCache`, so a
  killed campaign resumes from its last completed shard and the merged
  report is byte-identical to an uninterrupted run.

Shard cache keys embed :meth:`FleetConfig.fingerprint`, so a resume
directory can never serve shards from a differently-parameterized
campaign -- mismatched keys quarantine and recompute.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.latency import policy_for_variant
from repro.analysis.parallel import (
    GridResultCache,
    GridTask,
    derive_seed,
    run_grid_detailed,
)
from repro.fleet.report import aggregate_fleet, device_report
from repro.fleet.tenants import (
    DeviceSpec,
    FleetConfig,
    TenantWorkload,
    compile_fleet,
)
from repro.sim.arrivals import ClosedLoopArrivals
from repro.sim.runner import SimResult, capture_generator_trace, simulate_trace
from repro.ssd.config import SSDConfig, scaled_config

__all__ = [
    "FleetRun",
    "device_config",
    "run_device",
    "plan_tasks",
    "run_fleet",
]


def device_config(cfg: FleetConfig) -> SSDConfig:
    """The (small) per-device geometry every fleet device shares."""
    return scaled_config(
        blocks_per_chip=cfg.device_blocks,
        wordlines_per_block=cfg.device_wordlines,
    )


def run_device(
    cfg: FleetConfig, spec: DeviceSpec, variant: str
) -> tuple[TenantWorkload, SimResult]:
    """Render one device's tenant trace and replay it on one variant.

    The trace capture depends only on (cfg, spec) -- never the variant
    -- so all variants see identical host traffic, and the write budget
    scales with the device's share of fleet traffic weight.
    """
    config = device_config(cfg)
    generator = TenantWorkload(cfg, spec, config.logical_pages)
    write_pages = int(
        config.logical_pages * cfg.write_multiplier * spec.traffic_scale
    )
    requests, steady_start = capture_generator_trace(
        config, generator, write_pages
    )
    result = simulate_trace(
        config,
        workload=f"fleet-device-{spec.device_id}",
        variant=variant,
        requests=requests,
        steady_start=steady_start,
        seed=spec.seed,
        policy=policy_for_variant(variant),
        arrivals=ClosedLoopArrivals(cfg.queue_depth),
    )
    return generator, result


def _shards(cfg: FleetConfig, specs: tuple[DeviceSpec, ...]):
    return [
        specs[i: i + cfg.devices_per_shard]
        for i in range(0, len(specs), cfg.devices_per_shard)
    ]


def plan_tasks(
    cfg: FleetConfig, specs: tuple[DeviceSpec, ...]
) -> list[GridTask]:
    """The canonical task enumeration: variants outer, shards inner."""
    shards = _shards(cfg, specs)
    fingerprint = cfg.fingerprint()
    tasks = []
    for variant in cfg.variants:
        for shard_index, chunk in enumerate(shards):
            tasks.append(
                GridTask(
                    index=len(tasks),
                    variant=variant,
                    workload=f"fleet-{fingerprint}[{shard_index}]",
                    seed=derive_seed(
                        cfg.seed,
                        "shard",
                        variant,
                        shard_index,
                        domain="fleet",
                    ),
                    payload=(cfg, chunk),
                )
            )
    return tasks


def _shard_task(task: GridTask) -> dict[str, object]:
    """Worker entry point (module-level: picklable for ``jobs > 1``).

    Returns only JSON primitives so the shard cache round-trips results
    identically and the merged report serializes byte-identically.
    """
    cfg, chunk = task.payload  # type: ignore[misc]
    config = device_config(cfg)
    devices = []
    for spec in chunk:
        generator, result = run_device(cfg, spec, task.variant)
        devices.append(device_report(config, cfg, spec, generator, result))
    return {"variant": task.variant, "devices": devices}


@dataclass
class FleetRun:
    """A completed campaign: the merged report plus shard accounting.

    The accounting (cache hits, retries) intentionally stays *outside*
    ``report``: it differs between fresh and resumed invocations, while
    the report must be byte-identical across them.
    """

    report: dict[str, object]
    shards: int
    cached_shards: int
    retried_shards: int


def run_fleet(
    cfg: FleetConfig,
    jobs: int = 1,
    resume_dir: str | Path | None = None,
    stop_after_shards: int | None = None,
) -> FleetRun | None:
    """Run a whole fleet campaign; ``None`` when stopped early.

    ``resume_dir`` persists per-shard results; re-running with the same
    directory (and the same config -- the fingerprint in each cache key
    enforces it) resumes from the last completed shard.
    ``stop_after_shards`` runs only the first N pending cells and then
    returns ``None`` -- the injected-kill hook the resume smoke tests
    use to interrupt a campaign at a deterministic point.
    """
    specs = compile_fleet(cfg)
    tasks = plan_tasks(cfg, specs)
    cache = (
        GridResultCache(resume_dir) if resume_dir is not None else None
    )
    if stop_after_shards is not None:
        run_grid_detailed(
            _shard_task, tasks[:stop_after_shards], jobs=jobs, cache=cache
        )
        return None
    grid = run_grid_detailed(_shard_task, tasks, jobs=jobs, cache=cache)
    report = aggregate_fleet(cfg, grid.results)
    return FleetRun(
        report=report,
        shards=len(tasks),
        cached_shards=grid.cached_shards,
        retried_shards=grid.retried_shards,
    )
