"""Scripted fleet-wide deletion storms and churn waves.

A *storm* is a correlated burst of tenant lifecycle events -- a GDPR
deletion wave, a batch of account closures, a churn spike -- that hits
many tenants across the whole fleet at once.  For the paper's question
(how does sanitization cost scale when deletes arrive correlated rather
than trickled?) the interesting property is that the burst is
*fleet-wide*: the same storm must fire, against the same tenants, on
every device shard, no matter how the campaign was partitioned over
workers or how many times it was interrupted and resumed.

That is why the schedule here is pure data and pure functions of the
campaign's master seed:

* :func:`build_schedule` derives the storm times (as fractions of each
  device's steady-state write budget) from the requested kind/count
  alone -- no RNG at all;
* :func:`storm_affects` decides tenant membership with a seeded hash
  threshold, so any shard can ask "is tenant *t* in storm *i*?" and get
  the same answer with zero cross-shard communication.

Both are consumed by :class:`repro.fleet.tenants.TenantWorkload`, which
fires the events while rendering a device's file-level trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.parallel import derive_seed

__all__ = ["STORM_KINDS", "StormEvent", "build_schedule", "storm_affects"]

#: recognized storm kinds ("none" is expressed as an empty schedule).
STORM_KINDS = ("deletion", "churn")


@dataclass(frozen=True)
class StormEvent:
    """One scheduled fleet-wide storm.

    ``at_fraction`` places the storm on each device's own steady-state
    write budget (0 = start of steady state, 1 = end), so devices with
    different traffic scales experience the storm at the same *logical*
    point of their campaign.  ``tenant_fraction`` is the fleet-wide
    fraction of tenants the storm touches.
    """

    index: int
    kind: str
    at_fraction: float
    tenant_fraction: float

    def __post_init__(self) -> None:
        if self.kind not in STORM_KINDS:
            raise ValueError(f"unknown storm kind {self.kind!r}")
        if not 0.0 < self.at_fraction < 1.0:
            raise ValueError("at_fraction must be in (0, 1)")
        if not 0.0 < self.tenant_fraction <= 1.0:
            raise ValueError("tenant_fraction must be in (0, 1]")


def build_schedule(
    kind: str,
    count: int = 1,
    tenant_fraction: float = 0.25,
    start: float = 0.3,
    end: float = 0.85,
) -> tuple[StormEvent, ...]:
    """``count`` storms of one kind, evenly spaced across (start, end).

    ``kind="none"`` (or ``count=0``) yields an empty schedule.  The
    spacing is closed-form -- ``build_schedule`` is called once per
    campaign *and* once per shard and must agree byte-for-byte.
    """
    if kind == "none" or count == 0:
        return ()
    if kind not in STORM_KINDS:
        raise ValueError(f"unknown storm kind {kind!r}")
    if count < 0:
        raise ValueError("count must be >= 0")
    if not 0.0 < start < end < 1.0:
        raise ValueError("need 0 < start < end < 1")
    span = end - start
    return tuple(
        StormEvent(
            index=i,
            kind=kind,
            at_fraction=start + span * (i + 1) / (count + 1),
            tenant_fraction=tenant_fraction,
        )
        for i in range(count)
    )


def storm_affects(master_seed: int, storm: StormEvent, tenant: int) -> bool:
    """Whether one tenant is hit by one storm -- fleet-wide consistent.

    A pure hash threshold on (master seed, storm index, tenant id): the
    expected affected fraction is ``storm.tenant_fraction``, and every
    shard computes the identical membership without communication, which
    is what keeps serial, parallel, and resumed campaigns byte-identical.
    """
    draw = derive_seed(
        master_seed, "storm", storm.index, tenant, domain="fleet"
    )
    return draw / 2.0**63 < storm.tenant_fraction
