"""Fleet-scale simulation: many devices, many tenants, one campaign.

The single-device pipeline answers "what does sanitization cost this
SSD"; this package answers the operator's version of the question --
what does a *correlated* burst of account deletions cost a fleet of
hundreds of devices serving a heavy-tailed tenant population, and how
far apart are the lock-based (secSSD) and erase-based (erSSD/scrSSD)
designs when the burst lands everywhere at once?

Layers (all deterministic, all derived from one master seed):

* :mod:`repro.fleet.tenants` -- tenant population, Zipf traffic
  weights, consistent-hash placement, per-device workload compilation;
* :mod:`repro.fleet.storms` -- scripted fleet-wide deletion storms and
  churn waves with hash-threshold membership;
* :mod:`repro.fleet.scheduler` -- device shards fanned over the grid
  runner with checkpoint-backed resume;
* :mod:`repro.fleet.report` -- cross-fleet distributions (WAF spread,
  tenant-weighted p99, fleet sanitization-backlog curves, lock-vs-erase
  cost) published through the telemetry metrics registry.

The contract throughout: a campaign's merged report is byte-identical
whether it ran serially, over N workers, or was killed and resumed.
"""

from repro.fleet.report import aggregate_fleet, device_report, format_fleet
from repro.fleet.scheduler import FleetRun, plan_tasks, run_device, run_fleet
from repro.fleet.storms import StormEvent, build_schedule, storm_affects
from repro.fleet.tenants import (
    DeviceSpec,
    FleetConfig,
    TenantSlot,
    TenantWorkload,
    compile_fleet,
)

__all__ = [
    "FleetConfig",
    "FleetRun",
    "DeviceSpec",
    "TenantSlot",
    "TenantWorkload",
    "StormEvent",
    "aggregate_fleet",
    "build_schedule",
    "compile_fleet",
    "device_report",
    "format_fleet",
    "plan_tasks",
    "run_device",
    "run_fleet",
    "storm_affects",
]
