"""Behavioural model of one flash page.

At system scale (Table 1, Figure 14) we do not simulate cell physics per
page -- we track page *state* and an opaque data payload, which is all the
FTL, the VerTrace profiler, and the forensic attacker need.  The payload
is any Python object (the host layer stores small tokens identifying file
and version), mirroring how the paper's VerTrace annotates physical pages
with file metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class PageState(Enum):
    """Physical condition of a page (not the FTL's logical status)."""

    ERASED = "erased"
    PROGRAMMED = "programmed"


@dataclass
class Page:
    """One physical page: payload plus spare-area metadata.

    Attributes
    ----------
    state:
        Whether the page holds programmed data.
    data:
        Opaque payload written by the host (None when erased).
    spare:
        Spare-area (OOB) metadata dictionary -- the FTL stores the logical
        page address here, exactly like real FTLs do for power-loss
        recovery; VerTrace stores file annotations.
    program_time:
        Simulation time (us) at which the page was programmed.
    """

    state: PageState = PageState.ERASED
    data: Any = None
    spare: dict[str, Any] = field(default_factory=dict)
    program_time: float | None = None

    @property
    def is_erased(self) -> bool:
        return self.state is PageState.ERASED

    def program(self, data: Any, spare: dict[str, Any] | None, now: float) -> None:
        """Transition ERASED -> PROGRAMMED; caller validates ordering."""
        self.state = PageState.PROGRAMMED
        self.data = data
        self.spare = dict(spare or {})
        self.program_time = now

    def erase(self) -> None:
        """Reset to the erased state, destroying payload and spare data."""
        self.state = PageState.ERASED
        self.data = None
        self.spare = {}
        self.program_time = None

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Checkpoint payload (see :mod:`repro.checkpoint`)."""
        return {
            "state": self.state,
            "data": self.data,
            "spare": dict(self.spare),
            "program_time": self.program_time,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.state = state["state"]
        self.data = state["data"]
        self.spare = dict(state["spare"])
        self.program_time = state["program_time"]
