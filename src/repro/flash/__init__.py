"""NAND flash substrate: geometry, cell physics, and chip state machines.

Public surface of the substrate the Evanesco reproduction is built on:

* :class:`~repro.flash.geometry.Geometry` / :class:`~repro.flash.geometry.CellType`
  -- chip layout and address arithmetic;
* :class:`~repro.flash.chip.FlashChip` -- behavioural chip with the
  standard read/program/erase command set and timing;
* :class:`~repro.flash.vth.VthModel` -- calibrated threshold-voltage
  distribution engine backing every chip-level experiment;
* :class:`~repro.flash.ecc.EccModel` -- ECC correction-limit model;
* :mod:`~repro.flash.osr` / :mod:`~repro.flash.scrub` -- the
  reprogram-based sanitization baselines of Section 4.
"""

from repro.flash.chip import ERASED_DATA, ZERO_DATA, ChipStats, FlashChip, ReadResult
from repro.flash.block import Block, BlockState
from repro.flash.ecc import EccModel, default_ecc
from repro.flash.encoding import Encoding, encoding_for
from repro.flash.errors import (
    AddressError,
    EraseStateError,
    FlashError,
    LockedBlockError,
    LockedPageError,
    ProgramOrderError,
    UncorrectableError,
    WearOutError,
)
from repro.flash.geometry import CellType, Geometry, PageRole, small_geometry
from repro.flash.page import Page, PageState
from repro.flash.vth import StressState, VthModel, default_params, model_for

__all__ = [
    "AddressError",
    "Block",
    "BlockState",
    "CellType",
    "ChipStats",
    "EccModel",
    "Encoding",
    "ERASED_DATA",
    "EraseStateError",
    "FlashChip",
    "FlashError",
    "Geometry",
    "LockedBlockError",
    "LockedPageError",
    "Page",
    "PageRole",
    "PageState",
    "ProgramOrderError",
    "ReadResult",
    "StressState",
    "UncorrectableError",
    "VthModel",
    "WearOutError",
    "ZERO_DATA",
    "default_ecc",
    "default_params",
    "encoding_for",
    "model_for",
    "small_geometry",
]
