"""Error-correcting-code model.

The paper reports every chip-level result normalized to "the maximum RBER
value below which an ECC module can correct errors" (Fig. 6 note).  We
model the ECC as a hard threshold on per-codeword raw bit-error count: a
BCH-style code over 1-KiB codewords that corrects up to ``t`` bit errors.

Two views are provided:

* the *rate* view used by analytic experiments -- a page is readable iff
  its expected RBER is below :attr:`EccModel.limit_rber`;
* the *codeword* view used by the bit-accurate chip -- errors are counted
  per codeword and the read fails if any codeword exceeds ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.constants import ECC_LIMIT_RBER


@dataclass(frozen=True)
class EccModel:
    """BCH-style block ECC with hard correction threshold.

    Parameters
    ----------
    codeword_bytes:
        Payload bytes protected per codeword.
    correctable_bits:
        Maximum raw bit errors correctable per codeword.
    """

    codeword_bytes: int = 1024
    correctable_bits: int = 82  # ~1% of 8192 bits, matching ECC_LIMIT_RBER

    def __post_init__(self) -> None:
        if self.codeword_bytes <= 0:
            raise ValueError("codeword_bytes must be positive")
        if self.correctable_bits < 0:
            raise ValueError("correctable_bits must be non-negative")

    @property
    def codeword_bits(self) -> int:
        return self.codeword_bytes * 8

    @property
    def limit_rber(self) -> float:
        """RBER at which a codeword sits exactly at the correction limit."""
        return self.correctable_bits / self.codeword_bits

    # ------------------------------------------------------------------
    def correctable_rber(self, rber: float) -> bool:
        """Whether a page with expected RBER ``rber`` is reliably readable."""
        return rber <= self.limit_rber

    def normalized(self, rber: float) -> float:
        """RBER normalized to the ECC limit (1.0 == at the limit)."""
        return rber / self.limit_rber

    def correct(self, error_counts: np.ndarray) -> bool:
        """Codeword view: True iff every codeword's error count <= t."""
        return bool(np.all(np.asarray(error_counts) <= self.correctable_bits))

    def codewords_per_page(self, page_bytes: int) -> int:
        if page_bytes % self.codeword_bytes:
            raise ValueError(
                f"page size {page_bytes} not a multiple of codeword size"
            )
        return page_bytes // self.codeword_bytes


def default_ecc() -> EccModel:
    """ECC matching :data:`repro.flash.constants.ECC_LIMIT_RBER`."""
    model = EccModel()
    assert abs(model.limit_rber - ECC_LIMIT_RBER) / ECC_LIMIT_RBER < 0.01
    return model
