"""Behavioural model of one NAND flash chip.

The chip exposes the standard command set (read / program / erase) with
the paper's timing constants and keeps operation statistics.  The
Evanesco-enhanced chip in :mod:`repro.core.evanesco_chip` subclasses this
to add `pLock` / `bLock` and access-permission checks on the read path.

Reads return a :class:`ReadResult` carrying the payload, spare metadata,
and the operation latency; a read of an erased page returns the all-ones
pattern token ``ERASED_DATA`` (erased cells read as '1').
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, NamedTuple

from repro.flash import constants
from repro.flash.block import Block, BlockState
from repro.flash.errors import (
    AddressError,
    EraseFailError,
    PowerLossInjected,
    ProgramFailError,
    UncorrectableError,
)
from repro.flash.geometry import Geometry

#: Token returned when reading an erased page (all cells read '1').
ERASED_DATA = "<erased:all-ones>"

#: Token returned when reading a locked page/block (chip outputs zeros).
ZERO_DATA = "<locked:all-zeros>"

#: Token left behind by a scrub pulse (Vth states merged, data destroyed).
SCRUBBED_DATA = "<scrubbed:destroyed>"

#: Token left in a page whose program pulse train was interrupted
#: (injected program failure or power loss mid-program); reads back
#: uncorrectable until the block is erased or the wordline scrubbed.
TORN_DATA = "<torn:mid-distribution>"

#: Fault-hook directives (see :mod:`repro.faults`): the hook's ``on_op``
#: returns one of these (or ``""`` for "proceed normally").
FAULT_FAIL = "fail"
FAULT_POWER_LOSS = "power-loss"


class ReadResult(NamedTuple):
    """Outcome of a page read.

    A ``NamedTuple``: one is built per flash read and tuple construction
    is several times cheaper than a frozen-dataclass ``__init__``.
    """

    data: Any
    spare: dict[str, Any]
    latency_us: float
    #: whether the chip's AP logic suppressed the data (Evanesco chips).
    blocked: bool = False


@dataclass
class ChipStats:
    """Cumulative operation counts and busy time for one chip."""

    reads: int = 0
    programs: int = 0
    erases: int = 0
    plocks: int = 0
    blocks_locked: int = 0
    busy_time_us: float = 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "reads": self.reads,
            "programs": self.programs,
            "erases": self.erases,
            "plocks": self.plocks,
            "blocks_locked": self.blocks_locked,
            "busy_time_us": self.busy_time_us,
        }

    def state_dict(self) -> dict[str, float]:
        """Checkpoint payload -- same keys as :meth:`snapshot`."""
        return self.snapshot()

    def load_state_dict(self, state: dict[str, float]) -> None:
        self.reads = state["reads"]
        self.programs = state["programs"]
        self.erases = state["erases"]
        self.plocks = state["plocks"]
        self.blocks_locked = state["blocks_locked"]
        self.busy_time_us = state["busy_time_us"]


@dataclass
class FlashChip:
    """One NAND die: an array of blocks plus the command interface."""

    geometry: Geometry
    pe_limit: int | None = None
    t_read_us: float = constants.T_READ_US
    t_prog_us: float = constants.T_PROG_US
    t_erase_us: float = constants.T_BERS_US
    #: optional fault hook (duck-typed :class:`repro.faults.FaultInjector`):
    #: consulted once per chip command; may fail the op or cut power.
    fault_hook: Any = None
    #: optional wear gate (duck-typed :class:`repro.flash.wear.
    #: WearReadGate`): consulted on every data sense; fails the read when
    #: the owning block's accumulated P/E wear pushes the expected RBER
    #: past the ECC limit.  None (the default) keeps the historical
    #: fresh-forever sense path bit-for-bit.
    wear_gate: Any = None
    blocks: list[Block] = field(init=False)
    stats: ChipStats = field(init=False)

    def __post_init__(self) -> None:
        self.blocks = [
            Block(self.geometry, i, pe_limit=self.pe_limit)
            for i in range(self.geometry.blocks_per_chip)
        ]
        self.stats = ChipStats()
        # incrementally maintained FREE-block set: every Block state
        # transition notifies _track_block_state, so free_blocks() never
        # rescans the whole array (it used to be O(blocks) per call)
        self._free_blocks = set(range(self.geometry.blocks_per_chip))
        for block in self.blocks:
            block.state_listener = self._track_block_state

    def _track_block_state(
        self, index: int, old_state: BlockState, new_state: BlockState
    ) -> None:
        if new_state is BlockState.FREE:
            self._free_blocks.add(index)
        elif old_state is BlockState.FREE:
            self._free_blocks.discard(index)

    # ------------------------------------------------------------------
    def block(self, block_index: int) -> Block:
        self.geometry.check_block(block_index)
        return self.blocks[block_index]

    def _locate(self, ppn: int) -> tuple[Block, int]:
        # split_ppn, inlined: one _locate per read/program makes the
        # extra call layer measurable
        geometry = self.geometry
        if not 0 <= ppn < geometry.pages_per_chip:
            geometry.check_ppn(ppn)
        block_index, page_offset = divmod(ppn, geometry.pages_per_block)
        return self.blocks[block_index], page_offset

    # ------------------------------------------------------------------
    # fault-hook plumbing (repro.faults)
    # ------------------------------------------------------------------
    def _begin_op(self, op: str) -> bool:
        """Consult the hook; returns True when the op must status-fail.

        A power-loss directive raises here -- before the command touches
        any cell.  ``program_page`` does not use this helper because an
        interrupted program must still tear the target page.
        """
        hook = self.fault_hook
        if hook is None:
            return False
        directive = hook.on_op(op)
        if directive == FAULT_POWER_LOSS:
            raise PowerLossInjected(f"power loss at {op} boundary")
        return directive == FAULT_FAIL

    # ------------------------------------------------------------------
    def read_page(self, ppn: int, now: float = 0.0) -> ReadResult:
        """Standard page read; subclasses overlay access control."""
        fail = False if self.fault_hook is None else self._begin_op("read")
        return self._sense_page(ppn, fail)

    def _sense_page(self, ppn: int, fail: bool) -> ReadResult:
        """Shared sensing path (fault decision already taken)."""
        # _locate and Block.page, inlined: one sense per flash read
        geometry = self.geometry
        if not 0 <= ppn < geometry.pages_per_chip:
            geometry.check_ppn(ppn)
        block_index, page_offset = divmod(ppn, geometry.pages_per_block)
        page = self.blocks[block_index].pages[page_offset]
        stats = self.stats
        stats.reads += 1
        stats.busy_time_us += self.t_read_us
        if fail:
            raise UncorrectableError(
                f"ppn {ppn}: injected transient read failure",
                rber=1.0,
                limit=constants.ECC_LIMIT_RBER,
            )
        if page.is_erased:
            return ReadResult(ERASED_DATA, {}, self.t_read_us)
        if page.spare.get("torn"):
            raise UncorrectableError(
                f"ppn {ppn}: torn page (program was interrupted)",
                rber=1.0,
                limit=constants.ECC_LIMIT_RBER,
            )
        if self.wear_gate is not None:
            self.wear_gate.check_readable(self.blocks[block_index], ppn)
        return ReadResult(page.data, dict(page.spare), self.t_read_us)

    def program_page(
        self,
        ppn: int,
        data: Any,
        spare: dict[str, Any] | None = None,
        now: float = 0.0,
    ) -> float:
        """Program one page; returns the operation latency (us)."""
        hook = self.fault_hook
        directive = "" if hook is None else hook.on_op("program")
        block, page_offset = self._locate(ppn)
        if directive:
            # the pulse train stopped mid-flight (status-fail or power
            # cut): the page is consumed with cells between distributions
            block.program(page_offset, TORN_DATA, {"torn": True}, now)
            self.stats.programs += 1
            self.stats.busy_time_us += self.t_prog_us
            if directive == FAULT_POWER_LOSS:
                raise PowerLossInjected(f"power loss during program of ppn {ppn}")
            raise ProgramFailError(f"ppn {ppn}: program status-fail")
        block.program(page_offset, data, spare, now)
        self.stats.programs += 1
        self.stats.busy_time_us += self.t_prog_us
        return self.t_prog_us

    def erase_block(self, block_index: int, now: float = 0.0) -> float:
        """Erase one block; returns the operation latency (us)."""
        if self._begin_op("erase"):
            raise EraseFailError(f"block {block_index}: erase status-fail")
        block = self.block(block_index)
        block.erase(now)
        self.stats.erases += 1
        self.stats.busy_time_us += self.t_erase_us
        return self.t_erase_us

    def scrub_wordline(
        self, block_index: int, wordline: int, latency_us: float = 100.0
    ) -> float:
        """Destroy every page of a wordline with a one-shot scrub pulse.

        Section 4: scrubbing merges the Vth states of all cells on the
        wordline, so every page it stores becomes garbage.  The pages stay
        *programmed* (their cells are high-Vth, not erased), so they cannot
        be reused until the block is erased.  The caller must have moved
        any live sibling pages elsewhere first.
        """
        self._begin_op("scrub")
        block = self.block(block_index)
        if not 0 <= wordline < self.geometry.wordlines_per_block:
            raise AddressError(f"wordline {wordline} out of range")
        base = wordline * self.geometry.pages_per_wordline
        for offset in range(base, base + self.geometry.pages_per_wordline):
            page = block.pages[offset]
            if not page.is_erased:
                page.data = SCRUBBED_DATA
                page.spare = {}
        self.stats.busy_time_us += latency_us
        return latency_us

    # ------------------------------------------------------------------
    def next_programmable_page(self, block_index: int) -> int | None:
        """Offset of the next in-order programmable page, if any."""
        block = self.block(block_index)
        if block.state is BlockState.ERASE_PENDING or block.is_full:
            return None
        return block.next_page

    def free_blocks(self) -> list[int]:
        """Indices of blocks that are erased and empty (ascending).

        Served from the incrementally maintained set; sorting keeps the
        historical index-order contract so allocator refills and
        recovery layouts stay byte-identical to the scan they replaced.
        """
        return sorted(self._free_blocks)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Checkpoint payload (see :mod:`repro.checkpoint`)."""
        return {
            "blocks": [block.state_dict() for block in self.blocks],
            "stats": self.stats.state_dict(),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore in place -- Block objects are mutated, not replaced,
        so their ``state_listener`` wiring survives; the free set is
        rebuilt in one pass afterwards."""
        for block, payload in zip(self.blocks, state["blocks"]):
            block.load_state_dict(payload)
        self.stats.load_state_dict(state["stats"])
        self._free_blocks = {
            i
            for i, block in enumerate(self.blocks)
            if block.state is BlockState.FREE
        }

    def raw_dump(self) -> dict[int, Any]:
        """Forensic view: payload of every programmed page, keyed by PPN.

        This is what the Section-5.1 attacker obtains by de-soldering the
        chip and replaying read commands on a *non*-Evanesco part: all
        programmed data, regardless of the FTL's logical page status.
        Evanesco chips override this to honour the AP flags, because the
        blocking logic lives inside the chip, below every interface.
        """
        out: dict[int, Any] = {}
        for block in self.blocks:
            for offset, page in enumerate(block.pages):
                if not page.is_erased:
                    ppn = self.geometry.ppn(block.index, offset)
                    out[ppn] = page.data
        return out
