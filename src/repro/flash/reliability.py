"""Reliability studies built on the Vth engine.

This module packages the chip-level characterization sweeps that the paper
presents as figures:

* :func:`open_interval_study` -- Figure 10, RBER versus the time a block
  stayed erased before being programmed, under three conditions (fresh,
  after P/E cycling, after P/E cycling + retention).
* :func:`retention_study` -- RBER versus retention time.
* :func:`pe_cycling_study` -- RBER versus P/E cycles.

Results are normalized to the ECC limit, matching how the paper reports
them ("All measurements are normalized to the maximum RBER value below
which an ECC module can correct errors").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.ecc import EccModel, default_ecc
from repro.flash.geometry import CellType, PageRole
from repro.flash.vth import StressState, VthModel, model_for

#: Figure 10 x-axis categories mapped to open-interval lengths in days.
#: The paper gives qualitative bins; we assign a geometric ladder.
OPEN_INTERVAL_BINS: dict[str, float] = {
    "Zero": 0.0,
    "Very short": 0.05,
    "Short": 0.25,
    "Medium": 1.0,
    "Long": 4.0,
    "Very long": 16.0,
}

#: Figure 10's three measurement conditions.
OPEN_INTERVAL_CONDITIONS: tuple[str, ...] = (
    "No P/E cycling",
    "After P/E cycling",
    "After P/E cycling + retention",
)


@dataclass(frozen=True)
class RberPoint:
    """One (condition, x, normalized RBER) sample of a sweep."""

    condition: str
    x_label: str
    x_value: float
    rber: float
    normalized_rber: float


def _worst_role_rber(model: VthModel, stress: StressState) -> float:
    """RBER of the worst page role -- what limits readability of a WL."""
    return max(model.expected_rber_all_roles(stress).values())


def open_interval_study(
    cell_type: CellType = CellType.TLC,
    pe_cycles: int = 1000,
    retention_days: float = 365.0,
    ecc: EccModel | None = None,
    model: VthModel | None = None,
) -> list[RberPoint]:
    """Reproduce Figure 10: RBER vs. open-interval length.

    Returns one point per (condition, bin).  The paper's headline: at the
    longest tracked interval RBER is ~30 % larger than at zero interval.
    """
    ecc = ecc or default_ecc()
    model = model or model_for(cell_type)
    points: list[RberPoint] = []
    conditions = {
        OPEN_INTERVAL_CONDITIONS[0]: StressState(),
        OPEN_INTERVAL_CONDITIONS[1]: StressState(pe_cycles=pe_cycles),
        OPEN_INTERVAL_CONDITIONS[2]: StressState(
            pe_cycles=pe_cycles, retention_days=retention_days
        ),
    }
    for condition, base in conditions.items():
        for label, days in OPEN_INTERVAL_BINS.items():
            stress = StressState(
                pe_cycles=base.pe_cycles,
                retention_days=base.retention_days,
                open_interval_days=days,
            )
            rber = _worst_role_rber(model, stress)
            points.append(
                RberPoint(condition, label, days, rber, ecc.normalized(rber))
            )
    return points


def open_interval_penalty(points: list[RberPoint], condition: str) -> float:
    """Relative RBER increase from zero to the longest interval."""
    series = [p for p in points if p.condition == condition]
    series.sort(key=lambda p: p.x_value)
    if not series or series[0].rber <= 0.0:
        raise ValueError("study must include a zero-interval point with RBER > 0")
    return series[-1].rber / series[0].rber - 1.0


def retention_study(
    cell_type: CellType = CellType.TLC,
    pe_cycles: int = 1000,
    days_grid: tuple[float, ...] = (0.0, 1.0, 10.0, 100.0, 365.0, 1825.0),
    role: PageRole | None = None,
    ecc: EccModel | None = None,
) -> list[RberPoint]:
    """RBER vs. retention time at fixed P/E cycles."""
    ecc = ecc or default_ecc()
    model = model_for(cell_type)
    points = []
    for days in days_grid:
        stress = StressState(pe_cycles=pe_cycles, retention_days=days)
        if role is None:
            rber = _worst_role_rber(model, stress)
        else:
            rber = model.expected_rber(stress, role)
        points.append(
            RberPoint("retention", f"{days:g}d", days, rber, ecc.normalized(rber))
        )
    return points


def pe_cycling_study(
    cell_type: CellType = CellType.TLC,
    cycles_grid: tuple[int, ...] = (0, 250, 500, 750, 1000, 2000, 3000),
    ecc: EccModel | None = None,
) -> list[RberPoint]:
    """RBER vs. P/E cycles with zero retention."""
    ecc = ecc or default_ecc()
    model = model_for(cell_type)
    points = []
    for cycles in cycles_grid:
        stress = StressState(pe_cycles=cycles)
        rber = _worst_role_rber(model, stress)
        points.append(
            RberPoint("cycling", f"{cycles}", float(cycles), rber, ecc.normalized(rber))
        )
    return points


def program_disturb_study(
    cell_type: CellType = CellType.TLC,
    pulses_grid: tuple[int, ...] = (0, 1, 2, 4, 8),
    pe_cycles: int = 1000,
    ecc: EccModel | None = None,
) -> list[RberPoint]:
    """RBER of data cells vs. inhibited program pulses (SBPI disturb).

    This backs the Figure 9(b) concern: locking a page re-applies a
    program pulse to the wordline with data cells inhibited; too high a
    voltage or too long a pulse measurably disturbs the stored data.
    """
    ecc = ecc or default_ecc()
    model = model_for(cell_type)
    points = []
    for pulses in pulses_grid:
        stress = StressState(pe_cycles=pe_cycles, disturb_pulses=pulses)
        rber = _worst_role_rber(model, stress)
        points.append(
            RberPoint(
                "program-disturb", f"{pulses}", float(pulses), rber, ecc.normalized(rber)
            )
        )
    return points
