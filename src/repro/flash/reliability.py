"""Reliability studies built on the Vth engine.

This module packages the chip-level characterization sweeps that the paper
presents as figures:

* :func:`open_interval_study` -- Figure 10, RBER versus the time a block
  stayed erased before being programmed, under three conditions (fresh,
  after P/E cycling, after P/E cycling + retention).
* :func:`retention_study` -- RBER versus retention time.
* :func:`pe_cycling_study` -- RBER versus P/E cycles.

Results are normalized to the ECC limit, matching how the paper reports
them ("All measurements are normalized to the maximum RBER value below
which an ECC module can correct errors").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.flash.ecc import EccModel, default_ecc
from repro.flash.geometry import CellType, PageRole
from repro.flash.vth import StressState, VthModel, VthParams, model_for

#: Figure 10 x-axis categories mapped to open-interval lengths in days.
#: The paper gives qualitative bins; we assign a geometric ladder.
OPEN_INTERVAL_BINS: dict[str, float] = {
    "Zero": 0.0,
    "Very short": 0.05,
    "Short": 0.25,
    "Medium": 1.0,
    "Long": 4.0,
    "Very long": 16.0,
}

#: Figure 10's three measurement conditions.
OPEN_INTERVAL_CONDITIONS: tuple[str, ...] = (
    "No P/E cycling",
    "After P/E cycling",
    "After P/E cycling + retention",
)


@dataclass(frozen=True)
class RberPoint:
    """One (condition, x, normalized RBER) sample of a sweep."""

    condition: str
    x_label: str
    x_value: float
    rber: float
    normalized_rber: float


def _quantize_count(value: int, quantum: int) -> int:
    """Snap an integer stressor to the nearest bucket center."""
    if quantum <= 1 or value <= 0:
        return max(value, 0)
    return int(round(value / quantum)) * quantum


def _quantize_days(days: float, log_quantum: float) -> float:
    """Snap a time stressor to the nearest bucket center in log1p space.

    Both retention and the open-interval effect act through
    ``log1p(days)`` (charge detrapping) or a saturating exponential, so
    equal-width buckets in log1p space give a uniform bound on the Vth
    shift error regardless of the absolute time scale.  Zero maps to
    exactly zero (the no-stress fast path stays exact).
    """
    if days <= 0.0 or log_quantum <= 0.0:
        return max(days, 0.0)
    snapped = round(math.log1p(days) / log_quantum) * log_quantum
    return math.expm1(snapped)


@dataclass
class StressBucketCache:
    """Memoized per-role RBER over quantized stress buckets.

    Evaluating the analytic RBER means building the full Vth mixture
    (per-state Gaussians under stress) and integrating its overlaps --
    cheap once, hot when every grid point, scorecard target, or per-page
    read probe asks again.  This cache quantizes the
    ``(pe_cycles, retention, disturb, open-interval, read-disturb)``
    stress vector onto bucket centers and memoizes the mixture result
    per bucket, so nearby stresses share one evaluation.

    The answer is the *bucket center's* exact RBER, which makes cached
    results order-independent (the first query of a bucket does not
    privilege its own coordinates).  With the default quanta the
    relative RBER error versus an unquantized evaluation stays under
    ~2 % across the stress ranges the studies sweep (see DESIGN.md
    section 3g for the bound); pass quanta of 1/0.0 to make the cache
    exact (pure memoization, no bucketing).
    """

    model: VthModel
    #: P/E-cycle bucket width (cycles).  RBER is steepest in P/E count
    #: at low cycles, so this is the tightest quantum; every grid the
    #: studies sweep is a multiple of 25, so study points sit exactly on
    #: bucket centers.
    pe_quantum: int = 25
    #: time bucket width in log1p(days) space (retention + open interval).
    time_log_quantum: float = 0.02
    #: read-disturb bucket width (reads).
    reads_quantum: int = 256
    hits: int = 0
    misses: int = 0
    _buckets: dict[StressState, dict[PageRole, float]] = field(
        default_factory=dict, repr=False
    )

    def bucket_of(self, stress: StressState) -> StressState:
        """Canonical bucket-center stress containing ``stress``.

        ``disturb_pulses`` stays exact: it is a small integer (lock
        pulses are single digits) and the disturb response is the
        steepest dimension, so bucketing it would dominate the error.
        """
        return StressState(
            pe_cycles=_quantize_count(stress.pe_cycles, self.pe_quantum),
            retention_days=_quantize_days(
                stress.retention_days, self.time_log_quantum
            ),
            disturb_pulses=stress.disturb_pulses,
            open_interval_days=_quantize_days(
                stress.open_interval_days, self.time_log_quantum
            ),
            read_disturb_count=_quantize_count(
                stress.read_disturb_count, self.reads_quantum
            ),
        )

    def rber_all_roles(self, stress: StressState) -> dict[PageRole, float]:
        """Memoized :meth:`VthModel.expected_rber_all_roles` by bucket."""
        bucket = self.bucket_of(stress)
        cached = self._buckets.get(bucket)
        if cached is None:
            self.misses += 1
            cached = self.model.expected_rber_all_roles(bucket)
            self._buckets[bucket] = cached
        else:
            self.hits += 1
        return cached

    def expected_rber(self, stress: StressState, role: PageRole) -> float:
        return self.rber_all_roles(stress)[role]

    def worst_role_rber(self, stress: StressState) -> float:
        return max(self.rber_all_roles(stress).values())


#: process-wide cache registry, one per calibration (the studies build a
#: fresh VthModel per call; identical params must still share buckets).
_BUCKET_CACHES: dict[VthParams, StressBucketCache] = {}


def bucket_cache_for(model: VthModel) -> StressBucketCache:
    """The shared :class:`StressBucketCache` for this model's params."""
    cache = _BUCKET_CACHES.get(model.params)
    if cache is None:
        cache = _BUCKET_CACHES[model.params] = StressBucketCache(model)
    return cache


def _worst_role_rber(model: VthModel, stress: StressState) -> float:
    """RBER of the worst page role -- what limits readability of a WL."""
    return bucket_cache_for(model).worst_role_rber(stress)


def open_interval_study(
    cell_type: CellType = CellType.TLC,
    pe_cycles: int = 1000,
    retention_days: float = 365.0,
    ecc: EccModel | None = None,
    model: VthModel | None = None,
) -> list[RberPoint]:
    """Reproduce Figure 10: RBER vs. open-interval length.

    Returns one point per (condition, bin).  The paper's headline: at the
    longest tracked interval RBER is ~30 % larger than at zero interval.
    """
    ecc = ecc or default_ecc()
    model = model or model_for(cell_type)
    points: list[RberPoint] = []
    conditions = {
        OPEN_INTERVAL_CONDITIONS[0]: StressState(),
        OPEN_INTERVAL_CONDITIONS[1]: StressState(pe_cycles=pe_cycles),
        OPEN_INTERVAL_CONDITIONS[2]: StressState(
            pe_cycles=pe_cycles, retention_days=retention_days
        ),
    }
    for condition, base in conditions.items():
        for label, days in OPEN_INTERVAL_BINS.items():
            stress = StressState(
                pe_cycles=base.pe_cycles,
                retention_days=base.retention_days,
                open_interval_days=days,
            )
            rber = _worst_role_rber(model, stress)
            points.append(
                RberPoint(condition, label, days, rber, ecc.normalized(rber))
            )
    return points


def open_interval_penalty(points: list[RberPoint], condition: str) -> float:
    """Relative RBER increase from zero to the longest interval."""
    series = [p for p in points if p.condition == condition]
    series.sort(key=lambda p: p.x_value)
    if not series or series[0].rber <= 0.0:
        raise ValueError("study must include a zero-interval point with RBER > 0")
    return series[-1].rber / series[0].rber - 1.0


def retention_study(
    cell_type: CellType = CellType.TLC,
    pe_cycles: int = 1000,
    days_grid: tuple[float, ...] = (0.0, 1.0, 10.0, 100.0, 365.0, 1825.0),
    role: PageRole | None = None,
    ecc: EccModel | None = None,
) -> list[RberPoint]:
    """RBER vs. retention time at fixed P/E cycles."""
    ecc = ecc or default_ecc()
    model = model_for(cell_type)
    points = []
    for days in days_grid:
        stress = StressState(pe_cycles=pe_cycles, retention_days=days)
        if role is None:
            rber = _worst_role_rber(model, stress)
        else:
            rber = bucket_cache_for(model).expected_rber(stress, role)
        points.append(
            RberPoint("retention", f"{days:g}d", days, rber, ecc.normalized(rber))
        )
    return points


def pe_cycling_study(
    cell_type: CellType = CellType.TLC,
    cycles_grid: tuple[int, ...] = (0, 250, 500, 750, 1000, 2000, 3000),
    ecc: EccModel | None = None,
) -> list[RberPoint]:
    """RBER vs. P/E cycles with zero retention."""
    ecc = ecc or default_ecc()
    model = model_for(cell_type)
    points = []
    for cycles in cycles_grid:
        stress = StressState(pe_cycles=cycles)
        rber = _worst_role_rber(model, stress)
        points.append(
            RberPoint("cycling", f"{cycles}", float(cycles), rber, ecc.normalized(rber))
        )
    return points


def program_disturb_study(
    cell_type: CellType = CellType.TLC,
    pulses_grid: tuple[int, ...] = (0, 1, 2, 4, 8),
    pe_cycles: int = 1000,
    ecc: EccModel | None = None,
) -> list[RberPoint]:
    """RBER of data cells vs. inhibited program pulses (SBPI disturb).

    This backs the Figure 9(b) concern: locking a page re-applies a
    program pulse to the wordline with data cells inhibited; too high a
    voltage or too long a pulse measurably disturbs the stored data.
    """
    ecc = ecc or default_ecc()
    model = model_for(cell_type)
    points = []
    for pulses in pulses_grid:
        stress = StressState(pe_cycles=pe_cycles, disturb_pulses=pulses)
        rber = _worst_role_rber(model, stress)
        points.append(
            RberPoint(
                "program-disturb", f"{pulses}", float(pulses), rber, ecc.normalized(rber)
            )
        )
    return points
