"""Gray-coded state encodings for multi-level NAND cells.

A cell storing *m* bits uses ``2**m`` threshold-voltage (Vth) states.  The
paper's Figure 2 gives the standard Gray maps:

* MLC (Fig. 2a), codes written ``(MSB, LSB)``::

      E = 11,  P1 = 10,  P2 = 00,  P3 = 01

* TLC (Fig. 2b), codes written ``(MSB, CSB, LSB)``::

      E = 111, P1 = 110, P2 = 100, P3 = 000,
      P4 = 010, P5 = 011, P6 = 001, P7 = 101

Reading one page of a wordline probes the cells against the subset of read
reference voltages at which that page's bit flips between adjacent states;
:meth:`Encoding.read_levels` exposes that subset, which the reliability
model uses to count errors per page role.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.flash.geometry import CellType, PageRole

#: state-index -> bit tuple, LSB first (index 0 = LSB page bit).
_SLC_CODES: tuple[tuple[int, ...], ...] = ((1,), (0,))

_MLC_CODES: tuple[tuple[int, ...], ...] = (
    # (LSB, MSB): E=11, P1=10, P2=00, P3=01 as (MSB, LSB) in the paper
    (1, 1),  # E
    (0, 1),  # P1
    (0, 0),  # P2
    (1, 0),  # P3
)

_TLC_CODES: tuple[tuple[int, ...], ...] = (
    # (LSB, CSB, MSB): paper lists (MSB, CSB, LSB)
    (1, 1, 1),  # E   = 111
    (0, 1, 1),  # P1  = 110
    (0, 0, 1),  # P2  = 100
    (0, 0, 0),  # P3  = 000
    (0, 1, 0),  # P4  = 010
    (1, 1, 0),  # P5  = 011
    (1, 0, 0),  # P6  = 001
    (1, 0, 1),  # P7  = 101
)

def _validated_qlc() -> tuple[tuple[int, ...], ...]:
    """Build a valid 16-state Gray sequence for QLC.

    We generate the reflected binary Gray code and permute bit positions so
    the LSB page has the fewest read levels, matching commercial layouts
    closely enough for the simulator's purposes.
    """
    codes = []
    for i in range(16):
        g = i ^ (i >> 1)
        codes.append(tuple((g >> b) & 1 for b in range(4)))
    # Gray code of 0 is 0b0000 but the erased state must be all-ones, so
    # complement every bit (complementing preserves the Gray property).
    return tuple(tuple(1 - bit for bit in code) for code in codes)


@dataclass(frozen=True)
class Encoding:
    """Bit encoding for one cell type."""

    cell_type: CellType
    codes: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        n = self.cell_type.states
        if len(self.codes) != n:
            raise ValueError(f"{self.cell_type.name} needs {n} codes")
        if len(set(self.codes)) != n:
            raise ValueError("codes must be distinct")
        for a, b in zip(self.codes, self.codes[1:]):
            if sum(x != y for x, y in zip(a, b)) != 1:
                raise ValueError(f"codes {a} -> {b} are not Gray-adjacent")
        if any(bit != 1 for bit in self.codes[0]):
            raise ValueError("erased state must encode all-ones")

    # ------------------------------------------------------------------
    @property
    def bits_per_cell(self) -> int:
        return int(self.cell_type)

    def state_for_bits(self, bits: tuple[int, ...]) -> int:
        """Vth state index encoding the given (LSB-first) bit tuple."""
        return self.codes.index(bits)

    def bit_of_state(self, state: int, role: PageRole) -> int:
        """The bit the given page role reads from a cell in ``state``."""
        return self.codes[state][int(role)]

    def bits_table(self) -> np.ndarray:
        """(states, bits_per_cell) uint8 array: table[s, r] = bit.

        Built once per encoding and cached -- the RBER hot path calls
        this per evaluation, and the codes are immutable.
        """
        cached = getattr(self, "_bits_table", None)
        if cached is None:
            cached = np.asarray(self.codes, dtype=np.uint8)
            object.__setattr__(self, "_bits_table", cached)
        return cached

    def read_levels(self, role: PageRole) -> tuple[int, ...]:
        """Read-reference indices that the given page role senses.

        Level *i* separates state *i* from state *i+1*; a role senses level
        *i* iff its bit differs between those two states.  The number of
        levels per role determines that page's read latency class and which
        state-overlap tails produce bit errors on that page.
        """
        if int(role) >= self.bits_per_cell:
            raise ValueError(
                f"role {role!r} does not exist on {self.cell_type.name} cells"
            )
        levels = []
        for i in range(len(self.codes) - 1):
            if self.codes[i][int(role)] != self.codes[i + 1][int(role)]:
                levels.append(i)
        return tuple(levels)

    def states_array_for_pages(self, page_bits: np.ndarray) -> np.ndarray:
        """Map per-page bit planes to cell states.

        Parameters
        ----------
        page_bits:
            Array of shape ``(bits_per_cell, n_cells)`` with bit plane
            ``page_bits[r]`` holding the data of page role *r* (LSB first).

        Returns
        -------
        Array of shape ``(n_cells,)`` with the target Vth state per cell.
        """
        if page_bits.shape[0] != self.bits_per_cell:
            raise ValueError(
                f"expected {self.bits_per_cell} bit planes, got {page_bits.shape[0]}"
            )
        lut = np.zeros(1 << self.bits_per_cell, dtype=np.uint8)
        for state, code in enumerate(self.codes):
            key = 0
            for r, bit in enumerate(code):
                key |= int(bit) << r
            lut[key] = state
        keys = np.zeros(page_bits.shape[1], dtype=np.uint8)
        for r in range(self.bits_per_cell):
            keys |= (page_bits[r].astype(np.uint8) & 1) << r
        return lut[keys]


@lru_cache(maxsize=None)
def encoding_for(cell_type: CellType) -> Encoding:
    """Return the canonical encoding for a cell type."""
    if cell_type is CellType.SLC:
        return Encoding(cell_type, _SLC_CODES)
    if cell_type is CellType.MLC:
        return Encoding(cell_type, _MLC_CODES)
    if cell_type is CellType.TLC:
        return Encoding(cell_type, _TLC_CODES)
    if cell_type is CellType.QLC:
        return Encoding(cell_type, _validated_qlc())
    raise ValueError(f"unsupported cell type: {cell_type!r}")
