"""Scrubbing sanitization model -- Section 4 / related work [10].

Scrubbing destroys *every* page of a wordline by raising the Vth of all
its cells until the state distributions merge ("the Vth distributions of
different states are mixed together, which makes it impossible to identify
the original data").  Unlike OSR, scrubbing is safe for the scrubbed
wordline's neighbours but cannot preserve any page of the scrubbed WL --
in MLC/TLC flash the valid sibling pages must first be copied elsewhere.

The scrSSD baseline (Section 7) relies on this model; the FTL layer
accounts for the required sibling-page relocations, while this module
provides the physics: after :func:`scrub_wordline`, every page of the
wordline reads as garbage (RBER ~ 50 %), and :func:`is_recoverable`
reports whether any original bit survives above chance.
"""

from __future__ import annotations

import numpy as np

from repro.flash.geometry import PageRole
from repro.flash.mixture import WordlineMixture
from repro.flash.vth import StressState

#: One-shot scrub pulse spread (V): intentionally coarse, the goal is
#: mixing, not placement.
SCRUB_SIGMA = 0.45


def scrub_wordline(mixture: WordlineMixture, target_vth: float | None = None) -> None:
    """Push every component of the wordline to a common high Vth.

    All components end up centred on ``target_vth`` (default: the top
    programmed state's nominal mean), with a wide one-shot spread, so that
    no read reference separates former states any more.
    """
    model = mixture.model
    if target_vth is None:
        means, _ = model.state_distributions(StressState())
        target_vth = float(means[-1])
    mixture.components = [
        c.shifted(target_vth - c.mean, SCRUB_SIGMA) for c in mixture.components
    ]


def page_read_entropy(mixture: WordlineMixture, role: PageRole) -> float:
    """Fraction of cells whose read bit still matches the original data.

    For a perfectly scrubbed wordline this approaches the bias of the
    all-merged distribution (most cells read as the top state, whose bit
    is fixed), i.e. the *mutual information* with the original data is
    zero even when raw match rate is above 0.5.
    """
    return 1.0 - mixture.rber(role)


def is_recoverable(
    mixture: WordlineMixture,
    role: PageRole,
    advantage_threshold: float = 0.05,
) -> bool:
    """Whether reading ``role`` gives an attacker a statistical advantage.

    We compare the read bit's correlation with the original data against
    what a data-independent strategy achieves.  After scrubbing, cells
    from *different original states* land in the same region, so the read
    bit no longer depends on the original state; formally we check whether
    the per-original-state read-bit distributions differ by more than
    ``advantage_threshold`` in total variation.
    """
    bits = mixture.model.encoding.bits_table()[:, int(role)].astype(np.int64)
    # P[read bit = 1 | original state]
    per_state: dict[int, list[float]] = {}
    for c in mixture.components:
        mass = mixture.region_mass(c)
        p_one = float(mass[bits == 1].sum())
        per_state.setdefault(c.original_state, []).append(p_one)
    probs = [float(np.mean(v)) for v in per_state.values()]
    if len(probs) < 2:
        return False
    return (max(probs) - min(probs)) > advantage_threshold
