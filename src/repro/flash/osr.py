"""One-shot-reprogramming (OSR) sanitization model -- Section 4.

OSR (Lin et al., ICCAD'18) destroys one page of a multi-level wordline by
applying a single low-voltage program pulse that moves the erased-state
cells up into the next state's region (paper Figure 5a): after the shift
the sanitized page can no longer be read correctly at its first read
reference.  The risk is *over-programming* (Figure 5b): cells pushed past
the following reference corrupt the bit of the page that is supposed to
stay valid.

The paper measures this on real chips (Figure 6):

* 3D MLC at 3K P/E cycles -- after sanitizing the LSB page, 7.4 % of MSB
  pages exceed the ECC limit;
* 3D TLC at 1K P/E cycles -- after sanitizing LSB+CSB, *all* MSB pages
  become unreadable;
* after a 1-year retention both get substantially worse (beyond 1.5x the
  ECC limit).

We reproduce the experiment with the Gaussian-mixture machinery: the OSR
pulse shifts the affected components by a per-wordline overshoot (process
variation across wordlines is exactly why the paper says per-WL parameter
tuning is infeasible), then RBER of the remaining valid page is evaluated
before and after retention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flash.ecc import EccModel, default_ecc
from repro.flash.geometry import CellType, PageRole
from repro.flash.mixture import WordlineMixture
from repro.flash.vth import StressState, VthModel, model_for

#: Figure 6's three measurement conditions.
OSR_CONDITIONS: tuple[str, ...] = ("initial", "after_sanitize", "after_retention")


@dataclass(frozen=True)
class OsrConfig:
    """Tunable parameters of the OSR pulse model.

    ``overshoot_mean``/``overshoot_wl_sigma`` describe the per-wordline
    placement error of the one-shot pulse (process variation across WLs);
    ``oneshot_sigma`` is the extra per-cell spread a single uncalibrated
    pulse adds compared to fine-grained ISPP.
    """

    overshoot_mean: float = -0.3
    overshoot_wl_sigma: float = 0.15
    oneshot_sigma: float = 0.35
    retention_days: float = 365.0

    def __post_init__(self) -> None:
        if self.oneshot_sigma < 0 or self.overshoot_wl_sigma < 0:
            raise ValueError("sigmas must be non-negative")

    @classmethod
    def for_cell_type(cls, cell_type: CellType) -> "OsrConfig":
        """Default OSR pulse per cell type.

        The *same physical pulse imprecision* (one-shot spread, per-WL
        placement variation) is assumed for both densities; only the
        nominal target differs because the state ladders differ.  TLC's
        Vth window packs 8 states where MLC packs 4, so the fixed
        imprecision eats a far larger fraction of the margin -- the core
        reason the paper finds OSR unusable on 3D TLC.
        """
        if cell_type is CellType.MLC:
            return cls(overshoot_mean=-0.285)
        if cell_type is CellType.TLC:
            return cls(overshoot_mean=-0.05)
        if cell_type is CellType.QLC:
            # QLC's margins are roughly half of TLC's: the pulse can
            # barely aim *between* states at all
            return cls(overshoot_mean=-0.02)
        return cls()


def sanitize_wordline_osr(
    mixture: WordlineMixture,
    role: PageRole,
    overshoot: float,
    oneshot_sigma: float,
) -> None:
    """Apply one OSR pulse destroying ``role``'s data in ``mixture``.

    Every component whose current state sits at or below the role's first
    read level is pushed to the mean of the next state plus ``overshoot``,
    with ``oneshot_sigma`` extra spread (Figure 5 semantics).
    """
    levels = mixture.model.encoding.read_levels(role)
    if not levels:
        raise ValueError(f"role {role!r} senses no read level")
    first_level = levels[0]
    means, _ = mixture.model.state_distributions(StressState())
    target = float(means[first_level + 1]) + overshoot

    def selector(c):
        return c.mean <= float(mixture.model.params.read_refs[first_level])

    new_components = []
    for c in mixture.components:
        if selector(c):
            new_components.append(
                c.shifted(target - c.mean, oneshot_sigma)
            )
        else:
            new_components.append(c)
    mixture.components = new_components


def _roles_to_sanitize(cell_type: CellType) -> tuple[PageRole, ...]:
    """Pages destroyed in the Figure 6 experiment (all but MSB)."""
    roles = PageRole.for_cell_type(cell_type)
    return roles[:-1]


@dataclass
class OsrStudyResult:
    """Normalized MSB-page RBER distributions under the three conditions."""

    cell_type: CellType
    pe_cycles: int
    #: condition -> per-wordline normalized RBER array.
    normalized_rber: dict[str, np.ndarray] = field(default_factory=dict)

    def fraction_exceeding_limit(self, condition: str) -> float:
        vals = self.normalized_rber[condition]
        return float(np.mean(vals > 1.0))

    def box_stats(self, condition: str) -> dict[str, float]:
        vals = self.normalized_rber[condition]
        q1, med, q3 = np.percentile(vals, [25, 50, 75])
        return {
            "min": float(vals.min()),
            "q1": float(q1),
            "median": float(med),
            "q3": float(q3),
            "max": float(vals.max()),
        }


def default_pe_cycles(cell_type: CellType) -> int:
    """Endurance point used in Figure 6 (3K for MLC, 1K for TLC).

    QLC is evaluated at its typical ~300-cycle endurance -- the paper's
    "future MLC flash memory" extrapolation (Section 1).
    """
    if cell_type is CellType.MLC:
        return 3000
    if cell_type is CellType.QLC:
        return 300
    return 1000


def osr_study(
    cell_type: CellType,
    n_wordlines: int = 256,
    config: OsrConfig | None = None,
    ecc: EccModel | None = None,
    model: VthModel | None = None,
    seed: int = 0,
    sanitize_roles: tuple[PageRole, ...] | None = None,
    measure_role: PageRole | None = None,
) -> OsrStudyResult:
    """Reproduce Figure 6 for one cell type.

    For each simulated wordline we evaluate the surviving page's
    normalized RBER (1) right after programming, (2) right after
    OSR-sanitizing the target page(s) of the wordline, and (3) after
    ``config.retention_days`` of retention following the sanitization.

    Defaults match the paper's Figure 6: sanitize every page but the
    top one and measure the top (MSB) page.  Density-scaling studies can
    override ``sanitize_roles``/``measure_role``, e.g. to measure the
    page *adjacent* to the reprogram targets on QLC.
    """
    if cell_type is CellType.SLC:
        raise ValueError(
            "OSR is a multi-level-cell problem; SLC wordlines hold one page"
        )
    config = config or OsrConfig.for_cell_type(cell_type)
    ecc = ecc or default_ecc()
    model = model or model_for(cell_type)
    pe = default_pe_cycles(cell_type)
    roles = PageRole.for_cell_type(cell_type)
    if sanitize_roles is None:
        sanitize_roles = _roles_to_sanitize(cell_type)
    msb = measure_role if measure_role is not None else roles[-1]
    if msb in sanitize_roles:
        raise ValueError("the measured role must not be sanitized")
    rng = np.random.default_rng(seed)

    initial = np.empty(n_wordlines)
    after_sanitize = np.empty(n_wordlines)
    after_retention = np.empty(n_wordlines)
    base_stress = StressState(pe_cycles=pe)
    for i in range(n_wordlines):
        mixture = WordlineMixture.programmed(model, base_stress)
        initial[i] = ecc.normalized(mixture.rber(msb))

        overshoot = rng.normal(config.overshoot_mean, config.overshoot_wl_sigma)
        for role in sanitize_roles:
            sanitize_wordline_osr(mixture, role, overshoot, config.oneshot_sigma)
        after_sanitize[i] = ecc.normalized(mixture.rber(msb))

        mixture.apply_retention(config.retention_days, pe_cycles=pe)
        after_retention[i] = ecc.normalized(mixture.rber(msb))

    result = OsrStudyResult(cell_type=cell_type, pe_cycles=pe)
    result.normalized_rber = {
        "initial": initial,
        "after_sanitize": after_sanitize,
        "after_retention": after_retention,
    }
    return result
