"""Gaussian-mixture representation of a wordline's cell population.

The OSR and scrubbing sanitization models (Section 4) transform cell
populations in ways that break the one-Gaussian-per-state assumption of
:mod:`repro.flash.vth` -- e.g. one-shot reprogramming moves the erased
population *into* the P1 region with overshoot tails.  This module keeps a
list of components, each remembering the *original* state whose data it
carried, so we can compute the RBER of the still-valid pages after a
sanitization pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.vth import VthModel, StressState, _norm_cdf
from repro.flash.geometry import PageRole


@dataclass(frozen=True)
class Component:
    """One Gaussian sub-population of a wordline.

    Attributes
    ----------
    original_state:
        The Vth state originally programmed -- the ground truth against
        which read bits are compared.
    weight:
        Fraction of the wordline's cells in this component.
    mean, sigma:
        Current Gaussian parameters (V).
    """

    original_state: int
    weight: float
    mean: float
    sigma: float

    def shifted(self, d_mean: float, extra_sigma: float) -> "Component":
        """A copy with the mean moved and variance increased."""
        return Component(
            original_state=self.original_state,
            weight=self.weight,
            mean=self.mean + d_mean,
            sigma=float(np.hypot(self.sigma, extra_sigma)),
        )


class WordlineMixture:
    """Mutable mixture describing one wordline's Vth population."""

    def __init__(self, model: VthModel, components: list[Component]):
        self.model = model
        self.components = list(components)
        total = sum(c.weight for c in self.components)
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"component weights sum to {total}, expected 1.0")

    # ------------------------------------------------------------------
    @classmethod
    def programmed(
        cls,
        model: VthModel,
        stress: StressState,
        state_population: np.ndarray | None = None,
    ) -> "WordlineMixture":
        """Mixture for a freshly-evaluated wordline under ``stress``."""
        n = model.params.cell_type.states
        if state_population is None:
            state_population = np.full(n, 1.0 / n)
        else:
            state_population = np.asarray(state_population, dtype=np.float64)
            state_population = state_population / state_population.sum()
        means, sigmas = model.state_distributions(stress)
        comps = [
            Component(s, float(state_population[s]), float(means[s]), float(sigmas[s]))
            for s in range(n)
            if state_population[s] > 0.0
        ]
        return cls(model, comps)

    # ------------------------------------------------------------------
    def transform(
        self,
        selector,
        d_mean: float,
        extra_sigma: float,
    ) -> None:
        """Shift every component matching ``selector(component)``."""
        self.components = [
            c.shifted(d_mean, extra_sigma) if selector(c) else c
            for c in self.components
        ]

    def apply_retention(self, days: float, pe_cycles: int = 0) -> None:
        """Apply retention loss to every component in place.

        Retention moves each component down in proportion to how high it
        currently sits (charge leaks more from fuller floating gates),
        mirroring :meth:`VthModel.state_distributions`.
        """
        if days <= 0.0:
            return
        p = self.model.params
        log_t = float(np.log1p(days))
        accel = 1.0 + 0.8 * (pe_cycles / 1000.0)
        lo = p.means[0]
        hi = p.means[-1]
        span = hi - lo
        new = []
        for c in self.components:
            frac = min(max((c.mean - lo) / span, 0.0), 1.5)
            new.append(
                Component(
                    original_state=c.original_state,
                    weight=c.weight,
                    mean=c.mean - p.retention_coef * accel * frac * log_t,
                    sigma=c.sigma + p.retention_sigma_coef * accel * log_t,
                )
            )
        self.components = new

    # ------------------------------------------------------------------
    def region_mass(self, component: Component) -> np.ndarray:
        """Probability of the component's cells landing in each read region."""
        refs = np.asarray(self.model.params.read_refs, dtype=np.float64)
        cdf = np.asarray(_norm_cdf((refs - component.mean) / component.sigma))
        n = len(refs) + 1
        mass = np.empty(n, dtype=np.float64)
        mass[0] = cdf[0]
        for r in range(1, n - 1):
            mass[r] = cdf[r] - cdf[r - 1]
        mass[n - 1] = 1.0 - cdf[n - 2]
        return np.clip(mass, 0.0, 1.0)

    def rber(self, role: PageRole) -> float:
        """Expected RBER of the given page role, against original data."""
        bits = self.model.encoding.bits_table()[:, int(role)].astype(np.int64)
        err = 0.0
        for c in self.components:
            mass = self.region_mass(c)
            true_bit = bits[c.original_state]
            wrong = mass[bits != true_bit].sum()
            err += c.weight * wrong
        return float(err)

    def sample(
        self, n_cells: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw (original_states, vths) samples from the mixture."""
        weights = np.array([c.weight for c in self.components])
        idx = rng.choice(len(self.components), size=n_cells, p=weights / weights.sum())
        means = np.array([c.mean for c in self.components])[idx]
        sigmas = np.array([c.sigma for c in self.components])[idx]
        orig = np.array([c.original_state for c in self.components])[idx]
        return orig, rng.normal(means, sigmas)
