"""Chip geometry and physical address arithmetic.

The paper's SecureSSD configuration (Section 7): two channels, four 3D TLC
chips per channel; each chip has 428 blocks; each block has 576 16-KiB pages
organized as 192 wordlines times 3 pages/WL (LSB, CSB, MSB).

Addresses
---------
A *physical page number* (PPN) is flat within a chip::

    ppn = block_index * pages_per_block + page_offset

and a page maps onto a wordline as ``wl = page_offset // bits_per_cell``
with page role ``page_offset % bits_per_cell`` (0=LSB, 1=CSB, 2=MSB for
TLC).  This interleaved layout matches the WL-sequential program order used
by real TLC parts and by the paper's Figure 8 example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.flash.errors import AddressError


class CellType(IntEnum):
    """Bits stored per flash cell."""

    SLC = 1
    MLC = 2
    TLC = 3
    QLC = 4

    @property
    def states(self) -> int:
        """Number of distinct Vth states (2**bits)."""
        return 1 << int(self)


class PageRole(IntEnum):
    """Which page of a multi-level wordline a PPN refers to."""

    LSB = 0
    CSB = 1
    MSB = 2
    TSB = 3  # top-significant bit, QLC only

    @classmethod
    def for_cell_type(cls, cell_type: CellType) -> tuple["PageRole", ...]:
        return tuple(cls(i) for i in range(int(cell_type)))


@dataclass(frozen=True)
class Geometry:
    """Immutable description of one flash chip's layout.

    Parameters mirror the paper's configuration; the defaults give the
    Section-7 chip (428 blocks x 192 WLs x 3 pages x 16 KiB = 4 GiB/chip).
    """

    blocks_per_chip: int = 428
    wordlines_per_block: int = 192
    cell_type: CellType = CellType.TLC
    page_size_bytes: int = 16 * 1024
    spare_bytes_per_page: int = 1024
    cells_per_wordline: int = 8192
    # -- derived sizes, precomputed once: they are operands of the
    # per-operation address arithmetic (split_ppn and friends run on
    # every flash op), so recomputing them per access was a measurable
    # share of engine time.  Excluded from eq/hash: fully determined by
    # the core fields above.
    bits_per_cell: int = field(init=False, repr=False, compare=False)
    pages_per_wordline: int = field(init=False, repr=False, compare=False)
    pages_per_block: int = field(init=False, repr=False, compare=False)
    pages_per_chip: int = field(init=False, repr=False, compare=False)
    block_bytes: int = field(init=False, repr=False, compare=False)
    chip_bytes: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.blocks_per_chip <= 0:
            raise ValueError("blocks_per_chip must be positive")
        if self.wordlines_per_block <= 0:
            raise ValueError("wordlines_per_block must be positive")
        if self.page_size_bytes <= 0 or self.page_size_bytes % 4096:
            raise ValueError("page_size_bytes must be a positive multiple of 4 KiB")
        if self.cells_per_wordline <= 0:
            raise ValueError("cells_per_wordline must be positive")
        set_ = object.__setattr__  # frozen dataclass: init-time only
        set_(self, "bits_per_cell", int(self.cell_type))
        set_(self, "pages_per_wordline", int(self.cell_type))
        set_(self, "pages_per_block", self.wordlines_per_block * int(self.cell_type))
        set_(self, "pages_per_chip", self.blocks_per_chip * self.pages_per_block)
        set_(self, "block_bytes", self.pages_per_block * self.page_size_bytes)
        set_(self, "chip_bytes", self.blocks_per_chip * self.block_bytes)

    # -- address arithmetic ----------------------------------------------
    def check_block(self, block: int) -> None:
        if not 0 <= block < self.blocks_per_chip:
            raise AddressError(
                f"block {block} out of range [0, {self.blocks_per_chip})"
            )

    def check_ppn(self, ppn: int) -> None:
        if not 0 <= ppn < self.pages_per_chip:
            raise AddressError(f"ppn {ppn} out of range [0, {self.pages_per_chip})")

    def ppn(self, block: int, page_offset: int) -> int:
        """Flat physical page number for (block, in-block page offset)."""
        if not 0 <= block < self.blocks_per_chip:
            self.check_block(block)
        if not 0 <= page_offset < self.pages_per_block:
            raise AddressError(
                f"page offset {page_offset} out of range [0, {self.pages_per_block})"
            )
        return block * self.pages_per_block + page_offset

    def split_ppn(self, ppn: int) -> tuple[int, int]:
        """Inverse of :meth:`ppn`: returns (block, page_offset)."""
        if not 0 <= ppn < self.pages_per_chip:
            self.check_ppn(ppn)
        return divmod(ppn, self.pages_per_block)

    def wordline_of(self, page_offset: int) -> int:
        """Wordline index inside the block for a page offset."""
        if not 0 <= page_offset < self.pages_per_block:
            raise AddressError(f"page offset {page_offset} out of range")
        return page_offset // self.pages_per_wordline

    def role_of(self, page_offset: int) -> PageRole:
        """Page role (LSB/CSB/MSB/...) for a page offset."""
        if not 0 <= page_offset < self.pages_per_block:
            raise AddressError(f"page offset {page_offset} out of range")
        return PageRole(page_offset % self.pages_per_wordline)

    def page_offset(self, wordline: int, role: PageRole) -> int:
        """Page offset inside a block for (wordline, role)."""
        if not 0 <= wordline < self.wordlines_per_block:
            raise AddressError(
                f"wordline {wordline} out of range [0, {self.wordlines_per_block})"
            )
        if int(role) >= self.pages_per_wordline:
            raise AddressError(f"role {role!r} invalid for {self.cell_type.name}")
        return wordline * self.pages_per_wordline + int(role)

    def sibling_offsets(self, page_offset: int) -> tuple[int, ...]:
        """All page offsets sharing the wordline of ``page_offset``."""
        wl = self.wordline_of(page_offset)
        base = wl * self.pages_per_wordline
        return tuple(base + i for i in range(self.pages_per_wordline))


def small_geometry(
    blocks: int = 8,
    wordlines: int = 4,
    cell_type: CellType = CellType.TLC,
    page_size_bytes: int = 16 * 1024,
) -> Geometry:
    """A tiny geometry for unit tests (fast, but structurally faithful)."""
    return Geometry(
        blocks_per_chip=blocks,
        wordlines_per_block=wordlines,
        cell_type=cell_type,
        page_size_bytes=page_size_bytes,
        cells_per_wordline=64,
    )
