"""Exception hierarchy for the NAND flash substrate.

Every abnormal condition raised by the flash layer derives from
:class:`FlashError` so callers can distinguish flash-level failures from
programming mistakes.  The FTL layer catches the *recoverable* subset
(e.g. :class:`UncorrectableError` from a read) and translates it into
device-level responses; state-machine violations such as
:class:`ProgramOrderError` indicate an FTL bug and are allowed to
propagate.
"""

from __future__ import annotations


class FlashError(Exception):
    """Base class for all flash-substrate errors."""


class AddressError(FlashError):
    """A physical address is out of range for the chip geometry."""


class ProgramOrderError(FlashError):
    """A program violated NAND ordering rules.

    Raised when programming a page that is not erased (erase-before-program)
    or when programming wordlines of a block out of sequential order, which
    real 3D NAND forbids to bound cell-to-cell interference.
    """


class EraseStateError(FlashError):
    """An operation was attempted on a block in an incompatible state."""


class UncorrectableError(FlashError):
    """A read returned more raw bit errors than the ECC can correct.

    Attributes
    ----------
    rber:
        The raw bit-error rate observed for the failing codeword.
    limit:
        The ECC correction limit expressed as an RBER.
    """

    def __init__(self, message: str, rber: float, limit: float) -> None:
        super().__init__(message)
        self.rber = rber
        self.limit = limit


class ProgramFailError(FlashError):
    """A page program reported status-fail.

    The interrupted pulse train leaves the target page *torn*: its cells
    sit between Vth distributions, so the page is consumed (it cannot be
    re-programmed before an erase) and reads back uncorrectable.  The
    FTL remaps the write to a fresh page and counts the failure against
    the block's grown-bad threshold.
    """


class EraseFailError(FlashError):
    """A block erase reported status-fail; the block's data is intact.

    Real controllers retire the block.  Because the residual data may
    include secured stale copies, the FTL scrubs every programmed
    wordline (scrub pulses do not depend on the erase circuitry) before
    adding the block to the grown-bad table.
    """


class LockedPageError(FlashError):
    """A read targeted a page whose pAP flag is disabled.

    The chip does not actually raise on locked reads -- it returns all-zero
    data -- but the strict read API (`read_page(..., strict=True)`) raises
    this so that tests and auditors can assert lock enforcement.
    """


class LockedBlockError(FlashError):
    """A read targeted a block whose bAP flag (SSL) is disabled."""


class WearOutError(FlashError):
    """A block exceeded its rated program/erase cycle endurance."""


class PowerLossInjected(Exception):
    """The fault injector cut power at an operation boundary.

    Deliberately *not* a :class:`FlashError`: no chip ever reports this
    condition, and no FTL retry/fallback path may catch it -- it is a
    simulation control signal that unwinds straight out of ``submit`` so
    the torture harness can run power-loss recovery.
    """
