"""Live wear -> read-path reliability coupling.

ROADMAP item 3's missing link: the reliability model's ``pe_cycles``
stress axis was only ever exercised by the offline studies in
:mod:`repro.flash.osr` and :mod:`repro.flash.reliability` -- the live
simulation aged blocks (``Block.erase_count``) without the read path
ever noticing.  :class:`WearReadGate` closes the loop: attached to a
chip (like the fault hook), it derives a :class:`~repro.flash.vth.
StressState` from the owning block's erase count on every data sense
and fails the read with :class:`~repro.flash.errors.UncorrectableError`
once the expected worst-role RBER crosses the ECC limit.

Evaluations go through the process-wide shared
:class:`~repro.flash.reliability.StressBucketCache`, so the aging
campaigns inherit both its memoization (one mixture integration per
25-cycle bucket, not per read) and its documented <=2 % quantization
bound -- the gate's pass/fail threshold is exact at bucket centers and
within that bound everywhere else.

The gate is **deterministic** (same erase count, same verdict -- no
sampling), which keeps the serial == parallel == resumed byte-identity
contract intact, and it is *off by default*: chips without a gate run
the exact historical sense path.

``suspended()`` mirrors the fault injector's escape hatch: salvage
reads (a live page must not be lost to wear during GC) and the runtime
sanitizer's probe reads (which ask about sanitization state, not
readability) bypass the gate without mutating it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.flash.block import Block
from repro.flash.constants import ECC_LIMIT_RBER
from repro.flash.errors import UncorrectableError
from repro.flash.geometry import CellType
from repro.flash.reliability import StressBucketCache, bucket_cache_for
from repro.flash.vth import StressState, model_for


@dataclass
class WearReadGate:
    """Deterministic wear-vs-ECC check for the chip sense path."""

    cache: StressBucketCache
    #: RBER above which the (fixed-strength) ECC can no longer correct.
    limit_rber: float = ECC_LIMIT_RBER
    _suspend_depth: int = field(default=0, repr=False)

    @classmethod
    def for_cell_type(cls, cell_type: CellType) -> "WearReadGate":
        """A gate over the shared bucket cache for this cell type."""
        return cls(cache=bucket_cache_for(model_for(cell_type)))

    # ------------------------------------------------------------------
    def expected_rber(self, erase_count: int) -> float:
        """Worst-role RBER at this wear level (memoized per bucket)."""
        return self.cache.worst_role_rber(StressState(pe_cycles=erase_count))

    def readable(self, erase_count: int) -> bool:
        return self.expected_rber(erase_count) <= self.limit_rber

    def check_readable(self, block: Block, ppn: int) -> None:
        """Raise ``UncorrectableError`` when wear defeats the ECC."""
        if self._suspend_depth:
            return
        rber = self.expected_rber(block.erase_count)
        if rber > self.limit_rber:
            raise UncorrectableError(
                f"ppn {ppn}: wear-induced RBER exceeds the ECC limit "
                f"(block {block.index} at {block.erase_count} P/E cycles)",
                rber=rber,
                limit=self.limit_rber,
            )

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Temporarily disable the gate (salvage / sanitizer probes)."""
        self._suspend_depth += 1
        try:
            yield
        finally:
            self._suspend_depth -= 1
