"""Timing, voltage, and reliability constants for the flash substrate.

The values follow the paper's evaluation configuration (Section 7) and its
chip-level characterization (Section 5):

* ``tREAD`` = 80 us, ``tPROG`` = 700 us, ``tBERS`` = 3.5 ms (3D TLC NAND).
* ``tPLOCK`` = 100 us, ``tBLOCK_LOCK`` = 300 us (chosen by the design-space
  exploration of Figures 9 and 12).
* TLC endurance of ~1K P/E cycles, MLC of ~3K (Section 2.1).

All times are expressed in **microseconds** throughout the code base, and
all voltages in **volts**.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Flash operation latencies (microseconds). Section 7: "We set flash
# operation timing parameters for tREAD, tPROG, and tBERS to 80us, 700us,
# and 3.5ms" and "tpLock and tbLock to 100us and 300us".
# --------------------------------------------------------------------------
T_READ_US = 80.0
T_PROG_US = 700.0
T_BERS_US = 3500.0
T_PLOCK_US = 100.0
T_BLOCK_LOCK_US = 300.0

#: Data-transfer time for one 16-KiB page over the channel. FlashBench-class
#: emulators use ~400 MB/s channels; 16 KiB / 400 MBps = 40 us.
T_XFER_US = 40.0

# --------------------------------------------------------------------------
# Voltages. Section 2.1 and Section 5.
# --------------------------------------------------------------------------
#: Pass voltage applied to unselected wordlines during a read. SSL cells
#: programmed above this cut the bitline for every read (bLock, Sec. 5.4).
V_READ_PASS = 6.0

#: Program voltage bounds used by the design-space exploration (Fig. 9a);
#: Psi = {Vp1..Vp5}, 0.5 V apart. We anchor Vp1 at 14.0 V (one-shot, low
#: voltage relative to the >20 V ISPP peak described in Sec. 2.1).
PLOCK_VPGM_BASE = 14.0
PLOCK_VPGM_STEP = 0.5
PLOCK_VPGM_COUNT = 5
PLOCK_LATENCIES_US = (100.0, 150.0, 200.0)

#: bLock design space (Fig. 12a): Psi = {Vb1..Vb6}, 1.0 V apart,
#: T = {200, 300, 400} us.
BLOCK_VPGM_BASE = 13.0
BLOCK_VPGM_STEP = 1.0
BLOCK_VPGM_COUNT = 6
BLOCK_LATENCIES_US = (200.0, 300.0, 400.0)

#: SSL center-Vth threshold above which every read of the block fails
#: (Fig. 11b: "when the center Vth level of an SSL exceeds 3V, a read
#: operation to any of the pages in the corresponding block fails").
SSL_CUTOFF_VTH = 3.0

# --------------------------------------------------------------------------
# Endurance and reliability (Sections 2.1, 4, 5.3).
# --------------------------------------------------------------------------
MLC_PE_LIMIT = 3000
TLC_PE_LIMIT = 1000

#: Number of redundant flag cells per pAP flag; Section 5.3 selects k = 9.
PAP_REDUNDANCY_K = 9

#: pAP flags per wordline for TLC (one per page: LSB/CSB/MSB).
PAP_FLAGS_PER_WL_TLC = 3

#: Retention requirement used for qualification (JEDEC, Sec. 5.3): 1 year
#: at 30C; the paper additionally explores a 5-year point.
RETENTION_1Y_DAYS = 365.0
RETENTION_5Y_DAYS = 5 * 365.0

#: ECC limit: RBER (errors per bit) below which the ECC corrects all errors.
#: Modern 3D TLC ships with ~1% correction capability per 1-KiB codeword
#: (e.g. 72-bit/1KiB BCH or LDPC); the paper normalizes all RBER plots to
#: this limit, so only the ratio matters.
ECC_LIMIT_RBER = 0.010

#: Logical-time unit for the versioning study (Section 3): one tick per
#: 4-KiB host write.
LOGICAL_TIME_WRITE_BYTES = 4096
