"""Behavioural model of one flash block.

Enforces the NAND rules the paper's design leans on:

* erase-before-program (a page can only be programmed once per erase);
* sequential page programming within a block (3D NAND programs wordlines
  in order to bound interference);
* erase works on the whole block and resets every page;
* per-block program/erase cycle counting against the endurance limit;
* open-interval tracking (Section 5.4): the block records when it was
  erased so callers can measure how long it stayed open before the first
  program.

The Evanesco lock state is *not* stored here -- it lives in the
:mod:`repro.core` structures that model the spare-area flag cells and the
SSL, and the Evanesco chip consults those on every read.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.flash.errors import (
    EraseStateError,
    ProgramOrderError,
    WearOutError,
)
from repro.flash.geometry import Geometry
from repro.flash.page import Page, PageState


class BlockState(Enum):
    """Lifecycle of a block as the FTL sees it."""

    FREE = "free"          # erased, no page programmed yet
    OPEN = "open"          # partially programmed (the "active" block)
    FULL = "full"          # every page programmed
    ERASE_PENDING = "erase_pending"  # GC victim awaiting its lazy erase
    RETIRED = "retired"    # grown-bad: permanently out of service


@dataclass
class Block:
    """One physical block of ``geometry.pages_per_block`` pages."""

    geometry: Geometry
    index: int
    pe_limit: int | None = None
    pages: list[Page] = field(init=False)
    erase_count: int = field(init=False, default=0)
    next_page: int = field(init=False, default=0)
    #: simulation time (us) of the last erase; basis of the open interval.
    last_erase_time: float = field(init=False, default=0.0)
    #: per-wordline count of inhibited program pulses (pLock disturb).
    wl_disturb_pulses: list[int] = field(init=False)
    #: called as ``(index, old_state, new_state)`` on every transition;
    #: the owning chip uses it to maintain its free set incrementally.
    state_listener: Callable[[int, BlockState, BlockState], None] | None = field(
        init=False, default=None, repr=False, compare=False
    )
    _state: BlockState = field(init=False, default=BlockState.FREE, repr=False)

    def __post_init__(self) -> None:
        self.geometry.check_block(self.index)
        self.pages = [Page() for _ in range(self.geometry.pages_per_block)]
        self.wl_disturb_pulses = [0] * self.geometry.wordlines_per_block

    @property
    def state(self) -> BlockState:
        return self._state

    @state.setter
    def state(self, new_state: BlockState) -> None:
        # every transition funnels through here so the owning chip can
        # maintain its free-block set incrementally instead of rescanning
        # all blocks on each allocator refill (see FlashChip.free_blocks)
        old_state = self._state
        self._state = new_state
        listener = self.state_listener
        if listener is not None and old_state is not new_state:
            listener(self.index, old_state, new_state)

    # ------------------------------------------------------------------
    @property
    def is_full(self) -> bool:
        return self.next_page >= self.geometry.pages_per_block

    @property
    def programmed_pages(self) -> int:
        return self.next_page

    def page(self, page_offset: int) -> Page:
        return self.pages[page_offset]

    def open_interval_us(self, now: float) -> float:
        """Time this block has spent erased-but-unprogrammed."""
        if self.state is not BlockState.FREE:
            return 0.0
        return max(0.0, now - self.last_erase_time)

    # ------------------------------------------------------------------
    def program(
        self,
        page_offset: int,
        data: Any,
        spare: dict[str, Any] | None,
        now: float,
    ) -> None:
        """Program the next page in sequence.

        Raises
        ------
        ProgramOrderError
            If the target is not the next sequential page or is already
            programmed.
        EraseStateError
            If the block is pending erase.
        """
        state = self._state
        if state is BlockState.ERASE_PENDING:
            raise EraseStateError(
                f"block {self.index} is erase-pending; erase before programming"
            )
        if state is BlockState.RETIRED:
            raise EraseStateError(f"block {self.index} is retired (grown-bad)")
        if page_offset != self.next_page:
            raise ProgramOrderError(
                f"block {self.index}: page {page_offset} out of order "
                f"(next programmable is {self.next_page})"
            )
        page = self.pages[page_offset]
        if page.state is not PageState.ERASED:
            raise ProgramOrderError(
                f"block {self.index} page {page_offset} already programmed"
            )
        page.program(data, spare, now)
        self.next_page += 1
        # only route actual transitions through the state setter; the
        # common mid-block program leaves the state at OPEN and must not
        # pay the setter + listener dispatch on every page
        if self.next_page >= self.geometry.pages_per_block:
            self.state = BlockState.FULL
        elif self._state is not BlockState.OPEN:
            self.state = BlockState.OPEN

    def erase(self, now: float) -> None:
        """Erase the whole block, destroying all page data.

        Raises
        ------
        WearOutError
            If the block would exceed its endurance limit.
        """
        if self.state is BlockState.RETIRED:
            raise EraseStateError(f"block {self.index} is retired (grown-bad)")
        if self.pe_limit is not None and self.erase_count >= self.pe_limit:
            raise WearOutError(
                f"block {self.index} reached its P/E limit of {self.pe_limit}"
            )
        for page in self.pages:
            page.erase()
        self.erase_count += 1
        self.next_page = 0
        self.state = BlockState.FREE
        self.last_erase_time = now
        self.wl_disturb_pulses = [0] * self.geometry.wordlines_per_block

    def mark_erase_pending(self) -> None:
        """Tag the block as a GC victim awaiting lazy erase (Section 5.4)."""
        self.state = BlockState.ERASE_PENDING

    def mark_retired(self) -> None:
        """Pull a grown-bad block from service, permanently.

        The state lives in this (persistent) chip structure, so the
        grown-bad table survives power loss for free -- recovery rebuilds
        the FTL's RAM copy from the block states.
        """
        self.state = BlockState.RETIRED

    def record_wl_disturb(self, wordline: int) -> None:
        """Count one inhibited program pulse on a wordline (pLock)."""
        self.wl_disturb_pulses[wordline] += 1

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Checkpoint payload (see :mod:`repro.checkpoint`)."""
        return {
            "pages": [page.state_dict() for page in self.pages],
            "erase_count": self.erase_count,
            "next_page": self.next_page,
            "last_erase_time": self.last_erase_time,
            "wl_disturb_pulses": list(self.wl_disturb_pulses),
            "state": self._state,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        for page, payload in zip(self.pages, state["pages"]):
            page.load_state_dict(payload)
        self.erase_count = state["erase_count"]
        self.next_page = state["next_page"]
        self.last_erase_time = state["last_erase_time"]
        self.wl_disturb_pulses = list(state["wl_disturb_pulses"])
        # bypass the setter: the owning chip rebuilds its free set in one
        # pass after every block is loaded, so no listener churn here.
        self._state = state["state"]
