"""Threshold-voltage (Vth) distribution engine.

This module is the chip-physics substrate used by every chip-level
experiment in the paper (Figures 6 and 9--12).  Each Vth state of a
multi-level cell is modelled as a Gaussian whose mean and standard
deviation respond to the stressors the paper characterizes:

* **P/E cycling** widens every state and lifts the erased state
  (oxide damage / trapped charge).
* **Retention** shifts programmed states *down* proportionally to
  ``log(1 + t)`` -- the classic charge-detrapping law -- with higher
  states losing more charge, and widens distributions.
* **Program disturb** lifts the erased state slightly each time a
  sibling wordline (or an inhibited cell on the same wordline) sees a
  program pulse.
* **Open-interval effect** (Section 5.4): data programmed long after the
  block was erased starts from a degraded, partially-recovered erase
  distribution, raising RBER by up to ~30 %.

The engine offers two evaluation modes that share the same parameters:

* :func:`sample_wordline` draws per-cell Vth samples (Monte-Carlo), used
  by the behavioural chip when bit-accurate reads are requested;
* :meth:`VthModel.expected_rber` integrates the Gaussian overlap
  analytically, used by the design-space and reliability figures where
  millions of cells would be slow to sample.

All parameters are *calibrated to reproduce the shape* of the paper's
figures, not any specific vendor's silicon (see DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.flash.encoding import Encoding, encoding_for
from repro.flash.geometry import CellType, PageRole

_SQRT2 = float(np.sqrt(2.0))


try:  # scipy gives a vectorized erf; fall back to math.erf otherwise
    from scipy.special import ndtr as _scipy_ndtr
except ImportError:  # pragma: no cover - scipy is an optional accelerator
    _scipy_ndtr = None


def _norm_cdf(x: np.ndarray | float) -> np.ndarray | float:
    """Standard normal CDF (vectorized)."""
    if _scipy_ndtr is not None:
        return _scipy_ndtr(x)
    from math import erf

    if np.isscalar(x):
        return 0.5 * (1.0 + erf(float(x) / _SQRT2))
    arr = np.asarray(x, dtype=np.float64)
    return np.asarray(
        [0.5 * (1.0 + erf(v / _SQRT2)) for v in arr.ravel()]
    ).reshape(arr.shape)


@dataclass(frozen=True)
class StressState:
    """Stress history applied to a wordline or block.

    Attributes
    ----------
    pe_cycles:
        Program/erase cycles endured so far.
    retention_days:
        Time since the data was programmed.
    disturb_pulses:
        Count of program pulses applied to the wordline while the cells
        were inhibited (SBPI) -- e.g. pLock flag programming (Fig. 9b) or
        sibling-page programming.
    open_interval_days:
        Time the block stayed erased before this data was programmed
        (Section 5.4); ``0`` means program-immediately-after-erase.
    read_disturb_count:
        Number of reads since program (small Vth lift on the E state).
    """

    pe_cycles: int = 0
    retention_days: float = 0.0
    disturb_pulses: int = 0
    open_interval_days: float = 0.0
    read_disturb_count: int = 0

    def with_retention(self, days: float) -> "StressState":
        return replace(self, retention_days=days)

    def with_pe(self, cycles: int) -> "StressState":
        return replace(self, pe_cycles=cycles)

    def with_disturb(self, pulses: int) -> "StressState":
        return replace(self, disturb_pulses=pulses)


@dataclass(frozen=True)
class VthParams:
    """Calibration constants for one cell type."""

    cell_type: CellType
    #: nominal state means (V), erased first.
    means: tuple[float, ...]
    #: nominal state standard deviations (V).
    sigmas: tuple[float, ...]
    #: read reference voltages between adjacent states.
    read_refs: tuple[float, ...]
    #: sigma widening per 1K P/E cycles (V).
    pe_sigma_per_k: float
    #: erased-state mean lift per 1K P/E cycles (V).
    pe_erase_lift_per_k: float
    #: retention loss coefficient: dV = -coef * state_frac * log1p(days).
    retention_coef: float
    #: retention sigma widening coefficient (V per log1p(day)).
    retention_sigma_coef: float
    #: E-state lift per inhibited program pulse (V).
    disturb_lift_per_pulse: float
    #: sigma widening per inhibited program pulse (V).
    disturb_sigma_per_pulse: float
    #: E-state mean lift at "very long" open interval (V), saturating.
    open_interval_lift_max: float
    #: open-interval saturation constant (days).
    open_interval_tau_days: float
    #: read-disturb lift per 10K reads (V).
    read_disturb_lift_per_10k: float
    #: relative sigma widening at a saturated open interval (Fig. 10:
    #: ~30 % RBER penalty at the longest interval tracked).
    open_sigma_rel_max: float = 0.045

    def __post_init__(self) -> None:
        n = self.cell_type.states
        if len(self.means) != n or len(self.sigmas) != n:
            raise ValueError(f"need {n} means and sigmas for {self.cell_type.name}")
        if len(self.read_refs) != n - 1:
            raise ValueError(f"need {n - 1} read references")
        if any(a >= b for a, b in zip(self.means, self.means[1:])):
            raise ValueError("state means must be strictly increasing")


def _evenly_spaced_params(
    cell_type: CellType,
    erase_mean: float,
    first_prog_mean: float,
    last_prog_mean: float,
    sigma: float,
) -> tuple[tuple[float, ...], tuple[float, ...], tuple[float, ...]]:
    n_prog = cell_type.states - 1
    if n_prog == 1:
        prog_means = [first_prog_mean]
    else:
        step = (last_prog_mean - first_prog_mean) / (n_prog - 1)
        prog_means = [first_prog_mean + i * step for i in range(n_prog)]
    means = (erase_mean, *prog_means)
    sigmas = tuple([sigma] * cell_type.states)
    refs = tuple(
        (means[i] + means[i + 1]) / 2.0 for i in range(cell_type.states - 1)
    )
    return means, sigmas, refs


def default_params(cell_type: CellType) -> VthParams:
    """Calibrated default parameters per cell type.

    The Vth windows follow the paper's Figure 2: the same design limit
    (~6 V usable window) must fit 4 states for MLC and 8 for TLC, so TLC
    states are packed with roughly half the margin -- which is exactly why
    OSR over-programming destroys TLC MSB pages but only ~7 % of MLC ones
    (Figure 6).
    """
    if cell_type is CellType.SLC:
        means, sigmas, refs = _evenly_spaced_params(cell_type, -2.5, 2.5, 2.5, 0.30)
        return VthParams(
            cell_type=cell_type,
            means=means,
            sigmas=sigmas,
            read_refs=refs,
            pe_sigma_per_k=0.03,
            pe_erase_lift_per_k=0.10,
            retention_coef=0.050,
            retention_sigma_coef=0.008,
            disturb_lift_per_pulse=0.012,
            disturb_sigma_per_pulse=0.002,
            open_interval_lift_max=0.25,
            open_interval_tau_days=2.0,
            read_disturb_lift_per_10k=0.05,
        )
    if cell_type is CellType.MLC:
        means, sigmas, refs = _evenly_spaced_params(cell_type, -2.5, 1.2, 4.6, 0.22)
        return VthParams(
            cell_type=cell_type,
            means=means,
            sigmas=sigmas,
            read_refs=refs,
            pe_sigma_per_k=0.040,
            pe_erase_lift_per_k=0.12,
            retention_coef=0.0040,
            retention_sigma_coef=0.0023,
            disturb_lift_per_pulse=0.012,
            disturb_sigma_per_pulse=0.002,
            open_interval_lift_max=0.022,
            open_interval_tau_days=2.0,
            read_disturb_lift_per_10k=0.06,
        )
    if cell_type is CellType.TLC:
        means, sigmas, refs = _evenly_spaced_params(cell_type, -2.5, 0.8, 5.0, 0.12)
        return VthParams(
            cell_type=cell_type,
            means=means,
            sigmas=sigmas,
            read_refs=refs,
            pe_sigma_per_k=0.030,
            pe_erase_lift_per_k=0.15,
            retention_coef=0.0022,
            retention_sigma_coef=0.0006,
            disturb_lift_per_pulse=0.014,
            disturb_sigma_per_pulse=0.0025,
            open_interval_lift_max=0.022,
            open_interval_tau_days=2.0,
            read_disturb_lift_per_10k=0.07,
        )
    if cell_type is CellType.QLC:
        means, sigmas, refs = _evenly_spaced_params(cell_type, -2.5, 0.6, 5.2, 0.055)
        return VthParams(
            cell_type=cell_type,
            means=means,
            sigmas=sigmas,
            read_refs=refs,
            pe_sigma_per_k=0.010,
            pe_erase_lift_per_k=0.18,
            retention_coef=0.0015,
            retention_sigma_coef=0.0004,
            disturb_lift_per_pulse=0.016,
            disturb_sigma_per_pulse=0.003,
            open_interval_lift_max=0.020,
            open_interval_tau_days=2.0,
            read_disturb_lift_per_10k=0.08,
        )
    raise ValueError(f"unsupported cell type: {cell_type!r}")


@dataclass(frozen=True)
class VthModel:
    """Vth distribution model for one cell type under stress.

    The model exposes per-state effective (mean, sigma) after applying a
    :class:`StressState`, plus helpers to compute bit-error rates per page
    role either analytically or by sampling.
    """

    params: VthParams
    encoding: Encoding = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "encoding", encoding_for(self.params.cell_type))

    # ------------------------------------------------------------------
    def state_distributions(
        self, stress: StressState
    ) -> tuple[np.ndarray, np.ndarray]:
        """Effective per-state (means, sigmas) under ``stress``."""
        p = self.params
        n = p.cell_type.states
        means = np.asarray(p.means, dtype=np.float64).copy()
        sigmas = np.asarray(p.sigmas, dtype=np.float64).copy()

        kcycles = stress.pe_cycles / 1000.0
        sigmas += p.pe_sigma_per_k * kcycles
        means[0] += p.pe_erase_lift_per_k * kcycles

        if stress.retention_days > 0.0:
            log_t = float(np.log1p(stress.retention_days))
            # higher states hold more charge and leak more
            state_frac = np.arange(n, dtype=np.float64) / max(n - 1, 1)
            # cycling accelerates detrapping (paper Fig. 6 right-most boxes)
            accel = 1.0 + 0.8 * kcycles
            means -= p.retention_coef * accel * state_frac * log_t
            sigmas += p.retention_sigma_coef * accel * log_t

        if stress.disturb_pulses > 0:
            # disturb mainly lifts the lowest states
            lift = p.disturb_lift_per_pulse * stress.disturb_pulses
            weight = 1.0 - np.arange(n, dtype=np.float64) / max(n - 1, 1)
            means += lift * weight
            sigmas += p.disturb_sigma_per_pulse * stress.disturb_pulses * weight

        if stress.open_interval_days > 0.0:
            # a long-open (erased) block partially recovers: its erase
            # distribution creeps up, and data programmed into it forms
            # proportionally wider states (array background pattern drift)
            frac = 1.0 - float(
                np.exp(-stress.open_interval_days / p.open_interval_tau_days)
            )
            means[0] += p.open_interval_lift_max * frac
            sigmas *= 1.0 + p.open_sigma_rel_max * frac

        if stress.read_disturb_count > 0:
            lift = p.read_disturb_lift_per_10k * stress.read_disturb_count / 10_000.0
            weight = 1.0 - np.arange(n, dtype=np.float64) / max(n - 1, 1)
            means += lift * weight

        return means, sigmas

    # ------------------------------------------------------------------
    def region_probabilities(self, stress: StressState) -> np.ndarray:
        """P[read region r | programmed state s] matrix of shape (s, r).

        Region *r* is the interval between read references r-1 and r; a
        read assigns each cell the state of the region its Vth falls in.
        """
        means, sigmas = self.state_distributions(stress)
        refs = np.asarray(self.params.read_refs, dtype=np.float64)
        n = len(means)
        # CDF at each reference per state
        z = (refs[None, :] - means[:, None]) / sigmas[:, None]
        cdf = _norm_cdf(z)
        probs = np.empty((n, n), dtype=np.float64)
        probs[:, 0] = cdf[:, 0]
        for r in range(1, n - 1):
            probs[:, r] = cdf[:, r] - cdf[:, r - 1]
        probs[:, n - 1] = 1.0 - cdf[:, n - 2]
        return np.clip(probs, 0.0, 1.0)

    def expected_rber(
        self,
        stress: StressState,
        role: PageRole,
        state_population: np.ndarray | None = None,
    ) -> float:
        """Expected raw bit-error rate for one page role.

        Parameters
        ----------
        stress:
            Stress history of the wordline.
        role:
            Which page of the wordline is read.
        state_population:
            Fraction of cells programmed in each state.  Defaults to
            uniform (random data).
        """
        return self._rber_from_probs(
            self.region_probabilities(stress), role, state_population
        )

    def _rber_from_probs(
        self,
        probs: np.ndarray,
        role: PageRole,
        state_population: np.ndarray | None,
    ) -> float:
        """RBER of one role given a precomputed region-probability matrix.

        Split out so multi-role queries evaluate the (expensive) Vth
        mixture once and reuse it for every page role of the wordline.
        """
        n = self.params.cell_type.states
        if state_population is None:
            state_population = np.full(n, 1.0 / n)
        else:
            state_population = np.asarray(state_population, dtype=np.float64)
            total = state_population.sum()
            if total <= 0:
                raise ValueError("state_population must have positive mass")
            state_population = state_population / total

        bits = self.encoding.bits_table()  # (states, roles)
        role_bits = bits[:, int(role)].astype(np.int64)
        # error iff the region's bit differs from the true state's bit
        mismatch = (role_bits[:, None] != role_bits[None, :]).astype(np.float64)
        per_state_err = (probs * mismatch).sum(axis=1)
        return float((state_population * per_state_err).sum())

    def expected_rber_all_roles(self, stress: StressState) -> dict[PageRole, float]:
        # one mixture evaluation shared by every role of the wordline
        probs = self.region_probabilities(stress)
        return {
            role: self._rber_from_probs(probs, role, None)
            for role in PageRole.for_cell_type(self.params.cell_type)
        }

    # ------------------------------------------------------------------
    def sample_cells(
        self,
        states: np.ndarray,
        stress: StressState,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw per-cell Vth samples for cells programmed in ``states``."""
        means, sigmas = self.state_distributions(stress)
        states = np.asarray(states, dtype=np.int64)
        return rng.normal(means[states], sigmas[states])

    def read_states(self, vths: np.ndarray) -> np.ndarray:
        """Digitize Vth samples into read regions (state indices)."""
        refs = np.asarray(self.params.read_refs, dtype=np.float64)
        return np.searchsorted(refs, vths, side="left")

    def sampled_rber(
        self,
        states: np.ndarray,
        stress: StressState,
        role: PageRole,
        rng: np.random.Generator,
    ) -> float:
        """Monte-Carlo RBER: sample Vth, digitize, compare page bits."""
        vths = self.sample_cells(states, stress, rng)
        read = self.read_states(vths)
        bits = self.encoding.bits_table()[:, int(role)]
        errors = bits[np.asarray(states, dtype=np.int64)] != bits[read]
        return float(np.mean(errors))


def model_for(cell_type: CellType) -> VthModel:
    """Convenience constructor with default calibrated parameters."""
    return VthModel(default_params(cell_type))


def sample_wordline(
    model: VthModel,
    states: np.ndarray,
    stress: StressState,
    rng: np.random.Generator,
) -> np.ndarray:
    """Module-level alias of :meth:`VthModel.sample_cells` (public API)."""
    return model.sample_cells(states, stress, rng)
