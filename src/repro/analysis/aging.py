"""Device-aging lifetime campaigns -- ``repro age``.

Answers the lifetime question the paper implies but never runs
(Sections 1 and 7): *does secSSD's erase-avoidance extend device
lifetime versus erSSD?*  Each variant replays the same long-horizon
workload on a device with a real ``pe_limit`` until its first block
dies (or the horizon ends), and the per-variant
:class:`~repro.analysis.lifetime.LifetimeReport` compares the measured
host-pages-to-first-block-death, wear evenness, and the lock-vs-erase
wear attribution.

Execution shape:

* each variant's run is a :func:`~repro.checkpoint.campaign.
  run_chunked_simulation` campaign in its own subdirectory of the
  campaign root -- killable at any point and resumed byte-identically
  (resume is detected from the stored campaign manifest, so the same
  invocation works fresh or interrupted);
* campaigns stop early through the ``first-wearout``
  :data:`~repro.checkpoint.campaign.STOP_CONDITIONS` predicate,
  evaluated only at checkpoint boundaries -- the halt point is a pure
  function of the request index, which keeps serial == ``--jobs N`` ==
  kill+resume byte-identity and stops endurance-limited variants
  before grown-bad retirement spirals into pool exhaustion;
* variants fan out over :func:`~repro.analysis.parallel.run_grid`
  workers; each worker returns the report as a plain dict (never the
  device -- an SSD holds unpicklable wiring), and completed shards
  persist in a :class:`~repro.analysis.parallel.GridResultCache` under
  ``<root>/results``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.analysis.lifetime import LifetimeReport
from repro.analysis.parallel import (
    GridResultCache,
    GridTask,
    run_grid_detailed,
)
from repro.analysis.tables import render_table
from repro.checkpoint.campaign import run_chunked_simulation
from repro.checkpoint.store import CheckpointStore
from repro.ssd.config import SSDConfig

if TYPE_CHECKING:
    from repro.analysis.progress import ProgressReporter
    from repro.telemetry import Telemetry

#: the Figure-14 comparison set, in canonical (grid) order.
AGING_VARIANTS = ("baseline", "secSSD", "erSSD", "scrSSD")


@dataclass(frozen=True)
class AgingCase:
    """One variant's campaign parameters (picklable grid payload)."""

    config: SSDConfig
    workload: str
    variant: str
    seed: int
    write_multiplier: float
    checkpoint_every: int
    #: this variant's campaign directory (``<root>/ck/<variant>``).
    directory: str
    checked: bool | None
    #: generations to write before exiting (kill simulation), or None.
    stop_after: int | None


def _run_age_case(task: GridTask) -> dict[str, Any] | None:
    """Worker: run (or resume) one variant's campaign, return the report.

    Module-level and dict-returning, so ``--jobs N`` can pickle both the
    function and its result.  Resume is auto-detected: a stored campaign
    manifest means an earlier invocation was interrupted, and resuming
    it is byte-identical to having never stopped.
    """
    case = task.payload
    assert isinstance(case, AgingCase)
    resume = (
        CheckpointStore(case.directory).read_campaign_manifest() is not None
    )
    result = run_chunked_simulation(
        case.config,
        case.workload,
        case.variant,
        case.directory,
        case.checkpoint_every,
        seed=case.seed,
        write_multiplier=case.write_multiplier,
        checked=case.checked,
        resume=resume,
        stop_after=case.stop_after,
        stop_when="first-wearout",
    )
    if result is None:
        return None  # stop_after fired: campaign paused, not finished
    return LifetimeReport.from_result(
        result, pe_limit=case.config.pe_limit
    ).to_dict()


def run_aging_campaign(
    config: SSDConfig,
    workload: str,
    directory: str | Path,
    checkpoint_every: int,
    variants: tuple[str, ...] = AGING_VARIANTS,
    seed: int = 1,
    write_multiplier: float = 1.0,
    checked: bool | None = None,
    jobs: int = 1,
    stop_after: int | None = None,
    progress: "ProgressReporter | None" = None,
    telemetry: "Telemetry | None" = None,
) -> dict[str, Any]:
    """Run the per-variant lifetime campaign grid; merge the reports.

    Returns ``{"workload", "pe_limit", "reports": {variant: report
    dict}, "cached_shards", "retried_shards"}`` -- byte-identical for
    any ``jobs`` count and across kill+resume.  With ``stop_after``,
    campaigns pause after that many new checkpoint generations and the
    result is ``{"paused": True, ...}`` instead; re-invoking with the
    same directory continues them (the per-variant checkpoint stores
    carry all state, so nothing is cached at the grid layer until a
    variant's campaign actually completes).
    """
    root = Path(directory)
    tasks = [
        GridTask(
            index=index,
            variant=variant,
            workload=workload,
            seed=seed,
            payload=AgingCase(
                config=config,
                workload=workload,
                variant=variant,
                seed=seed,
                write_multiplier=write_multiplier,
                checkpoint_every=checkpoint_every,
                directory=str(root / "ck" / variant),
                checked=checked,
                stop_after=stop_after,
            ),
        )
        for index, variant in enumerate(variants)
    ]
    # the grid cache only ever sees *finished* reports: paused runs
    # (stop_after) return None, which must not be served on resume, so
    # the cache is bypassed entirely for pausing invocations.
    cache = (
        None
        if stop_after is not None
        else GridResultCache(root / "results")
    )
    grid = run_grid_detailed(
        _run_age_case, tasks, jobs=jobs, cache=cache, progress=progress
    )
    if any(result is None for result in grid.results):
        return {
            "paused": True,
            "workload": workload,
            "pe_limit": config.pe_limit,
            "variants": list(variants),
        }
    reports = {
        task.variant: result
        for task, result in zip(tasks, grid.results)
    }
    if telemetry is not None:
        _publish_gauges(telemetry, reports)
    return {
        "workload": workload,
        "pe_limit": config.pe_limit,
        "reports": reports,
        "cached_shards": grid.cached_shards,
        "retried_shards": grid.retried_shards,
    }


def _publish_gauges(
    telemetry: "Telemetry", reports: dict[str, dict[str, Any]]
) -> None:
    """Fold per-variant wear gauges into a telemetry session."""
    for variant, report in reports.items():
        wear = report["wear"]
        metrics = telemetry.metrics
        metrics.gauge(f"age.{variant}.erase_spread").set(
            float(wear["max_erases"] - wear["min_erases"])
        )
        metrics.gauge(f"age.{variant}.max_erases").set(
            float(wear["max_erases"])
        )
        metrics.gauge(f"age.{variant}.worn_out_blocks").set(
            float(report["worn_out_blocks"])
        )
        metrics.gauge(f"age.{variant}.retired_blocks").set(
            float(report["grown_bad_blocks"])
        )


def format_lifetime(payload: dict[str, Any]) -> str:
    """Human-readable lifetime table from a campaign payload."""
    reports = {
        variant: LifetimeReport.from_dict(data)
        for variant, data in payload["reports"].items()
    }
    rows = []
    for variant, report in reports.items():
        death = (
            "survived"
            if report.survived
            else str(report.host_pages_to_first_block_death)
        )
        rows.append(
            [
                variant,
                death,
                str(report.worn_out_blocks),
                str(report.grown_bad_blocks),
                f"{report.erases_per_host_page:.4f}",
                f"{report.wear.evenness:.3f}",
                str(report.plocks + report.block_locks),
                str(report.flash_erases),
            ]
        )
    pe = payload.get("pe_limit")
    title = (
        f"Device aging: {payload['workload']}, "
        f"pe_limit={'none' if pe is None else pe} "
        "(host pages to first block death; higher/survived is better)"
    )
    table = render_table(
        [
            "variant",
            "first death",
            "worn",
            "grown-bad",
            "erases/page",
            "evenness",
            "locks",
            "erases",
        ],
        rows,
        title=title,
    )
    lines = [table]
    secure = reports.get("secSSD")
    erase = reports.get("erSSD")
    if secure is not None and erase is not None:
        if secure.death_rank >= erase.death_rank:
            verdict = (
                "secSSD outlives erSSD: lock-based sanitization avoids "
                "the erases that kill blocks"
            )
        else:
            verdict = "WARNING: erSSD outlived secSSD on this horizon"
        lines.append(verdict)
    return "\n".join(lines)
