"""Engine throughput benchmark -- ``repro bench`` / ``BENCH_sim.json``.

Measures how fast the discrete-event engine itself runs (wall-clock
events per second) alongside what it simulates (device IOPS, host-read
p99).  The JSON artifact is machine-readable so CI can archive it and
regressions in engine performance show up as a diff, not an anecdote.

Wall-clock timing lives *here*, outside :mod:`repro.sim`, on purpose:
rule SIM07 bans wall-clock access inside the simulation package, and
the benchmark is exactly the measurement that must not leak into it.
The clock is injectable (``timer=``) so tests can swap in
:class:`~repro.analysis.parallel.DeterministicTimer` and assert the
artifact is byte-identical across serial and parallel runs.

``run_bench(jobs=N)`` fans the (variant x repeat) grid over worker
processes via :func:`repro.analysis.parallel.run_grid`; the merge is
in canonical task order, so the *simulated* portion of the artifact is
identical for any job count.  :func:`compare_bench` is the CI gate:
it diffs only the simulated metrics (IOPS, p99) against a committed
baseline -- never the wall-clock numbers, which vary per machine.
"""

from __future__ import annotations

import gc
import json
import platform
import time
from collections.abc import Callable
from pathlib import Path

from repro.analysis.parallel import GridResultCache, GridTask, run_grid_detailed
from repro.analysis.progress import ProgressReporter
from repro.sim.arrivals import ClosedLoopArrivals
from repro.sim.policies import policy_by_name
from repro.sim.runner import simulate_workload
from repro.ssd.config import SSDConfig

#: default artifact path (repo root when run via the CLI from there).
DEFAULT_BENCH_PATH = "BENCH_sim.json"

#: (metric key, direction): the simulated metrics the compare gate
#: checks.  +1 means higher is better (regression = drop), -1 means
#: lower is better (regression = rise).  Wall-clock-derived metrics
#: (wall_s, events_per_sec) are deliberately absent: they are
#: machine-dependent, and gating on them would make CI flaky.
COMPARE_METRICS: tuple[tuple[str, int], ...] = (
    ("iops", +1),
    ("p99_read_us", -1),
    ("p99_all_us", -1),
)


def bench_once(
    config: SSDConfig,
    workload: str,
    variant: str,
    queue_depth: int,
    policy: str,
    seed: int,
    write_multiplier: float,
    timer: Callable[[], float] | None = None,
) -> dict[str, object]:
    """One timed engine run -> flat metrics dict."""
    clock = timer if timer is not None else time.perf_counter
    # pause cyclic GC for the timed section: the run allocates millions
    # of short-lived tuples/segments and collector pauses add ~15 %
    # wall-clock noise without ever freeing anything (the object graph
    # is alive until the run ends).  Refcounting still reclaims as
    # usual; the pass after `finally` collects any cycles in one sweep.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = clock()
        sim = simulate_workload(
            config,
            workload,
            variant,
            seed=seed,
            write_multiplier=write_multiplier,
            policy=policy_by_name(policy),
            arrivals=ClosedLoopArrivals(queue_depth),
            checked=False,
        )
        wall_s = clock() - start
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    report = sim.report
    return {
        "workload": workload,
        "variant": variant,
        "policy": policy,
        "queue_depth": queue_depth,
        "requests": sim.requests,
        "events": report.events,
        "wall_s": wall_s,
        "events_per_sec": report.events / wall_s if wall_s > 0 else 0.0,
        "iops": report.iops,
        "p99_read_us": report.latency["read"]["p99_us"],
        "p99_all_us": report.latency["all"]["p99_us"],
        "open_loop_agreement": report.open_loop_agreement,
        # the functional counters, round-trippable via
        # DeviceStats.from_dict -- so a bench artifact diff shows *what*
        # the device did, not just how fast the engine replayed it
        "stats": sim.run.stats.to_dict(),
    }


def _bench_task(task: GridTask) -> dict[str, object]:
    """Grid worker: one timed repeat of one variant (picklable)."""
    queue_depth, policy, write_multiplier, config, timer = task.payload
    return bench_once(
        config,
        task.workload,
        task.variant,
        queue_depth,
        policy,
        task.seed,
        write_multiplier,
        timer=timer,
    )


def run_bench(
    config: SSDConfig,
    workload: str = "Mobile",
    variants: tuple[str, ...] = ("baseline", "secSSD"),
    queue_depth: int = 32,
    policy: str = "fifo",
    seed: int = 1,
    write_multiplier: float = 1.0,
    repeats: int = 3,
    jobs: int = 1,
    timer: Callable[[], float] | None = None,
    resume_dir: str | Path | None = None,
    progress: ProgressReporter | None = None,
) -> dict[str, object]:
    """Benchmark the engine on each variant; keep each variant's best run.

    The simulated metrics (IOPS, p99, events) are identical across
    repeats by determinism -- only wall-clock varies, and the fastest
    repeat is the least-noisy estimate of engine speed.

    ``jobs > 1`` runs the (variant x repeat) grid on worker processes.
    Tasks are enumerated variant-major (all repeats of variant 0, then
    variant 1, ...) and merged in that order; ties on ``wall_s`` keep
    the earliest repeat (strict ``<``), so the merged artifact does not
    depend on completion order.  With the default wall clock only the
    ``wall_s``/``events_per_sec`` numbers differ between job counts;
    with an injected deterministic ``timer`` the artifact is
    byte-identical for any ``jobs``.

    ``resume_dir`` makes the grid checkpoint-aware: each completed
    (variant, repeat) shard is persisted there, and a re-run after a
    crash serves validated shards from disk instead of recomputing
    them (corrupt shard files are quarantined and recomputed).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    payload = (queue_depth, policy, write_multiplier, config, timer)
    tasks = [
        GridTask(
            index=v_index * repeats + repeat,
            variant=variant,
            workload=workload,
            seed=seed,
            payload=payload,
        )
        for v_index, variant in enumerate(variants)
        for repeat in range(repeats)
    ]
    cache = None if resume_dir is None else GridResultCache(resume_dir)
    grid = run_grid_detailed(
        _bench_task, tasks, jobs=jobs, cache=cache, progress=progress
    )
    results = grid.results
    runs = []
    for v_index in range(len(variants)):
        best: dict[str, object] | None = None
        for repeat in range(repeats):
            run = results[v_index * repeats + repeat]
            if best is None or run["wall_s"] < best["wall_s"]:
                best = run
        runs.append(best)
    return {
        "bench": "sim_engine",
        "python": platform.python_version(),
        "config": {
            "blocks_per_chip": config.geometry.blocks_per_chip,
            "wordlines_per_block": config.geometry.wordlines_per_block,
            "n_channels": config.n_channels,
            "chips_per_channel": config.chips_per_channel,
        },
        "repeats": repeats,
        "retried_shards": grid.retried_shards,
        "cached_shards": grid.cached_shards,
        "runs": runs,
        "best_events_per_sec": max(
            (r["events_per_sec"] for r in runs), default=0.0
        ),
    }


def write_bench_json(payload: dict[str, object], path: str | Path) -> Path:
    """Write the benchmark artifact (sorted keys, trailing newline)."""
    target = Path(path)
    target.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return target


def compare_bench_detailed(
    current: dict[str, object],
    baseline: dict[str, object],
    tolerance: float = 0.05,
) -> dict[str, object]:
    """Structured diff of simulated metrics vs a committed baseline.

    Returns the full per-(workload, variant) per-metric table -- not
    just the failures -- so a gate trip in CI shows every delta against
    its tolerance band at a glance::

        {
          "tolerance": 0.05,
          "regressed": bool,               # any cell tripped
          "runs": [
            {
              "workload": ..., "variant": ...,
              "missing": False,            # baseline row absent from current
              "metrics": [
                {"metric": "iops", "direction": +1,
                 "baseline": ..., "current": ..., "delta_pct": ...,
                 "limit": ..., "regressed": bool},
                ...
              ],
            },
            ...
          ],
        }

    A run regresses when a :data:`COMPARE_METRICS` metric is worse than
    the baseline by more than ``tolerance`` (a fraction: 0.05 allows
    5 % slack).  The simulated metrics are deterministic for a given
    config+seed, so the band exists to absorb *intended* small model
    adjustments, not machine noise -- wall-clock metrics never
    participate.  A (workload, variant) present in the baseline but
    missing from the current payload is itself a regression (a silently
    dropped variant must not pass the gate); new runs with no baseline
    counterpart are ignored.
    """
    if tolerance < 0.0:
        raise ValueError("tolerance must be >= 0")
    current_runs = {
        (run["workload"], run["variant"]): run for run in current["runs"]
    }
    rows: list[dict[str, object]] = []
    any_regressed = False
    for run in baseline["runs"]:
        key = (run["workload"], run["variant"])
        against = current_runs.get(key)
        row: dict[str, object] = {
            "workload": key[0],
            "variant": key[1],
            "missing": against is None,
            "metrics": [],
        }
        if against is None:
            any_regressed = True
            rows.append(row)
            continue
        for metric, direction in COMPARE_METRICS:
            base = float(run[metric])
            now = float(against[metric])
            if direction > 0:
                limit = base * (1.0 - tolerance)
                regressed = now < limit
            else:
                limit = base * (1.0 + tolerance)
                regressed = now > limit
            any_regressed = any_regressed or regressed
            row["metrics"].append(
                {
                    "metric": metric,
                    "direction": direction,
                    "baseline": base,
                    "current": now,
                    "delta_pct": ((now - base) / base * 100.0) if base else 0.0,
                    "limit": limit,
                    "regressed": regressed,
                }
            )
        rows.append(row)
    return {
        "tolerance": tolerance,
        "regressed": any_regressed,
        "runs": rows,
    }


def format_compare(diff: dict[str, object], verbose: bool = True) -> str:
    """Human-readable rendering of :func:`compare_bench_detailed`.

    ``verbose`` prints every metric cell; without it only the verdict
    header and the failing rows appear (the CI-log-friendly view -- a
    clean gate collapses to one line).
    """
    lines = [
        f"bench compare (tolerance {diff['tolerance']:.0%}): "
        + ("REGRESSED" if diff["regressed"] else "ok")
    ]
    for row in diff["runs"]:
        label = f"{row['workload']}/{row['variant']}"
        if row["missing"]:
            lines.append(
                f"  FAIL {label}: present in baseline but not benchmarked"
            )
            continue
        for cell in row["metrics"]:
            if not verbose and not cell["regressed"]:
                continue
            mark = "FAIL" if cell["regressed"] else "ok  "
            bound = ">=" if cell["direction"] > 0 else "<="
            lines.append(
                f"  {mark} {label}: {cell['metric']} "
                f"{cell['current']:,.1f} vs baseline {cell['baseline']:,.1f} "
                f"({cell['delta_pct']:+.2f}%, allowed {bound} "
                f"{cell['limit']:,.1f})"
            )
    return "\n".join(lines)


def compare_bench(
    current: dict[str, object],
    baseline: dict[str, object],
    tolerance: float = 0.05,
) -> list[str]:
    """One human-readable line per regression (empty list: gate passes).

    The legacy flat view of :func:`compare_bench_detailed` -- see there
    for the gate semantics.
    """
    diff = compare_bench_detailed(current, baseline, tolerance=tolerance)
    problems: list[str] = []
    for row in diff["runs"]:
        label = f"{row['workload']}/{row['variant']}"
        if row["missing"]:
            problems.append(f"{label}: present in baseline but not benchmarked")
            continue
        for cell in row["metrics"]:
            if not cell["regressed"]:
                continue
            bound = ">=" if cell["direction"] > 0 else "<="
            problems.append(
                f"{label}: {cell['metric']} {cell['current']:,.1f} vs "
                f"baseline {cell['baseline']:,.1f} "
                f"(allowed {bound} {cell['limit']:,.1f}, "
                f"tolerance {diff['tolerance']:.0%})"
            )
    return problems


def format_bench(payload: dict[str, object]) -> str:
    """Human-readable one-line-per-run summary."""
    lines = [f"sim engine bench (python {payload['python']}):"]
    for run in payload["runs"]:
        lines.append(
            f"  {run['workload']}/{run['variant']:12s} "
            f"{run['events']:>8} events in {run['wall_s']:.3f}s "
            f"({run['events_per_sec']:,.0f} ev/s)  "
            f"iops={run['iops']:,.0f}  p99r={run['p99_read_us']:.0f}us"
        )
    return "\n".join(lines)
