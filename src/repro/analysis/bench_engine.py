"""Engine throughput benchmark -- ``repro bench`` / ``BENCH_sim.json``.

Measures how fast the discrete-event engine itself runs (wall-clock
events per second) alongside what it simulates (device IOPS, host-read
p99).  The JSON artifact is machine-readable so CI can archive it and
regressions in engine performance show up as a diff, not an anecdote.

Wall-clock timing lives *here*, outside :mod:`repro.sim`, on purpose:
rule SIM07 bans wall-clock access inside the simulation package, and
the benchmark is exactly the measurement that must not leak into it.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.sim.arrivals import ClosedLoopArrivals
from repro.sim.policies import policy_by_name
from repro.sim.runner import simulate_workload
from repro.ssd.config import SSDConfig

#: default artifact path (repo root when run via the CLI from there).
DEFAULT_BENCH_PATH = "BENCH_sim.json"


def bench_once(
    config: SSDConfig,
    workload: str,
    variant: str,
    queue_depth: int,
    policy: str,
    seed: int,
    write_multiplier: float,
) -> dict[str, object]:
    """One timed engine run -> flat metrics dict."""
    start = time.perf_counter()
    sim = simulate_workload(
        config,
        workload,
        variant,
        seed=seed,
        write_multiplier=write_multiplier,
        policy=policy_by_name(policy),
        arrivals=ClosedLoopArrivals(queue_depth),
        checked=False,
    )
    wall_s = time.perf_counter() - start
    report = sim.report
    return {
        "workload": workload,
        "variant": variant,
        "policy": policy,
        "queue_depth": queue_depth,
        "requests": sim.requests,
        "events": report.events,
        "wall_s": wall_s,
        "events_per_sec": report.events / wall_s if wall_s > 0 else 0.0,
        "iops": report.iops,
        "p99_read_us": report.latency["read"]["p99_us"],
        "p99_all_us": report.latency["all"]["p99_us"],
        "open_loop_agreement": report.open_loop_agreement,
        # the functional counters, round-trippable via
        # DeviceStats.from_dict -- so a bench artifact diff shows *what*
        # the device did, not just how fast the engine replayed it
        "stats": sim.run.stats.to_dict(),
    }


def run_bench(
    config: SSDConfig,
    workload: str = "Mobile",
    variants: tuple[str, ...] = ("baseline", "secSSD"),
    queue_depth: int = 32,
    policy: str = "fifo",
    seed: int = 1,
    write_multiplier: float = 1.0,
    repeats: int = 3,
) -> dict[str, object]:
    """Benchmark the engine on each variant; keep each variant's best run.

    The simulated metrics (IOPS, p99, events) are identical across
    repeats by determinism -- only wall-clock varies, and the fastest
    repeat is the least-noisy estimate of engine speed.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    runs = []
    for variant in variants:
        best: dict[str, object] | None = None
        for _ in range(repeats):
            run = bench_once(
                config,
                workload,
                variant,
                queue_depth,
                policy,
                seed,
                write_multiplier,
            )
            if best is None or run["wall_s"] < best["wall_s"]:
                best = run
        runs.append(best)
    return {
        "bench": "sim_engine",
        "python": platform.python_version(),
        "config": {
            "blocks_per_chip": config.geometry.blocks_per_chip,
            "wordlines_per_block": config.geometry.wordlines_per_block,
            "n_channels": config.n_channels,
            "chips_per_channel": config.chips_per_channel,
        },
        "repeats": repeats,
        "runs": runs,
        "best_events_per_sec": max(
            (r["events_per_sec"] for r in runs), default=0.0
        ),
    }


def write_bench_json(payload: dict[str, object], path: str | Path) -> Path:
    """Write the benchmark artifact (sorted keys, trailing newline)."""
    target = Path(path)
    target.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return target


def format_bench(payload: dict[str, object]) -> str:
    """Human-readable one-line-per-run summary."""
    lines = [f"sim engine bench (python {payload['python']}):"]
    for run in payload["runs"]:
        lines.append(
            f"  {run['workload']}/{run['variant']:12s} "
            f"{run['events']:>8} events in {run['wall_s']:.3f}s "
            f"({run['events_per_sec']:,.0f} ev/s)  "
            f"iops={run['iops']:,.0f}  p99r={run['p99_read_us']:.0f}us"
        )
    return "\n".join(lines)
