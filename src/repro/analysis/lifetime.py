"""SSD lifetime and wear analysis.

The paper's lifetime claim (Sections 1 and 7): by avoiding relocation
storms and extra erases, SecureSSD "reduces the number of block erasures
by up to 79 % (62 % on average)" over the reprogram-based techniques,
and "the amplified writes in erSSD and scrSSD can greatly degrade the
SSD lifetime".  This module turns a run's erase statistics into the
standard lifetime estimate:

    host data writable over device life
        = endurance x #blocks / (erases per host page written)
          x wear-evenness penalty (mean wear / max wear)

so variants can be compared on *how much user data the device can absorb
before its first block wears out*.

With the device-aging subsystem (``repro age``), the projection gets a
measured counterpart: campaigns run with a real ``pe_limit`` until the
first block actually dies, and :class:`LifetimeReport` carries the
observed host-pages-to-first-block-death next to the projection, plus
the wear attribution that explains *why* the variants differ (locks do
not erase; relocation storms do).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, pstdev
from typing import TYPE_CHECKING, Any

from repro.flash.constants import TLC_PE_LIMIT
from repro.ftl.base import PageMappedFtl

if TYPE_CHECKING:
    from repro.sim.runner import SimResult


@dataclass(frozen=True)
class WearStats:
    """Distribution of per-block erase counts across the device."""

    total_erases: int
    mean_erases: float
    max_erases: int
    min_erases: int
    #: coefficient of variation; 0 == perfectly even wear.
    cv: float

    @classmethod
    def from_ftl(cls, ftl: PageMappedFtl) -> "WearStats":
        counts = [
            block.erase_count for chip in ftl.chips for block in chip.blocks
        ]
        mu = mean(counts)
        return cls(
            total_erases=sum(counts),
            mean_erases=mu,
            max_erases=max(counts),
            min_erases=min(counts),
            cv=(pstdev(counts) / mu) if mu > 0 else 0.0,
        )

    @property
    def evenness(self) -> float:
        """mean/max wear in (0, 1]; 1.0 == perfectly level."""
        if self.max_erases == 0:
            return 1.0
        return self.mean_erases / self.max_erases


@dataclass(frozen=True)
class LifetimeEstimate:
    """Projected device lifetime for the measured workload mix."""

    endurance_cycles: int
    n_blocks: int
    host_pages_written: int
    wear: WearStats
    erases_per_host_page: float
    #: host pages writable before the average block hits endurance.
    lifetime_host_pages_even: float
    #: same, derated by wear imbalance (first block to die governs).
    lifetime_host_pages: float

    @classmethod
    def from_ftl(
        cls, ftl: PageMappedFtl, endurance_cycles: int = TLC_PE_LIMIT
    ) -> "LifetimeEstimate":
        wear = WearStats.from_ftl(ftl)
        host_pages = ftl.stats.host_writes
        n_blocks = len(ftl.chips) * ftl.geometry.blocks_per_chip
        if host_pages == 0 or wear.total_erases == 0:
            rate = 0.0
            even = float("inf")
        else:
            rate = wear.total_erases / host_pages
            even = endurance_cycles * n_blocks / rate
        return cls(
            endurance_cycles=endurance_cycles,
            n_blocks=n_blocks,
            host_pages_written=host_pages,
            wear=wear,
            erases_per_host_page=rate,
            lifetime_host_pages_even=even,
            lifetime_host_pages=even * wear.evenness,
        )

    def relative_to(self, other: "LifetimeEstimate") -> float:
        """Lifetime ratio of this device vs. another (same workload)."""
        if other.lifetime_host_pages == 0:
            return float("inf")
        return self.lifetime_host_pages / other.lifetime_host_pages


def erase_reduction(ours: WearStats, theirs: WearStats) -> float:
    """Relative erase-count reduction (the Section 1 headline metric)."""
    if theirs.total_erases == 0:
        return 0.0
    return 1.0 - ours.total_erases / theirs.total_erases


@dataclass(frozen=True)
class LifetimeReport:
    """One variant's measured + projected lifetime from an aging run.

    The headline is ``host_pages_to_first_block_death``: how many host
    pages the device absorbed before any block hit its P/E limit.
    ``None`` means the device *survived* the whole campaign horizon --
    for ordering, a survivor outlives any finite death (the aging
    campaigns stop at first wear-out, so a finite value is exact, not
    censored).  The attribution counters separate sanitization work
    that costs erases (erSSD's sanitize-now, GC) from work that does
    not (secSSD's pLock/bLock pulses, scrubs), which is the mechanism
    behind the paper's lifetime claim.
    """

    variant: str
    workload: str
    pe_limit: int | None
    #: host pages written over the whole (possibly early-stopped) run.
    host_pages_written: int
    host_pages_to_first_block_death: int | None
    worn_out_blocks: int
    grown_bad_blocks: int
    wear: WearStats
    #: wear attribution: who erased, who locked, who scrubbed.
    flash_erases: int
    sanitize_erases: int
    plocks: int
    block_locks: int
    scrubs: int
    relocation_copies: int
    wear_levelings: int
    wear_level_copies: int
    #: model projection at the same endurance (sanity cross-check for
    #: the measured death point; ``inf`` when no erases happened).
    projected_lifetime_host_pages: float
    erases_per_host_page: float

    @property
    def survived(self) -> bool:
        return self.host_pages_to_first_block_death is None

    @property
    def death_rank(self) -> float:
        """First-death point with survivors ranked as infinite."""
        if self.host_pages_to_first_block_death is None:
            return float("inf")
        return float(self.host_pages_to_first_block_death)

    @classmethod
    def from_result(
        cls, result: "SimResult", pe_limit: int | None
    ) -> "LifetimeReport":
        if result.device is None:
            raise ValueError(
                "aging result carries no device; lifetime needs the "
                "per-block wear survey"
            )
        ftl = result.device.ftl
        stats = ftl.stats
        endurance = pe_limit if pe_limit is not None else TLC_PE_LIMIT
        estimate = LifetimeEstimate.from_ftl(ftl, endurance_cycles=endurance)
        first = stats.host_writes_at_first_wearout
        return cls(
            variant=result.variant,
            workload=result.workload,
            pe_limit=pe_limit,
            host_pages_written=stats.host_writes,
            host_pages_to_first_block_death=None if first < 0 else first,
            worn_out_blocks=stats.worn_out_blocks,
            grown_bad_blocks=stats.grown_bad_blocks,
            wear=estimate.wear,
            flash_erases=stats.flash_erases,
            sanitize_erases=stats.sanitize_erases,
            plocks=stats.plocks,
            block_locks=stats.block_locks,
            scrubs=stats.scrubs,
            relocation_copies=stats.relocation_copies,
            wear_levelings=stats.wear_levelings,
            wear_level_copies=stats.wear_level_copies,
            projected_lifetime_host_pages=estimate.lifetime_host_pages,
            erases_per_host_page=estimate.erases_per_host_page,
        )

    # -- round-trippable serialization (GridResultCache / --json) ------
    def to_dict(self) -> dict[str, Any]:
        return {
            "variant": self.variant,
            "workload": self.workload,
            "pe_limit": self.pe_limit,
            "host_pages_written": self.host_pages_written,
            "host_pages_to_first_block_death": (
                self.host_pages_to_first_block_death
            ),
            "worn_out_blocks": self.worn_out_blocks,
            "grown_bad_blocks": self.grown_bad_blocks,
            "wear": {
                "total_erases": self.wear.total_erases,
                "mean_erases": self.wear.mean_erases,
                "max_erases": self.wear.max_erases,
                "min_erases": self.wear.min_erases,
                "cv": self.wear.cv,
            },
            "flash_erases": self.flash_erases,
            "sanitize_erases": self.sanitize_erases,
            "plocks": self.plocks,
            "block_locks": self.block_locks,
            "scrubs": self.scrubs,
            "relocation_copies": self.relocation_copies,
            "wear_levelings": self.wear_levelings,
            "wear_level_copies": self.wear_level_copies,
            # inf (no erases at all) is stored as None: strict-JSON
            # artifacts must not carry the nonstandard Infinity token
            "projected_lifetime_host_pages": (
                None
                if self.projected_lifetime_host_pages == float("inf")
                else self.projected_lifetime_host_pages
            ),
            "erases_per_host_page": self.erases_per_host_page,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LifetimeReport":
        fields = dict(data)
        fields["wear"] = WearStats(**fields["wear"])
        if fields.get("projected_lifetime_host_pages") is None:
            fields["projected_lifetime_host_pages"] = float("inf")
        return cls(**fields)
