"""SSD lifetime and wear analysis.

The paper's lifetime claim (Sections 1 and 7): by avoiding relocation
storms and extra erases, SecureSSD "reduces the number of block erasures
by up to 79 % (62 % on average)" over the reprogram-based techniques,
and "the amplified writes in erSSD and scrSSD can greatly degrade the
SSD lifetime".  This module turns a run's erase statistics into the
standard lifetime estimate:

    host data writable over device life
        = endurance x #blocks / (erases per host page written)
          x wear-evenness penalty (mean wear / max wear)

so variants can be compared on *how much user data the device can absorb
before its first block wears out*.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, pstdev

from repro.flash.constants import TLC_PE_LIMIT
from repro.ftl.base import PageMappedFtl


@dataclass(frozen=True)
class WearStats:
    """Distribution of per-block erase counts across the device."""

    total_erases: int
    mean_erases: float
    max_erases: int
    min_erases: int
    #: coefficient of variation; 0 == perfectly even wear.
    cv: float

    @classmethod
    def from_ftl(cls, ftl: PageMappedFtl) -> "WearStats":
        counts = [
            block.erase_count for chip in ftl.chips for block in chip.blocks
        ]
        mu = mean(counts)
        return cls(
            total_erases=sum(counts),
            mean_erases=mu,
            max_erases=max(counts),
            min_erases=min(counts),
            cv=(pstdev(counts) / mu) if mu > 0 else 0.0,
        )

    @property
    def evenness(self) -> float:
        """mean/max wear in (0, 1]; 1.0 == perfectly level."""
        if self.max_erases == 0:
            return 1.0
        return self.mean_erases / self.max_erases


@dataclass(frozen=True)
class LifetimeEstimate:
    """Projected device lifetime for the measured workload mix."""

    endurance_cycles: int
    n_blocks: int
    host_pages_written: int
    wear: WearStats
    erases_per_host_page: float
    #: host pages writable before the average block hits endurance.
    lifetime_host_pages_even: float
    #: same, derated by wear imbalance (first block to die governs).
    lifetime_host_pages: float

    @classmethod
    def from_ftl(
        cls, ftl: PageMappedFtl, endurance_cycles: int = TLC_PE_LIMIT
    ) -> "LifetimeEstimate":
        wear = WearStats.from_ftl(ftl)
        host_pages = ftl.stats.host_writes
        n_blocks = len(ftl.chips) * ftl.geometry.blocks_per_chip
        if host_pages == 0 or wear.total_erases == 0:
            rate = 0.0
            even = float("inf")
        else:
            rate = wear.total_erases / host_pages
            even = endurance_cycles * n_blocks / rate
        return cls(
            endurance_cycles=endurance_cycles,
            n_blocks=n_blocks,
            host_pages_written=host_pages,
            wear=wear,
            erases_per_host_page=rate,
            lifetime_host_pages_even=even,
            lifetime_host_pages=even * wear.evenness,
        )

    def relative_to(self, other: "LifetimeEstimate") -> float:
        """Lifetime ratio of this device vs. another (same workload)."""
        if other.lifetime_host_pages == 0:
            return float("inf")
        return self.lifetime_host_pages / other.lifetime_host_pages


def erase_reduction(ours: WearStats, theirs: WearStats) -> float:
    """Relative erase-count reduction (the Section 1 headline metric)."""
    if theirs.total_erases == 0:
        return 0.0
    return 1.0 - ours.total_erases / theirs.total_erases
