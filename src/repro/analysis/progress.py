"""Live campaign progress on stderr -- ``--progress``.

Long fleet/torture/bench campaigns otherwise run silent until the
merged report appears.  A :class:`ProgressReporter` attached to the
grid runner streams one line per shard completion to *stderr* (stdout
stays reserved for artifacts: progress on or off must leave every
emitted file and stdout byte byte-identical, which CI asserts)::

    [fleet] shard 7/24 done (erSSD) | 3 cached | backlog 17 | 1.8 shard/s | eta 9s

Wall-clock readings feed only the rate/ETA fields of these ephemeral
lines, never an artifact -- which is why this lives in ``analysis``
(SIM07 keeps the wall clock out of ``repro/sim`` and ``repro/fleet``)
and why the runner calls the reporter from the parent process's merge
loop only.
"""

from __future__ import annotations

import sys
import time
from typing import TYPE_CHECKING, Callable, TextIO

if TYPE_CHECKING:
    from repro.analysis.parallel import GridTask


class ProgressReporter:
    """Streams shard-completion, backlog, and ETA lines to stderr.

    The grid runner drives it: :meth:`begin` once with the shard total,
    :meth:`done` per completed shard (in completion order -- this is
    observability, not the merge), :meth:`retry` when a shard is rerun,
    :meth:`finish` at the end.  ``clock`` is injectable for tests; the
    default is the wall clock, which is fine *here* because nothing
    downstream of stderr is compared.
    """

    def __init__(
        self,
        label: str,
        stream: TextIO | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock if clock is not None else time.monotonic
        self.total = 0
        self.cached = 0
        self.completed = 0
        self.retried = 0
        self._t0 = 0.0

    # ------------------------------------------------------------------
    def _emit(self, text: str) -> None:
        self.stream.write(f"[{self.label}] {text}\n")
        self.stream.flush()

    def begin(self, total: int, cached: int = 0) -> None:
        self.total = total
        self.cached = cached
        self.completed = 0
        self._t0 = self.clock()
        fresh = total - cached
        note = f", {cached} served from cache" if cached else ""
        self._emit(f"{total} shard(s): running {fresh}{note}")

    def done(self, task: GridTask) -> None:
        self.completed += 1
        backlog = max(0, self.total - self.cached - self.completed)
        elapsed = max(self.clock() - self._t0, 1e-9)
        rate = self.completed / elapsed
        eta = f"{backlog / rate:.0f}s" if rate > 0 and backlog else "0s"
        self._emit(
            f"shard {self.cached + self.completed}/{self.total} done "
            f"({task.variant}/{task.workload}) | backlog {backlog} | "
            f"{rate:.2f} shard/s | eta {eta}"
        )

    def retry(self, task: GridTask) -> None:
        self.retried += 1
        self._emit(
            f"shard {task.index} ({task.variant}/{task.workload}) "
            "failed once; retrying with the same seed"
        )

    def finish(self) -> None:
        elapsed = self.clock() - self._t0
        retried = f", {self.retried} retried" if self.retried else ""
        self._emit(
            f"complete: {self.completed} run, {self.cached} cached"
            f"{retried} in {elapsed:.1f}s"
        )
