"""Crash/fault torture harness and machine-readable robustness scorecard.

The acceptance test for the :mod:`repro.faults` subsystem: every FTL
variant must *survive* every injectable fault kind -- complete the
workload, keep the runtime sanitizer's invariants, and leave no readable
stale secured page at the attacker boundary -- and must recover from a
power cut at **any** operation boundary.

Three sweeps, all fully deterministic (one seed drives the workload and
every fault decision; re-running with the same arguments produces a
byte-identical scorecard):

* **rate sweep** -- each fault kind at each configured per-op
  probability, plus *forced* lock failures (pLock and/or bLock at
  rate 1.0) for the Evanesco variants, which must push the fallback
  chain all the way down without losing the sanitization guarantee;
* **power-loss sweep** -- one run per operation boundary in a window,
  each cut mid-flight, recovered with
  :class:`~repro.ftl.recovery.PowerLossRecovery`, invariant-checked,
  leak-checked, and then driven with fresh post-recovery traffic;
* **leak check** -- :func:`stale_secured_exposures` plays the Section 5.1
  forensic attacker against the raw chip dumps: any readable (and, for
  cryptSSD, decryptable) secured page whose version is no longer live is
  an exposure.

The only excused exposures after a power cut are pages whose
invalidating request was *in flight* when power died: the host was never
acknowledged, so no sanitization promise exists for them yet (they are
reported per-case as ``exempt``); they are destroyed when their blocks
are reclaimed, like any stale data.
"""

from __future__ import annotations

import json
import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.parallel import GridResultCache, GridTask, run_grid_detailed
from repro.analysis.progress import ProgressReporter
from repro.checkers.sanitizer import InvariantViolation
from repro.checkpoint import run_chunked_simulation
from repro.checkpoint.store import StoreCrashInjected
from repro.faults import FaultKind, FaultPlan
from repro.flash.errors import FlashError, PowerLossInjected
from repro.ftl.mapping import UNMAPPED
from repro.ftl.recovery import PowerLossRecovery
from repro.sim.runner import capture_block_trace
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSD
from repro.ssd.request import IoRequest, read, trim, write
from repro.telemetry import Telemetry

#: variant order used across torture outputs.
TORTURE_VARIANTS = (
    "baseline",
    "erSSD",
    "scrSSD",
    "secSSD_nobLock",
    "secSSD",
    "cryptSSD",
)

#: fault kinds exercised by the rate sweep on every variant.
COMMON_KINDS = (
    FaultKind.READ_UNCORRECTABLE,
    FaultKind.PROGRAM_FAIL,
    FaultKind.ERASE_FAIL,
)

#: variants that issue lock commands (and so can see lock faults).
LOCKING_VARIANTS = ("secSSD_nobLock", "secSSD")

#: per-op fault probabilities of the default rate sweep.
DEFAULT_RATES = (1e-3, 1e-2)

#: checkpoint-corruption modes exercised by the checkpoint sweep.
CHECKPOINT_MODES = ("powercut", "bitflip", "truncate")


# ---------------------------------------------------------------------------
# deterministic torture workload
# ---------------------------------------------------------------------------
def torture_requests(
    n_requests: int,
    logical_pages: int,
    seed: int,
    secure_fraction: float = 0.8,
) -> list[IoRequest]:
    """A seeded churn mix: mostly writes (hot-skewed), reads, trims.

    Writes span 1-4 pages so the stream fills blocks at a realistic
    clip; 70 % of requests target the hottest quarter of the address
    space so update invalidations (the sanitization triggers) dominate.
    """
    rng = random.Random(seed)
    hot = max(1, logical_pages // 4)
    out: list[IoRequest] = []
    for _ in range(n_requests):
        span = min(rng.randint(1, 4), logical_pages)
        base = hot if rng.random() < 0.7 else logical_pages
        lpa = rng.randrange(max(1, base - span + 1))
        roll = rng.random()
        if roll < 0.70:
            out.append(write(lpa, span, secure=rng.random() < secure_fraction))
        elif roll < 0.85:
            out.append(read(lpa, span))
        else:
            out.append(trim(lpa, span))
    return out


# ---------------------------------------------------------------------------
# the attacker-boundary leak check
# ---------------------------------------------------------------------------
def stale_secured_exposures(ssd: SSD) -> list[int]:
    """Global PPAs of readable secured pages whose version is dead.

    Plays the forensic attacker: walk every chip's raw dump (which
    honours the on-chip AP logic -- locked pages are simply absent),
    keep pages whose spare says ``secure``, excuse the live copy itself
    and same-sequence duplicates of a still-live version (a GC source
    whose version the host can legitimately still read), and -- for
    key-deletion designs -- excuse ciphertext that no longer decrypts.
    Whatever remains is recoverable stale secured data: an exposure.

    Variants with ``sanitize_scope == "none"`` promise nothing, so the
    check is vacuous for them by definition.
    """
    ftl = ssd.ftl
    if getattr(ftl, "sanitize_scope", "none") == "none":
        return []
    decrypt = getattr(ftl, "decrypt", None)
    leaks: list[int] = []
    for chip_id, chip in enumerate(ftl.chips):
        for ppn, payload in chip.raw_dump().items():
            block_index, offset = ftl.geometry.split_ppn(ppn)
            spare = chip.blocks[block_index].pages[offset].spare or {}
            if not spare.get("secure"):
                continue
            gppa = ftl.make_gppa(chip_id, ppn)
            lpa = int(spare.get("lpa", -1))
            live_gppa = (
                ftl.l2p.lookup(lpa)
                if 0 <= lpa < ftl.config.logical_pages
                else UNMAPPED
            )
            if live_gppa == gppa:
                continue  # the live copy itself
            if live_gppa != UNMAPPED:
                live_chip, live_ppn = ftl.split_gppa(live_gppa)
                live_block, live_off = ftl.geometry.split_ppn(live_ppn)
                live_spare = (
                    ftl.chips[live_chip]
                    .blocks[live_block]
                    .pages[live_off]
                    .spare
                    or {}
                )
                if live_spare.get("seq") == spare.get("seq"):
                    continue  # same version is still live (GC duplicate)
            if decrypt is not None and decrypt(payload) is None:
                continue  # ciphertext whose key was deleted
            leaks.append(gppa)
    return sorted(leaks)


# ---------------------------------------------------------------------------
# scorecard structures
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TortureCase:
    """Outcome of one torture run (one variant under one fault plan)."""

    variant: str
    kind: str      # fault-kind value or "power_loss"
    detail: str    # e.g. "rate=0.01", "forced", "op=137"
    outcome: str   # "PASS" | "SKIP: ..." | "FAIL: ..."
    robustness: dict[str, int] = field(default_factory=dict)
    injected: dict[str, int] = field(default_factory=dict)
    exempt: int = 0  # in-flight pages excused by a power cut

    @property
    def passed(self) -> bool:
        return not self.outcome.startswith("FAIL")

    def to_dict(self) -> dict[str, object]:
        return {
            "variant": self.variant,
            "kind": self.kind,
            "detail": self.detail,
            "outcome": self.outcome,
            "robustness": dict(self.robustness),
            "injected": dict(self.injected),
            "exempt": self.exempt,
        }

    @classmethod
    def from_dict(cls, data: dict) -> TortureCase:
        """Inverse of :meth:`to_dict` (shard-cache rehydration)."""
        return cls(
            variant=str(data["variant"]),
            kind=str(data["kind"]),
            detail=str(data["detail"]),
            outcome=str(data["outcome"]),
            robustness={str(k): int(v) for k, v in data["robustness"].items()},
            injected={str(k): int(v) for k, v in data["injected"].items()},
            exempt=int(data["exempt"]),
        )


@dataclass
class TortureScorecard:
    """Every case of one torture invocation, JSON-serializable."""

    seed: int
    cases: list[TortureCase] = field(default_factory=list)
    #: shards that failed once and passed their single bounded retry.
    retried_shards: int = 0
    #: shards rehydrated from a ``--resume`` shard cache instead of run.
    cached_shards: int = 0

    @property
    def failures(self) -> list[TortureCase]:
        return [case for case in self.cases if not case.passed]

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_json(self) -> str:
        """Deterministic JSON: same seed + schedule -> identical bytes."""
        return json.dumps(
            {
                "seed": self.seed,
                "passed": self.passed,
                "n_cases": len(self.cases),
                "n_failures": len(self.failures),
                "retried_shards": self.retried_shards,
                "cached_shards": self.cached_shards,
                "cases": [case.to_dict() for case in self.cases],
            },
            sort_keys=True,
            indent=2,
        )

    def format(self) -> str:
        """Human-readable per-case lines plus a verdict."""
        lines = []
        for case in self.cases:
            mark = "ok  " if case.passed else "FAIL"
            faults = sum(case.injected.values())
            lines.append(
                f"{mark} {case.variant:<14} {case.kind:<11} "
                f"{case.detail:<12} faults={faults:<4} {case.outcome}"
            )
        verdict = "PASS" if self.passed else "FAIL"
        recovery = ""
        if self.retried_shards or self.cached_shards:
            recovery = (
                f", {self.retried_shards} retried, "
                f"{self.cached_shards} cached"
            )
        lines.append(
            f"torture: {verdict} "
            f"({len(self.cases)} cases, {len(self.failures)} failure(s), "
            f"seed {self.seed}{recovery})"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# case runners
# ---------------------------------------------------------------------------
def _case_result(
    ssd: SSD, variant: str, kind: str, detail: str, outcome: str, exempt: int = 0
) -> TortureCase:
    injector = ssd.ftl.fault_injector
    injected = (
        {k.value: n for k, n in injector.injected.items()}
        if injector is not None
        else {}
    )
    return TortureCase(
        variant=variant,
        kind=kind,
        detail=detail,
        outcome=outcome,
        robustness=ssd.stats.robustness(),
        injected=injected,
        exempt=exempt,
    )


def run_rate_case(
    config: SSDConfig,
    variant: str,
    plan: FaultPlan,
    kind_label: str,
    detail: str,
    n_requests: int,
    seed: int,
    telemetry: Telemetry | None = None,
) -> TortureCase:
    """One fault-rate run: replay, full-check, leak-check.

    ``telemetry`` attaches a trace session (``repro torture
    --trace-out`` uses this to record one representative faulted run
    per variant, fault instants included).
    """
    case, _ = traced_rate_case(
        config,
        variant,
        plan,
        kind_label,
        detail,
        n_requests,
        seed,
        telemetry=telemetry,
    )
    return case


def traced_rate_case(
    config: SSDConfig,
    variant: str,
    plan: FaultPlan,
    kind_label: str,
    detail: str,
    n_requests: int,
    seed: int,
    telemetry: Telemetry | None = None,
) -> tuple[TortureCase, SSD]:
    """:func:`run_rate_case`, plus the simulated device itself.

    The device stays alive for post-run forensic probing: the audit
    layer's ``repro torture --cert-out`` path issues a sanitization
    certificate against the raw chips a faulted run left behind.
    """
    ssd = SSD(
        config,
        variant=variant,
        seed=seed,
        checked=True,
        faults=plan,
        telemetry=telemetry,
    )
    requests = torture_requests(n_requests, config.logical_pages, seed)
    try:
        for request in requests:
            ssd.submit(request)
        sanitizer = ssd.ftl._sanitizer
        if sanitizer is not None:
            sanitizer.full_check()
        leaks = stale_secured_exposures(ssd)
        outcome = (
            "PASS"
            if not leaks
            else (
                f"FAIL: {len(leaks)} readable stale secured page(s), "
                f"e.g. gppa {leaks[:4]}"
            )
        )
    except (InvariantViolation, FlashError, RuntimeError) as exc:
        outcome = f"FAIL: {type(exc).__name__}: {exc}"
    return _case_result(ssd, variant, kind_label, detail, outcome), ssd


def run_power_loss_case(
    config: SSDConfig,
    variant: str,
    op_index: int,
    n_requests: int,
    seed: int,
    post_requests: int = 24,
) -> TortureCase:
    """Cut power at one op boundary, recover, verify, keep serving."""
    plan = FaultPlan.power_loss_at(op_index, seed=seed)
    ssd = SSD(config, variant=variant, seed=seed, checked=True, faults=plan)
    requests = torture_requests(n_requests, config.logical_pages, seed)
    tripped = False
    try:
        for request in requests:
            ssd.submit(request)
    except PowerLossInjected:
        tripped = True
    except (InvariantViolation, FlashError, RuntimeError) as exc:
        return _case_result(
            ssd,
            variant,
            "power_loss",
            f"op={op_index}",
            f"FAIL: pre-cut {type(exc).__name__}: {exc}",
        )
    if not tripped:
        return _case_result(
            ssd,
            variant,
            "power_loss",
            f"op={op_index}",
            "SKIP: run ended before the scheduled boundary",
        )
    sanitizer = ssd.ftl._sanitizer
    # pages whose invalidating request was still in flight: the host was
    # never acknowledged, so they carry no sanitization promise yet
    exempt = (
        set(sanitizer._pending) | set(sanitizer._fresh)
        if sanitizer is not None
        else set()
    )
    recovery = PowerLossRecovery(ssd.ftl)
    recovery.simulate_power_loss()
    try:
        recovery.recover()
        if sanitizer is not None:
            sanitizer.full_check()
        leaks = [g for g in stale_secured_exposures(ssd) if g not in exempt]
        if leaks:
            return _case_result(
                ssd,
                variant,
                "power_loss",
                f"op={op_index}",
                f"FAIL: {len(leaks)} exposure(s) after recovery, "
                f"e.g. gppa {leaks[:4]}",
                exempt=len(exempt),
            )
        # the recovered device must still serve and still hold invariants
        for request in torture_requests(
            post_requests, config.logical_pages, seed + 9973
        ):
            ssd.submit(request)
        if sanitizer is not None:
            sanitizer.full_check()
        post_leaks = [
            g for g in stale_secured_exposures(ssd) if g not in exempt
        ]
        outcome = (
            "PASS"
            if not post_leaks
            else (
                f"FAIL: {len(post_leaks)} exposure(s) after post-recovery "
                f"traffic, e.g. gppa {post_leaks[:4]}"
            )
        )
    except (InvariantViolation, FlashError, RuntimeError) as exc:
        outcome = f"FAIL: recovery {type(exc).__name__}: {exc}"
    return _case_result(
        ssd, variant, "power_loss", f"op={op_index}", outcome, exempt=len(exempt)
    )


def run_checkpoint_case(
    config: SSDConfig,
    variant: str,
    mode: str,
    seed: int,
    workload: str = "MailServer",
    write_multiplier: float = 0.25,
) -> TortureCase:
    """Corrupt a resumable campaign's checkpoints; it must still finish.

    Three attack modes against :func:`repro.checkpoint.
    run_chunked_simulation`:

    * ``powercut`` -- power dies *mid-checkpoint-write* (after one
      section of the next generation hit disk, before the manifest and
      the atomic rename), leaving a torn ``gen-*.tmp`` directory;
    * ``bitflip`` -- one byte of the newest generation's FTL section is
      flipped on disk;
    * ``truncate`` -- the newest generation's manifest is cut in half.

    In every mode the final resume must quarantine the damaged
    generation, fall back to the previous good one, report the recovery
    on ``result.run.extra["checkpoint_recovery"]``, and end
    byte-identical to the same campaign run uninterrupted.
    """
    if mode not in CHECKPOINT_MODES:
        raise ValueError(f"unknown checkpoint mode {mode!r}")
    try:
        requests, _ = capture_block_trace(
            config, workload, seed=seed, write_multiplier=write_multiplier
        )
        every = max(1, len(requests) // 3)  # >= 3 checkpoint windows
        with tempfile.TemporaryDirectory() as tmp:
            common = dict(
                seed=seed, write_multiplier=write_multiplier, checked=True
            )
            reference = run_chunked_simulation(
                config, workload, variant, Path(tmp) / "ref", every, **common
            )
            run_dir = Path(tmp) / "run"
            # the interrupted campaign: killed after its first checkpoint
            run_chunked_simulation(
                config, workload, variant, run_dir, every,
                stop_after=1, **common,
            )
            if mode == "powercut":
                # resume, then cut power mid-write of the next generation
                try:
                    run_chunked_simulation(
                        config, workload, variant, run_dir, every,
                        resume=True, _crash_after="section:ftl", **common,
                    )
                    return TortureCase(
                        variant=variant,
                        kind="checkpoint",
                        detail=mode,
                        outcome="FAIL: mid-write power cut never fired",
                    )
                except StoreCrashInjected:
                    pass
            else:
                # complete one more window, then damage its checkpoint
                run_chunked_simulation(
                    config, workload, variant, run_dir, every,
                    resume=True, stop_after=1, **common,
                )
                newest = max(
                    p for p in run_dir.iterdir()
                    if p.is_dir() and len(p.name) == len("gen-000000")
                )
                if mode == "bitflip":
                    target = newest / "ftl.json"
                    raw = bytearray(target.read_bytes())
                    raw[len(raw) // 2] ^= 0x40
                    target.write_bytes(bytes(raw))
                else:  # truncate
                    target = newest / "MANIFEST.json"
                    raw = target.read_bytes()
                    target.write_bytes(raw[: len(raw) // 2])
            final = run_chunked_simulation(
                config, workload, variant, run_dir, every,
                resume=True, **common,
            )
            recovery = final.run.extra.get("checkpoint_recovery", [])
            qdir = run_dir / "quarantine"
            quarantined = sorted(
                p.name for p in qdir.iterdir()
            ) if qdir.is_dir() else []
            if not recovery or not quarantined:
                outcome = (
                    "FAIL: damaged checkpoint was not quarantined "
                    f"(reports={len(recovery)}, on-disk={quarantined})"
                )
            elif final.to_json() != reference.to_json():
                outcome = "FAIL: resumed result diverges from reference"
            else:
                outcome = "PASS"
            return TortureCase(
                variant=variant,
                kind="checkpoint",
                detail=mode,
                outcome=outcome,
                injected={"checkpoint_corruption": len(recovery)},
            )
    except Exception as exc:  # never a traceback: a FAIL case instead
        return TortureCase(
            variant=variant,
            kind="checkpoint",
            detail=mode,
            outcome=f"FAIL: {type(exc).__name__}: {exc}",
        )


# ---------------------------------------------------------------------------
# the full torture sweep
# ---------------------------------------------------------------------------
def _run_torture_case(task: GridTask) -> TortureCase:
    """Grid worker: one torture case (picklable dispatch)."""
    case_kind, case_args = task.payload
    if case_kind == "rate":
        return run_rate_case(*case_args)
    if case_kind == "checkpoint":
        return run_checkpoint_case(*case_args)
    return run_power_loss_case(*case_args)


def run_torture(
    config: SSDConfig,
    variants: tuple[str, ...] = TORTURE_VARIANTS,
    seed: int = 1,
    n_requests: int = 700,
    rates: tuple[float, ...] = DEFAULT_RATES,
    window_start: int = 0,
    window: int = 200,
    jobs: int = 1,
    checkpoint_modes: tuple[str, ...] = CHECKPOINT_MODES,
    resume_dir: str | Path | None = None,
    progress: ProgressReporter | None = None,
) -> TortureScorecard:
    """Rate + forced-lock + power-loss + checkpoint-corruption sweeps.

    Every case is independent (own device, own seed-derived fault
    plan), so ``jobs > 1`` fans them over worker processes via
    :func:`repro.analysis.parallel.run_grid_detailed`.  Cases are
    enumerated in one canonical order and merged in that order, so the
    scorecard is byte-identical for any job count.

    ``resume_dir`` makes the sweep itself resumable: completed cases
    are persisted one file per shard (checksummed, atomically written)
    and a re-run with the same directory recomputes only the missing
    or corrupt shards.  The scorecard reports how many shards were
    served from the cache (``cached_shards``) and how many needed the
    single bounded retry (``retried_shards``).
    """
    card = TortureScorecard(seed=seed)
    tasks: list[GridTask] = []

    def add(variant: str, case_kind: str, case_args: tuple) -> None:
        tasks.append(
            GridTask(
                index=len(tasks),
                variant=variant,
                workload="torture",
                seed=seed,
                payload=(case_kind, case_args),
            )
        )

    for variant in variants:
        kinds = list(COMMON_KINDS)
        if variant in LOCKING_VARIANTS:
            kinds += [FaultKind.PLOCK_FAIL, FaultKind.BLOCK_LOCK_FAIL]
        for kind in kinds:
            for rate in rates:
                add(
                    variant,
                    "rate",
                    (
                        config,
                        variant,
                        FaultPlan.single(kind, rate, seed=seed),
                        kind.value,
                        f"rate={rate:g}",
                        n_requests,
                        seed,
                    ),
                )
        if variant in LOCKING_VARIANTS:
            # forced failures: the verify-retry loop must exhaust and the
            # fallback chain must still deliver the guarantee
            forced = [
                ({FaultKind.PLOCK_FAIL: 1.0}, "plock"),
                ({FaultKind.BLOCK_LOCK_FAIL: 1.0}, "block_lock"),
                (
                    {FaultKind.PLOCK_FAIL: 1.0, FaultKind.BLOCK_LOCK_FAIL: 1.0},
                    "plock+block_lock",
                ),
            ]
            for rate_map, label in forced:
                add(
                    variant,
                    "rate",
                    (
                        config,
                        variant,
                        FaultPlan.from_rates(rate_map, seed=seed),
                        label,
                        "forced",
                        n_requests,
                        seed,
                    ),
                )
        for op_index in range(window_start, window_start + window):
            add(
                variant,
                "power_loss",
                (config, variant, op_index, n_requests, seed),
            )
        for mode in checkpoint_modes:
            add(variant, "checkpoint", (config, variant, mode, seed))
    cache = None
    if resume_dir is not None:
        cache = GridResultCache(
            resume_dir,
            to_state=lambda case: case.to_dict(),
            from_state=TortureCase.from_dict,
        )
    grid = run_grid_detailed(
        _run_torture_case, tasks, jobs=jobs, cache=cache, progress=progress
    )
    card.cases.extend(grid.results)
    card.retried_shards = grid.retried_shards
    card.cached_shards = grid.cached_shards
    return card
