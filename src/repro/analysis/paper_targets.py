"""Declarative registry of the paper's reported values.

Every quantitative claim the reproduction tracks lives here once, as a
:class:`Target` with an acceptance band (for measured quantities whose
shape, not magnitude, must match) or an exact expectation (for discrete
outcomes like the selected design point).  Benchmarks and the scorecard
evaluate measurements against this registry so that "does the
reproduction still match the paper?" is a single function call.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Target:
    """One tracked paper value."""

    experiment: str
    metric: str
    paper: str             # the paper's reported value, verbatim-ish
    lo: float | None = None
    hi: float | None = None
    exact: str | None = None
    note: str = ""

    def check(self, measured: float | str) -> bool:
        if self.exact is not None:
            return str(measured) == self.exact
        value = float(measured)
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True


PAPER_TARGETS: tuple[Target, ...] = (
    # -- Figure 9 / Section 5.3: pLock design ---------------------------
    Target("fig9", "selected_combination", "(ii) = (Vp4, 100us)", exact="ii"),
    Target("fig9", "tplock_us", "100 us", exact="100.0"),
    Target("fig9", "region_i_count", "4 combinations", exact="4"),
    Target("fig9", "region_ii_count", "5 combinations", exact="5"),
    Target("fig9", "weakest_pulse_success", "47.3 %", lo=0.42, hi=0.53),
    Target("fig9", "flag_redundancy_k", "9 cells", exact="9"),
    # -- Figure 12 / Section 5.4: bLock design --------------------------
    Target("fig12", "selected_combination", "(ii) = (Vb6, 300us)", exact="ii"),
    Target("fig12", "tblock_us", "300 us", exact="300.0"),
    Target("fig12", "combination_i_vth_5y", "> 4 V", lo=4.0),
    Target("fig12", "combination_vi_vth_1y", "< 3 V", hi=3.0),
    # -- Figure 6 / Section 4: OSR -------------------------------------
    Target(
        "fig6", "mlc_unreadable_after_osr", "7.4 % of MSB pages",
        lo=0.02, hi=0.15,
    ),
    Target("fig6", "tlc_unreadable_after_osr", "100 %", lo=0.999),
    Target(
        "fig6", "mlc_unreadable_after_retention", "most pages", lo=0.5,
    ),
    # -- Figure 10 / Section 5.4: open interval -------------------------
    Target(
        "fig10", "penalty_after_cycling", "~30 % RBER increase",
        lo=0.10, hi=0.60,
    ),
    # -- Figure 11(b): SSL cutoff ---------------------------------------
    Target(
        "fig11b", "rber_at_3v_1k_pe", "crosses the ECC limit at ~3 V",
        lo=0.9, hi=1.1,
    ),
    # -- Section 5.5: overheads ------------------------------------------
    Target("sec5.5", "tplock_vs_tprog", "< 14.3 %", hi=0.143),
    Target("sec5.5", "tblock_vs_tbers", "< 8.6 %", hi=0.086),
    Target("sec5.5", "flag_cells_per_wl", "27", exact="27"),
    # -- Figure 14 / Section 7: system results ---------------------------
    Target(
        "fig14a", "secssd_norm_iops_avg", "94.5 % of baseline",
        lo=0.90, hi=1.0,
    ),
    Target(
        "fig14a", "scrssd_norm_iops_avg", "~34 % of baseline",
        lo=0.15, hi=0.55,
    ),
    Target(
        "fig14a", "erssd_norm_iops_max", "< 4 % of baseline",
        hi=0.12,
    ),
    Target(
        "fig14b", "secssd_norm_waf", "~= baseline WAF", lo=0.95, hi=1.05,
    ),
    Target(
        "headline", "iops_vs_scrssd_avg", "2.9x (up to 4.8x)",
        lo=2.0, hi=4.5,
    ),
    Target(
        "headline", "erase_reduction_avg", "62 % (up to 79 %)",
        lo=0.45, hi=0.85,
    ),
    Target(
        "headline", "plock_reduction_avg", "28 % (up to 57 %)",
        lo=0.10, hi=0.65,
    ),
    Target(
        "fig14c", "gap_at_60pct_secure_max", "<= 6.2 % below baseline",
        hi=0.10,
    ),
)


@dataclass(frozen=True)
class TargetCheck:
    """Outcome of checking one measurement against its target."""

    target: Target
    measured: str
    passed: bool


def find_target(experiment: str, metric: str) -> Target:
    for target in PAPER_TARGETS:
        if target.experiment == experiment and target.metric == metric:
            return target
    raise KeyError(f"no target registered for {experiment}/{metric}")


def evaluate(measurements: dict[tuple[str, str], float | str]) -> list[TargetCheck]:
    """Check a measurement dict against the registry.

    ``measurements`` maps (experiment, metric) to the measured value;
    targets without a measurement are skipped (they may belong to a
    different benchmark).
    """
    checks = []
    for target in PAPER_TARGETS:
        key = (target.experiment, target.metric)
        if key not in measurements:
            continue
        measured = measurements[key]
        checks.append(
            TargetCheck(target, str(measured), target.check(measured))
        )
    return checks


def format_scorecard(checks: list[TargetCheck]) -> str:
    from repro.analysis.tables import render_table

    rows = [
        [
            c.target.experiment,
            c.target.metric,
            c.target.paper,
            c.measured,
            "PASS" if c.passed else "FAIL",
        ]
        for c in checks
    ]
    return render_table(
        ["experiment", "metric", "paper", "measured", "verdict"],
        rows,
        title="Reproduction scorecard (paper vs measured)",
    )
