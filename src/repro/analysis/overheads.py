"""Implementation-overhead accounting -- Section 5.5.

The paper quantifies Evanesco's costs:

* **latency**: tpLock <= 14.3 % of tPROG (100 us vs 700 us) and
  tbLock <= 8.6 % of tBERS (300 us vs 3.5 ms);
* **area**: one 9-bit majority circuit per chip (~200 transistors), 27
  flag cells per wordline taken from the unused spare area, and one
  bridge transistor per data-out pin (8 for a x8 chip).

These helpers compute the same ratios from the library's configured
constants so a configuration change keeps the claims honest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash import constants
from repro.flash.geometry import CellType, Geometry


@dataclass(frozen=True)
class LatencyOverhead:
    """Lock-command latency relative to the operations they shadow."""

    plock_us: float = constants.T_PLOCK_US
    prog_us: float = constants.T_PROG_US
    block_lock_us: float = constants.T_BLOCK_LOCK_US
    erase_us: float = constants.T_BERS_US

    @property
    def plock_vs_program(self) -> float:
        """tpLock / tPROG -- the paper reports < 14.3 %."""
        return self.plock_us / self.prog_us

    @property
    def block_lock_vs_erase(self) -> float:
        """tbLock / tBERS -- the paper reports < 8.6 %."""
        return self.block_lock_us / self.erase_us


@dataclass(frozen=True)
class AreaOverhead:
    """Flag-cell and peripheral-logic footprint of Evanesco."""

    geometry: Geometry
    k: int = constants.PAP_REDUNDANCY_K
    majority_transistors: int = 200  # 9-bit majority circuit [56]
    io_pins: int = 8                 # x8 NAND interface

    @property
    def flag_cells_per_wordline(self) -> int:
        """k cells per page of the wordline (27 for TLC at k = 9)."""
        return self.k * self.geometry.pages_per_wordline

    @property
    def spare_cells_per_wordline(self) -> int:
        """Spare-area cells available per wordline (per bit plane)."""
        return self.geometry.spare_bytes_per_page * 8

    @property
    def spare_fraction_used(self) -> float:
        """Fraction of the spare area consumed by pAP flags."""
        return self.flag_cells_per_wordline / (
            self.spare_cells_per_wordline * self.geometry.pages_per_wordline
        )

    @property
    def bridge_transistors(self) -> int:
        """One bridge transistor per data-out pin."""
        return self.io_pins

    def fits_in_spare(self) -> bool:
        """Whether the flags fit in existing spare cells (no area cost)."""
        return self.flag_cells_per_wordline <= self.spare_cells_per_wordline


def summarize_overheads(geometry: Geometry | None = None) -> dict[str, float]:
    """One-call summary of Section 5.5's numbers."""
    geometry = geometry or Geometry(cell_type=CellType.TLC)
    latency = LatencyOverhead()
    area = AreaOverhead(geometry)
    return {
        "plock_vs_program": latency.plock_vs_program,
        "block_lock_vs_erase": latency.block_lock_vs_erase,
        "flag_cells_per_wordline": float(area.flag_cells_per_wordline),
        "spare_fraction_used": area.spare_fraction_used,
        "majority_transistors": float(area.majority_transistors),
        "bridge_transistors": float(area.bridge_transistors),
    }
