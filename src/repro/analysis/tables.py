"""Plain-text rendering of the reproduced tables and figures.

Benchmarks print these so a run's output can be compared side by side
with the paper's tables; no plotting dependency is required.
"""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_table1(summaries: dict[str, dict[str, dict[str, float]]]) -> str:
    """Table 1: per-workload UV/MV VAF and Tinsecure aggregates."""
    headers = [
        "Workload",
        "UV VAF avg", "UV VAF max", "UV Tins avg", "UV Tins max",
        "MV VAF avg", "MV VAF max", "MV Tins avg", "MV Tins max",
    ]
    rows = []
    for workload, summary in summaries.items():
        uv, mv = summary["uv"], summary["mv"]
        rows.append([
            workload,
            f"{uv['vaf_avg']:.3g}", f"{uv['vaf_max']:.3g}",
            f"{uv['tinsec_avg']:.3g}", f"{uv['tinsec_max']:.3g}",
            f"{mv['vaf_avg']:.3g}", f"{mv['vaf_max']:.3g}",
            f"{mv['tinsec_avg']:.3g}", f"{mv['tinsec_max']:.3g}",
        ])
    return render_table(headers, rows, title="Table 1: data versioning summary")


def format_figure14(results) -> str:
    """Figure 14(a)+(b): normalized IOPS and WAF per workload x variant."""
    variants = None
    rows = []
    for workload, fig in results.items():
        if variants is None:
            variants = list(fig.outcomes)
        iops = [f"{fig.outcomes[v].normalized_iops:.3f}" for v in variants]
        waf = [f"{fig.outcomes[v].normalized_waf:.2f}" for v in variants]
        rows.append([workload, "IOPS", *iops])
        rows.append([workload, "WAF", *waf])
    headers = ["Workload", "Metric", *(variants or [])]
    return render_table(headers, rows, title="Figure 14(a)/(b): normalized IOPS and WAF")


def format_secure_fraction(series: dict[str, dict[float, float]]) -> str:
    """Figure 14(c): secSSD normalized IOPS vs secured-data fraction."""
    fractions = None
    rows = []
    for workload, points in series.items():
        if fractions is None:
            fractions = sorted(points)
        rows.append([workload, *(f"{points[f]:.3f}" for f in fractions)])
    headers = ["Workload", *(f"{f:.0%}" for f in (fractions or []))]
    return render_table(headers, rows, title="Figure 14(c): IOPS vs secured fraction")
