"""One-call collection of every tracked paper measurement.

:func:`collect_measurements` runs the chip-level studies and one system
sweep, returning the (experiment, metric) -> value dict that
:mod:`repro.analysis.paper_targets` evaluates.  Both the scorecard
benchmark and ``python -m repro scorecard`` go through this function, so
"does the reproduction match the paper?" has exactly one definition.
"""

from __future__ import annotations

import statistics

from repro.analysis.experiments import (
    FIGURE14_WORKLOADS,
    run_figure14,
    run_secure_fraction_sweep,
)
from repro.analysis.overheads import summarize_overheads
from repro.core.design_space import explore_block_design, explore_plock_design
from repro.core.ssl_lock import read_rber_vs_ssl_vth
from repro.flash import constants
from repro.flash.geometry import CellType
from repro.flash.osr import osr_study
from repro.flash.reliability import open_interval_penalty, open_interval_study
from repro.ssd.config import SSDConfig


def collect_chip_measurements(seed: int = 42) -> dict:
    """Chip-level targets only (fast: a few seconds)."""
    m: dict = {}

    plock = explore_plock_design()
    weakest = min(plock.points, key=lambda p: (p.pulse.vpgm, p.pulse.latency_us))
    regions = [p.region for p in plock.points]
    m[("fig9", "selected_combination")] = plock.selected_label
    m[("fig9", "tplock_us")] = str(plock.selected_pulse.latency_us)
    m[("fig9", "region_i_count")] = str(regions.count("region-i"))
    m[("fig9", "region_ii_count")] = str(regions.count("region-ii"))
    m[("fig9", "weakest_pulse_success")] = weakest.program_success
    m[("fig9", "flag_redundancy_k")] = str(constants.PAP_REDUNDANCY_K)

    block = explore_block_design()
    m[("fig12", "selected_combination")] = block.selected_label
    m[("fig12", "tblock_us")] = str(block.selected_pulse.latency_us)
    m[("fig12", "combination_i_vth_5y")] = block.model.vth_after(
        block.candidates["i"], constants.RETENTION_5Y_DAYS
    )
    m[("fig12", "combination_vi_vth_1y")] = block.model.vth_after(
        block.candidates["vi"], constants.RETENTION_1Y_DAYS
    )

    mlc = osr_study(CellType.MLC, n_wordlines=400, seed=seed)
    tlc = osr_study(CellType.TLC, n_wordlines=400, seed=seed)
    m[("fig6", "mlc_unreadable_after_osr")] = mlc.fraction_exceeding_limit(
        "after_sanitize"
    )
    m[("fig6", "tlc_unreadable_after_osr")] = tlc.fraction_exceeding_limit(
        "after_sanitize"
    )
    m[("fig6", "mlc_unreadable_after_retention")] = mlc.fraction_exceeding_limit(
        "after_retention"
    )

    m[("fig10", "penalty_after_cycling")] = open_interval_penalty(
        open_interval_study(), "After P/E cycling"
    )
    m[("fig11b", "rber_at_3v_1k_pe")] = read_rber_vs_ssl_vth(3.0, 1000)

    overheads = summarize_overheads()
    m[("sec5.5", "tplock_vs_tprog")] = overheads["plock_vs_program"]
    m[("sec5.5", "tblock_vs_tbers")] = overheads["block_lock_vs_erase"]
    m[("sec5.5", "flag_cells_per_wl")] = str(
        int(overheads["flag_cells_per_wordline"])
    )
    return m


def collect_system_measurements(
    config: SSDConfig, seed: int = 1, write_multiplier: float = 1.0
) -> dict:
    """Figure-14 family targets (slow: replays every workload x variant)."""
    m: dict = {}
    results = run_figure14(config, seed=seed, write_multiplier=write_multiplier)
    m[("fig14a", "secssd_norm_iops_avg")] = statistics.mean(
        r.outcomes["secSSD"].normalized_iops for r in results.values()
    )
    m[("fig14a", "scrssd_norm_iops_avg")] = statistics.mean(
        r.outcomes["scrSSD"].normalized_iops for r in results.values()
    )
    m[("fig14a", "erssd_norm_iops_max")] = max(
        r.outcomes["erSSD"].normalized_iops for r in results.values()
    )
    m[("fig14b", "secssd_norm_waf")] = statistics.mean(
        r.outcomes["secSSD"].normalized_waf for r in results.values()
    )
    m[("headline", "iops_vs_scrssd_avg")] = statistics.mean(
        r.iops_ratio("secSSD", "scrSSD") for r in results.values()
    )
    m[("headline", "erase_reduction_avg")] = statistics.mean(
        r.erase_reduction_vs("scrSSD") for r in results.values()
    )
    m[("headline", "plock_reduction_avg")] = statistics.mean(
        r.plock_reduction_from_block_lock() for r in results.values()
    )

    sweep = run_secure_fraction_sweep(
        config,
        workloads=FIGURE14_WORKLOADS,
        fractions=(0.6, 1.0),
        seed=seed,
        write_multiplier=write_multiplier,
    )
    m[("fig14c", "gap_at_60pct_secure_max")] = max(
        1.0 - series[0.6] for series in sweep.values()
    )
    return m


def collect_measurements(
    config: SSDConfig, seed: int = 1, write_multiplier: float = 1.0
) -> dict:
    """All tracked measurements (chip-level + system-level)."""
    measurements = collect_chip_measurements()
    measurements.update(
        collect_system_measurements(
            config, seed=seed, write_multiplier=write_multiplier
        )
    )
    return measurements
