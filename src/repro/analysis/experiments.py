"""System-level experiment runners (Table 1, Figure 4, Figure 14).

Each runner replays identical file-level traces against one or more SSD
variants and aggregates the paper's metrics.  Benchmarks and examples
both call into this module so that every reproduction of a table/figure
goes through exactly one code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.host.filesystem import FileSystem
from repro.host.trace import TraceReplayer
from repro.host.vertrace import TimeplotSample, VerTrace
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSD
from repro.ssd.stats import RunResult
from repro.workloads import WORKLOADS

#: variant order used across Figure 14 outputs.
FIGURE14_VARIANTS = ("baseline", "erSSD", "scrSSD", "secSSD_nobLock", "secSSD")

#: workload order used across Figure 14 outputs.
FIGURE14_WORKLOADS = ("MailServer", "DBServer", "FileServer", "Mobile")


@dataclass
class VariantOutcome:
    """One (workload, variant) cell of Figure 14."""

    workload: str
    variant: str
    result: RunResult
    normalized_iops: float = 0.0
    normalized_waf: float = 0.0


@dataclass
class Figure14Result:
    """All cells for one workload, plus derived headline ratios."""

    workload: str
    outcomes: dict[str, VariantOutcome] = field(default_factory=dict)

    def iops_ratio(self, variant_a: str, variant_b: str) -> float:
        """IOPS(a) / IOPS(b)."""
        return (
            self.outcomes[variant_a].result.iops
            / self.outcomes[variant_b].result.iops
        )

    def erase_reduction_vs(self, other: str, variant: str = "secSSD") -> float:
        """Relative reduction in block erasures of ``variant`` vs ``other``."""
        ours = self.outcomes[variant].result.stats.flash_erases
        theirs = self.outcomes[other].result.stats.flash_erases
        if theirs == 0:
            return 0.0
        return 1.0 - ours / theirs

    def plock_reduction_from_block_lock(self) -> float:
        """How much bLock cuts the pLock count (secSSD vs secSSD_nobLock)."""
        without = self.outcomes["secSSD_nobLock"].result.stats.plocks
        with_b = self.outcomes["secSSD"].result.stats.plocks
        if without == 0:
            return 0.0
        return 1.0 - with_b / without


def run_workload_on_variant(
    config: SSDConfig,
    workload: str,
    variant: str,
    seed: int = 1,
    secure_fraction: float = 1.0,
    write_multiplier: float = 1.0,
    observer=None,
    checked: bool | None = None,
    check_interval: int | None = None,
) -> RunResult:
    """Replay one workload trace on one SSD variant.

    ``checked=True`` attaches the runtime invariant sanitizer; a
    violation surfaces as :class:`repro.checkers.sanitizer.InvariantViolation`.
    """
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}")
    ssd = SSD(
        config,
        variant,
        observer=observer,
        seed=seed,
        checked=checked,
        check_interval=check_interval,
    )
    fs = FileSystem(ssd)
    generator = WORKLOADS[workload](
        capacity_pages=config.logical_pages,
        seed=seed,
        secure_fraction=secure_fraction,
    )
    TraceReplayer(fs).replay(generator.ops(write_multiplier=write_multiplier))
    return ssd.result()


def run_figure14(
    config: SSDConfig,
    workloads: tuple[str, ...] = FIGURE14_WORKLOADS,
    variants: tuple[str, ...] = FIGURE14_VARIANTS,
    seed: int = 1,
    write_multiplier: float = 1.0,
    secure_fraction: float = 1.0,
) -> dict[str, Figure14Result]:
    """Figure 14(a)/(b): normalized IOPS and WAF per workload x variant.

    Every variant replays the *identical* trace (same generator seed).
    Results are normalized to the ``baseline`` variant per workload.
    """
    if "baseline" not in variants:
        raise ValueError("the baseline variant is required for normalization")
    out: dict[str, Figure14Result] = {}
    for workload in workloads:
        fig = Figure14Result(workload)
        for variant in variants:
            result = run_workload_on_variant(
                config,
                workload,
                variant,
                seed=seed,
                secure_fraction=secure_fraction,
                write_multiplier=write_multiplier,
            )
            fig.outcomes[variant] = VariantOutcome(workload, variant, result)
        base = fig.outcomes["baseline"].result
        for outcome in fig.outcomes.values():
            outcome.normalized_iops = outcome.result.normalized_iops(base)
            outcome.normalized_waf = (
                outcome.result.normalized_waf(base) if base.waf > 0 else 0.0
            )
        out[workload] = fig
    return out


def run_secure_fraction_sweep(
    config: SSDConfig,
    workloads: tuple[str, ...] = FIGURE14_WORKLOADS,
    fractions: tuple[float, ...] = (0.6, 0.7, 0.8, 0.9, 1.0),
    seed: int = 1,
    write_multiplier: float = 1.0,
) -> dict[str, dict[float, float]]:
    """Figure 14(c): secSSD IOPS vs fraction of secured data.

    Returns workload -> {secure fraction -> normalized IOPS} where the
    normalization baseline is the no-sanitization SSD replaying the same
    (all-secure-tagged) trace.
    """
    out: dict[str, dict[float, float]] = {}
    for workload in workloads:
        base = run_workload_on_variant(
            config,
            workload,
            "baseline",
            seed=seed,
            write_multiplier=write_multiplier,
        )
        series: dict[float, float] = {}
        for fraction in fractions:
            result = run_workload_on_variant(
                config,
                workload,
                "secSSD",
                seed=seed,
                secure_fraction=fraction,
                write_multiplier=write_multiplier,
            )
            series[fraction] = result.normalized_iops(base)
        out[workload] = series
    return out


# ---------------------------------------------------------------------------
# Table 1 / Figure 4 (data versioning study)
# ---------------------------------------------------------------------------
@dataclass
class VersioningStudyResult:
    """Output of the Section 3 study for one workload."""

    workload: str
    summary: dict[str, dict[str, float]]
    profiler: VerTrace
    run: RunResult


def run_versioning_study(
    config: SSDConfig,
    workload: str,
    seed: int = 1,
    write_multiplier: float = 4.0,
    variant: str = "baseline",
) -> VersioningStudyResult:
    """Table 1: replay a workload with VerTrace attached to the FTL.

    The paper's protocol: pre-fill 75 % of capacity (the generators'
    setup phase), then write four device capacities of steady-state
    traffic; VAF and Tinsecure are computed per file and aggregated per
    UV/MV class.
    """
    profiler = VerTrace.for_config(config)
    ssd = SSD(config, variant, observer=profiler, seed=seed)
    fs = FileSystem(ssd)
    generator = WORKLOADS[workload](
        capacity_pages=config.logical_pages, seed=seed
    )
    TraceReplayer(fs).replay(generator.ops(write_multiplier=write_multiplier))
    profiler.close()
    return VersioningStudyResult(
        workload=workload,
        summary=profiler.summarize(),
        profiler=profiler,
        run=ssd.result(),
    )


def run_timeplot_study(
    config: SSDConfig,
    workload: str,
    seed: int = 1,
    write_multiplier: float = 4.0,
) -> dict[str, list[TimeplotSample]]:
    """Figure 4: N_valid/N_invalid trajectories of a UV and an MV file.

    Tracks every file, then returns the trajectories of the UV file and
    the MV file with the largest ``max_invalid`` -- the paper's fmb / fdb
    selection criterion ("to highlight different data versioning
    patterns").
    """
    profiler = VerTrace.for_config(config, track_all=True)
    ssd = SSD(config, "baseline", observer=profiler, seed=seed)
    fs = FileSystem(ssd)
    generator = WORKLOADS[workload](
        capacity_pages=config.logical_pages, seed=seed
    )
    TraceReplayer(fs).replay(generator.ops(write_multiplier=write_multiplier))
    profiler.close()

    best: dict[str, tuple[int, int]] = {}
    for state in profiler.files():
        cls = "mv" if state.multi_version else "uv"
        if state.max_valid == 0:
            continue
        score = state.max_invalid
        if cls not in best or score > best[cls][1]:
            best[cls] = (state.fid, score)
    return {cls: profiler.timeplot(fid) for cls, (fid, _) in best.items()}
