"""Parallel experiment orchestrator -- the only multiprocessing site.

Experiment sweeps (``repro bench``, ``repro torture``) are grids of
fully independent cells: each cell builds its own device from a frozen
:class:`~repro.ssd.config.SSDConfig` and its own seed, runs, and
returns a picklable result.  This module fans such grids over worker
processes while keeping the one property the whole repo is built on:
**the merged output is byte-identical to a serial run.**

The determinism contract (DESIGN.md section 3g):

* tasks are enumerated in a single canonical order before any work
  starts; results are merged *in that order*, never in completion
  order;
* every task carries its own seed, derived up front (either the
  caller's per-case seed, or :func:`derive_seed` -- a SHA-256 hash of
  the task coordinates, never Python's salted ``hash``);
* workers receive pickled copies of frozen inputs, so no task can
  observe another task's mutations;
* wall-clock readings stay out of merged comparisons; tests that need
  byte-identical artifacts inject a :class:`DeterministicTimer`.

Rule SIM09 enforces the "only here" part: ``multiprocessing`` /
``concurrent.futures`` imports anywhere else in the package are lint
errors, so every fan-out inherits this contract instead of reinventing
a subtly order-dependent one.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.checkpoint.codec import (
    CodecError,
    canonical_dumps,
    decode,
    encode,
    section_checksum,
)

if TYPE_CHECKING:
    from repro.analysis.progress import ProgressReporter


@dataclass(frozen=True)
class GridTask:
    """One cell of an experiment grid.

    ``index`` is the cell's position in the canonical enumeration
    order (also the merge order).  ``variant``/``workload``/``seed``
    name the cell for humans -- they are what a failure report leads
    with.  ``payload`` carries whatever else the runner function
    needs; it must be picklable for ``jobs > 1``.
    """

    index: int
    variant: str
    workload: str
    seed: int
    payload: object = None


class GridTaskError(RuntimeError):
    """A grid cell failed; the message names the failing cell.

    Worker tracebacks cross the process boundary stripped down to the
    exception object, so the wrapper restores the context a person
    needs first: *which* (variant, workload, seed) cell died and what
    the original exception said.  The original exception is chained as
    ``__cause__``.
    """

    def __init__(self, task: GridTask, cause: BaseException) -> None:
        self.task = task
        super().__init__(
            f"grid task {task.index} failed "
            f"(variant={task.variant!r}, workload={task.workload!r}, "
            f"seed={task.seed}): {type(cause).__name__}: {cause}"
        )


def derive_seed(
    base: int, *coordinates: object, domain: str | None = None
) -> int:
    """A deterministic 63-bit per-task seed from grid coordinates.

    Hashes ``base`` plus the coordinate tuple with SHA-256 -- stable
    across processes, platforms, and Python versions, unlike the
    built-in ``hash`` (salted per process, so it would silently break
    the serial/parallel byte-identity contract).

    ``domain`` is a separation tag for independent seed families:
    two subsystems sharing one master seed (say the bench grid and a
    fleet shard plan) pass distinct domains so their derived streams
    can never collide, even for identical coordinate tuples.  Omitting
    it preserves the historical derivation byte-for-byte, so existing
    call sites keep their seeds.
    """
    text = ":".join([repr(base), *map(repr, coordinates)])
    if domain is not None:
        # NUL can never appear in the undomained form (it is built from
        # repr() output), so domained and undomained texts are disjoint.
        text = f"{domain}\x00{text}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class DeterministicTimer:
    """A fake ``perf_counter``: advances a fixed step per call.

    Injected in place of the wall clock wherever a timed artifact must
    be byte-identical across runs and across serial/parallel execution
    (every timed interval measures exactly ``step_s``).  Picklable, and
    each worker's copy starts from this instance's current state, so
    per-task readings do not depend on how tasks were distributed.
    """

    def __init__(self, step_s: float = 0.001) -> None:
        if step_s <= 0.0:
            raise ValueError("step_s must be positive")
        self.step_s = step_s
        self._now = 0.0

    def __call__(self) -> float:
        now = self._now
        self._now += self.step_s
        return now


class GridResultCache:
    """Durable per-shard results for resumable grids.

    One file per completed task (``task-<index>.json``), written
    atomically (tmp + rename) through the :mod:`repro.checkpoint.codec`
    tagged-JSON format with an embedded SHA-256 checksum.  A re-run of
    the same grid with the same cache directory skips every shard whose
    file validates -- a crashed sweep resumes from its last completed
    shard instead of recomputing the grid.

    Safety matches the checkpoint store's: a cache file that is
    truncated, bit-flipped, or keyed to different task coordinates is
    quarantined (renamed ``*.corrupt``) and the shard is recomputed;
    corruption can cost work, never correctness.

    ``to_state``/``from_state`` adapt non-JSON-native results (e.g. a
    dataclass's ``to_dict``/``from_dict`` pair); the default identity
    pair suits plain dict/list results.
    """

    def __init__(
        self,
        root: str | Path,
        to_state: Callable[[object], object] | None = None,
        from_state: Callable[[object], object] | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._to_state = to_state if to_state is not None else (lambda r: r)
        self._from_state = (
            from_state if from_state is not None else (lambda s: s)
        )
        #: shards served from disk by the last :func:`run_grid_detailed`.
        self.hits = 0

    @staticmethod
    def _key(task: GridTask) -> dict[str, object]:
        return {
            "index": task.index,
            "variant": task.variant,
            "workload": task.workload,
            "seed": task.seed,
        }

    def _path(self, task: GridTask) -> Path:
        return self.root / f"task-{task.index:06d}.json"

    def _quarantine(self, path: Path) -> None:
        target = path.with_suffix(".json.corrupt")
        n = 1
        while target.exists():  # pragma: no cover - repeat corruption
            n += 1
            target = path.with_suffix(f".json.corrupt.{n}")
        os.rename(path, target)

    def load(self, task: GridTask) -> tuple[bool, object]:
        """``(True, result)`` on a validated hit, ``(False, None)`` else."""
        path = self._path(task)
        if not path.exists():
            return False, None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload["key"] != self._key(task):
                raise ValueError("cache file keyed to different coordinates")
            body = canonical_dumps(payload["result"])
            if section_checksum(body) != payload["checksum"]:
                raise ValueError("checksum mismatch")
            result = self._from_state(decode(payload["result"]))
        except (OSError, ValueError, KeyError, TypeError, CodecError):
            self._quarantine(path)
            return False, None
        return True, result

    def store(self, task: GridTask, result: object) -> None:
        encoded = encode(self._to_state(result))
        payload = {
            "key": self._key(task),
            "checksum": section_checksum(canonical_dumps(encoded)),
            "result": encoded,
        }
        path = self._path(task)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(canonical_dumps(payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.rename(tmp, path)


@dataclass
class GridResult:
    """Merged grid output plus the shard-level recovery accounting."""

    results: list[object]
    #: shards that failed once and succeeded on their single retry.
    retried_shards: int = 0
    #: canonical indices of those shards, ascending.
    retried: tuple[int, ...] = ()
    #: shards served from a :class:`GridResultCache` instead of run.
    cached_shards: int = 0


def _first_pass(
    fn: Callable[[GridTask], object],
    pending: Sequence[GridTask],
    jobs: int,
    progress: ProgressReporter | None = None,
) -> dict[int, object | BaseException]:
    """Run every pending task once; map index -> result or exception.

    Progress is reported in *completion* order (that is what a human
    watching a campaign wants to see) while the returned mapping is
    keyed by canonical index, so downstream merging stays byte-identical
    with or without a reporter attached.
    """
    outcome: dict[int, object | BaseException] = {}
    if jobs == 1 or len(pending) <= 1:
        for task in pending:
            try:
                outcome[task.index] = fn(task)
            except Exception as exc:
                outcome[task.index] = exc
            if progress is not None:
                progress.done(task)
        return outcome
    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        task_of = {pool.submit(fn, task): task for task in pending}
        for future in as_completed(task_of):
            task = task_of[future]
            try:
                outcome[task.index] = future.result()
            except Exception as exc:
                outcome[task.index] = exc
            if progress is not None:
                progress.done(task)
    return outcome


def run_grid_detailed(
    fn: Callable[[GridTask], object],
    tasks: Iterable[GridTask],
    jobs: int = 1,
    cache: GridResultCache | None = None,
    progress: ProgressReporter | None = None,
) -> GridResult:
    """:func:`run_grid` plus retry/cache accounting.

    **Bounded retry**: a shard that fails its first attempt is retried
    exactly once, in-process, with the identical task (the re-derived
    seed is unchanged -- a retry must compute the same cell, not a
    luckier one).  Retries run in ascending canonical index order after
    the first pass completes, so which shard retried first never
    depends on pool scheduling.  A shard that fails *twice* raises
    :class:`GridTaskError` for the lowest-indexed such cell, with the
    second failure chained as ``__cause__``.

    **Cache**: with a :class:`GridResultCache`, validated cached shards
    are returned without running ``fn`` and fresh results are persisted
    as soon as they are computed, so a crashed sweep's next invocation
    resumes from its last completed shard.
    """
    ordered: Sequence[GridTask] = list(tasks)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    merged: dict[int, object] = {}
    cached = 0
    pending: list[GridTask] = []
    for task in ordered:
        if cache is not None:
            hit, result = cache.load(task)
            if hit:
                merged[task.index] = result
                cached += 1
                continue
        pending.append(task)
    if cache is not None:
        cache.hits = cached
    if progress is not None:
        progress.begin(len(ordered), cached=cached)
    outcome = _first_pass(fn, pending, jobs, progress=progress)
    retried: list[int] = []
    failures: list[tuple[GridTask, BaseException]] = []
    for task in pending:
        result = outcome[task.index]
        if isinstance(result, BaseException):
            # single bounded retry, same task, same seed, in index order
            if progress is not None:
                progress.retry(task)
            try:
                result = fn(task)
            except Exception as exc:
                failures.append((task, exc))
                continue
            retried.append(task.index)
        merged[task.index] = result
        if cache is not None:
            cache.store(task, result)
    if progress is not None:
        progress.finish()
    if failures:
        task, cause = failures[0]
        raise GridTaskError(task, cause) from cause
    return GridResult(
        results=[merged[task.index] for task in ordered],
        retried_shards=len(retried),
        retried=tuple(retried),
        cached_shards=cached,
    )


def run_grid(
    fn: Callable[[GridTask], object],
    tasks: Iterable[GridTask],
    jobs: int = 1,
) -> list[object]:
    """Run every task through ``fn``; results in canonical task order.

    ``jobs <= 1`` runs in-process (no worker pool, no pickling) --
    the reference execution the parallel path must match byte-for-byte.
    ``jobs > 1`` fans tasks over a process pool; ``fn`` and each
    task's payload must then be picklable (module-level function,
    frozen-dataclass arguments).

    A shard that fails is retried once (see :func:`run_grid_detailed`);
    a shard that fails twice raises :class:`GridTaskError` naming the
    lowest-indexed failing cell.
    """
    return run_grid_detailed(fn, tasks, jobs=jobs).results
