"""Parallel experiment orchestrator -- the only multiprocessing site.

Experiment sweeps (``repro bench``, ``repro torture``) are grids of
fully independent cells: each cell builds its own device from a frozen
:class:`~repro.ssd.config.SSDConfig` and its own seed, runs, and
returns a picklable result.  This module fans such grids over worker
processes while keeping the one property the whole repo is built on:
**the merged output is byte-identical to a serial run.**

The determinism contract (DESIGN.md section 3g):

* tasks are enumerated in a single canonical order before any work
  starts; results are merged *in that order*, never in completion
  order;
* every task carries its own seed, derived up front (either the
  caller's per-case seed, or :func:`derive_seed` -- a SHA-256 hash of
  the task coordinates, never Python's salted ``hash``);
* workers receive pickled copies of frozen inputs, so no task can
  observe another task's mutations;
* wall-clock readings stay out of merged comparisons; tests that need
  byte-identical artifacts inject a :class:`DeterministicTimer`.

Rule SIM09 enforces the "only here" part: ``multiprocessing`` /
``concurrent.futures`` imports anywhere else in the package are lint
errors, so every fan-out inherits this contract instead of reinventing
a subtly order-dependent one.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass


@dataclass(frozen=True)
class GridTask:
    """One cell of an experiment grid.

    ``index`` is the cell's position in the canonical enumeration
    order (also the merge order).  ``variant``/``workload``/``seed``
    name the cell for humans -- they are what a failure report leads
    with.  ``payload`` carries whatever else the runner function
    needs; it must be picklable for ``jobs > 1``.
    """

    index: int
    variant: str
    workload: str
    seed: int
    payload: object = None


class GridTaskError(RuntimeError):
    """A grid cell failed; the message names the failing cell.

    Worker tracebacks cross the process boundary stripped down to the
    exception object, so the wrapper restores the context a person
    needs first: *which* (variant, workload, seed) cell died and what
    the original exception said.  The original exception is chained as
    ``__cause__``.
    """

    def __init__(self, task: GridTask, cause: BaseException) -> None:
        self.task = task
        super().__init__(
            f"grid task {task.index} failed "
            f"(variant={task.variant!r}, workload={task.workload!r}, "
            f"seed={task.seed}): {type(cause).__name__}: {cause}"
        )


def derive_seed(base: int, *coordinates: object) -> int:
    """A deterministic 63-bit per-task seed from grid coordinates.

    Hashes ``base`` plus the coordinate tuple with SHA-256 -- stable
    across processes, platforms, and Python versions, unlike the
    built-in ``hash`` (salted per process, so it would silently break
    the serial/parallel byte-identity contract).
    """
    text = ":".join([repr(base), *map(repr, coordinates)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class DeterministicTimer:
    """A fake ``perf_counter``: advances a fixed step per call.

    Injected in place of the wall clock wherever a timed artifact must
    be byte-identical across runs and across serial/parallel execution
    (every timed interval measures exactly ``step_s``).  Picklable, and
    each worker's copy starts from this instance's current state, so
    per-task readings do not depend on how tasks were distributed.
    """

    def __init__(self, step_s: float = 0.001) -> None:
        if step_s <= 0.0:
            raise ValueError("step_s must be positive")
        self.step_s = step_s
        self._now = 0.0

    def __call__(self) -> float:
        now = self._now
        self._now += self.step_s
        return now


def run_grid(
    fn: Callable[[GridTask], object],
    tasks: Iterable[GridTask],
    jobs: int = 1,
) -> list[object]:
    """Run every task through ``fn``; results in canonical task order.

    ``jobs <= 1`` runs in-process (no worker pool, no pickling) --
    the reference execution the parallel path must match byte-for-byte.
    ``jobs > 1`` fans tasks over a process pool; ``fn`` and each
    task's payload must then be picklable (module-level function,
    frozen-dataclass arguments).

    A failing task raises :class:`GridTaskError` naming the cell; with
    a pool, earlier-indexed results are still collected first, so the
    error reported is the failing task with the lowest index.
    """
    ordered: Sequence[GridTask] = list(tasks)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs == 1 or len(ordered) <= 1:
        results: list[object] = []
        for task in ordered:
            try:
                results.append(fn(task))
            except Exception as exc:
                raise GridTaskError(task, exc) from exc
        return results
    with ProcessPoolExecutor(max_workers=min(jobs, len(ordered))) as pool:
        futures = [pool.submit(fn, task) for task in ordered]
        results = []
        for task, future in zip(ordered, futures):
            try:
                results.append(future.result())
            except Exception as exc:
                raise GridTaskError(task, exc) from exc
    return results
