"""Experiment runners, metric aggregation, and table rendering."""

from repro.analysis.experiments import (
    FIGURE14_VARIANTS,
    FIGURE14_WORKLOADS,
    Figure14Result,
    VariantOutcome,
    VersioningStudyResult,
    run_figure14,
    run_secure_fraction_sweep,
    run_timeplot_study,
    run_versioning_study,
    run_workload_on_variant,
)
from repro.analysis.lifetime import (
    LifetimeEstimate,
    WearStats,
    erase_reduction,
)
from repro.analysis.overheads import (
    AreaOverhead,
    LatencyOverhead,
    summarize_overheads,
)
from repro.analysis.tables import (
    format_figure14,
    format_secure_fraction,
    format_table1,
    render_table,
)

__all__ = [
    "AreaOverhead",
    "FIGURE14_VARIANTS",
    "FIGURE14_WORKLOADS",
    "Figure14Result",
    "LatencyOverhead",
    "LifetimeEstimate",
    "WearStats",
    "erase_reduction",
    "VariantOutcome",
    "VersioningStudyResult",
    "format_figure14",
    "format_secure_fraction",
    "format_table1",
    "render_table",
    "run_figure14",
    "run_secure_fraction_sweep",
    "run_timeplot_study",
    "run_versioning_study",
    "run_workload_on_variant",
    "summarize_overheads",
]
