"""Experiment runners, metric aggregation, and table rendering."""

from repro.analysis.experiments import (
    FIGURE14_VARIANTS,
    FIGURE14_WORKLOADS,
    Figure14Result,
    VariantOutcome,
    VersioningStudyResult,
    run_figure14,
    run_secure_fraction_sweep,
    run_timeplot_study,
    run_versioning_study,
    run_workload_on_variant,
)
from repro.analysis.bench_engine import (
    format_bench,
    run_bench,
    write_bench_json,
)
from repro.analysis.latency import (
    TAIL_LATENCY_VARIANTS,
    format_tail_latency,
    policy_for_variant,
    run_tail_latency_study,
)
from repro.analysis.lifetime import (
    LifetimeEstimate,
    WearStats,
    erase_reduction,
)
from repro.analysis.overheads import (
    AreaOverhead,
    LatencyOverhead,
    summarize_overheads,
)
from repro.analysis.tables import (
    format_figure14,
    format_secure_fraction,
    format_table1,
    render_table,
)
from repro.analysis.tracing import (
    TracedRun,
    format_trace_summary,
    parse_sample_spec,
    run_traced_study,
    write_trace_files,
)
from repro.analysis.torture import (
    DEFAULT_RATES,
    TORTURE_VARIANTS,
    TortureCase,
    TortureScorecard,
    run_power_loss_case,
    run_rate_case,
    run_torture,
    stale_secured_exposures,
    torture_requests,
)

__all__ = [
    "AreaOverhead",
    "DEFAULT_RATES",
    "FIGURE14_VARIANTS",
    "FIGURE14_WORKLOADS",
    "Figure14Result",
    "TAIL_LATENCY_VARIANTS",
    "TORTURE_VARIANTS",
    "TortureCase",
    "TortureScorecard",
    "TracedRun",
    "LatencyOverhead",
    "LifetimeEstimate",
    "WearStats",
    "erase_reduction",
    "VariantOutcome",
    "VersioningStudyResult",
    "format_bench",
    "format_figure14",
    "format_secure_fraction",
    "format_table1",
    "format_tail_latency",
    "format_trace_summary",
    "parse_sample_spec",
    "policy_for_variant",
    "render_table",
    "run_bench",
    "run_figure14",
    "run_power_loss_case",
    "run_rate_case",
    "run_secure_fraction_sweep",
    "run_tail_latency_study",
    "run_timeplot_study",
    "run_torture",
    "run_traced_study",
    "run_versioning_study",
    "run_workload_on_variant",
    "stale_secured_exposures",
    "summarize_overheads",
    "torture_requests",
    "write_bench_json",
    "write_trace_files",
]
