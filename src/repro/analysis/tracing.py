"""Traced simulation runs -- ``repro trace`` / ``--trace-out``.

Glue between the closed-loop engine and the :mod:`repro.telemetry`
exporters: run one workload on each requested variant with a fresh
:class:`~repro.telemetry.Telemetry` session attached, then merge the
per-variant event streams into one Chrome-trace-event file (one trace
*process* per variant, so Perfetto shows the variants side by side on
the same simulated time axis).

File I/O and path handling live here, outside :mod:`repro.telemetry`
itself, mirroring how :mod:`repro.analysis.bench_engine` keeps
wall-clock timing out of :mod:`repro.sim`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.latency import policy_for_variant
from repro.analysis.tables import render_table
from repro.sim.arrivals import ArrivalProcess, ClosedLoopArrivals
from repro.sim.policies import policy_by_name
from repro.sim.runner import SimResult, simulate_workload
from repro.ssd.config import SSDConfig
from repro.telemetry import Telemetry
from repro.telemetry.export import to_jsonl, trace_header, write_chrome_trace


@dataclass
class TracedRun:
    """One simulated variant plus the telemetry it recorded."""

    sim: SimResult
    telemetry: Telemetry
    #: run-identity fields carried into the export headers (workload,
    #: variant, seed, geometry) so a trace file is self-describing
    #: evidence for the audit layer.
    meta: dict[str, object] | None = None

    def header(self) -> dict[str, object]:
        """Evidence-disclosure header for this run's event stream."""
        return trace_header(self.telemetry.bus, **(self.meta or {}))


def run_traced_study(
    config: SSDConfig,
    workload: str,
    variants: tuple[str, ...],
    seed: int = 1,
    write_multiplier: float = 1.0,
    policy: str = "auto",
    arrivals: ArrivalProcess | None = None,
    capacity: int = 65536,
    sample: dict[str, int] | None = None,
    checked: bool | None = None,
    check_interval: int | None = None,
) -> dict[str, TracedRun]:
    """Run each variant with its own telemetry session, same block trace.

    ``policy="auto"`` picks each variant's honest best (the tail-latency
    study's convention); anything else is resolved by name and applied
    uniformly.  The returned mapping preserves ``variants`` order.
    """
    out: dict[str, TracedRun] = {}
    for variant in variants:
        telemetry = Telemetry(capacity=capacity, sample=sample)
        sim = simulate_workload(
            config,
            workload,
            variant,
            seed=seed,
            write_multiplier=write_multiplier,
            policy=(
                policy_for_variant(variant)
                if policy == "auto"
                else policy_by_name(policy)
            ),
            arrivals=arrivals if arrivals is not None else ClosedLoopArrivals(32),
            checked=checked,
            check_interval=check_interval,
            telemetry=telemetry,
        )
        out[variant] = TracedRun(
            sim=sim,
            telemetry=telemetry,
            meta={
                "workload": workload,
                "variant": variant,
                "seed": seed,
                "pages_per_block": config.geometry.pages_per_block,
                # per-method pulse latencies: what the audit layer adds
                # onto timestamp deltas when deriving exposure windows
                # from this file offline (key deletion is a RAM update).
                "sanitize_latency_us": {
                    "plock": config.t_plock_us,
                    "block_lock": config.t_block_lock_us,
                    "erase": config.t_erase_us,
                    "scrub": config.t_scrub_us,
                    "key_delete": 0.0,
                },
            },
        )
    return out


def write_trace_files(
    runs: dict[str, TracedRun],
    out: str | Path,
    jsonl: str | Path | None = None,
) -> list[Path]:
    """Export a study: one merged Chrome trace, optional per-variant JSONL.

    The Chrome trace holds every variant as its own process.  JSONL has
    no process axis, so with several variants each gets its own file
    (``trace.secSSD.jsonl`` next to the requested path); a single
    variant writes exactly the requested path.
    """
    written: list[Path] = []
    target = Path(out)
    headers = {name: run.header() for name, run in runs.items()}
    write_chrome_trace(
        target,
        {name: run.telemetry.bus.events for name, run in runs.items()},
        headers=headers,
    )
    written.append(target)
    if jsonl is not None:
        base = Path(jsonl)
        for name, run in runs.items():
            path = (
                base
                if len(runs) == 1
                else base.with_name(f"{base.stem}.{name}{base.suffix}")
            )
            path.write_text(
                to_jsonl(run.telemetry.bus.events, header=headers[name])
            )
            written.append(path)
    return written


def format_trace_summary(runs: dict[str, TracedRun]) -> str:
    """Per-variant retention/volume table for the CLI."""
    rows = []
    for name, run in runs.items():
        stats = run.telemetry.bus.stats()
        published: dict[str, int] = stats["published"]  # type: ignore[assignment]
        top = sorted(published.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        rows.append(
            [
                name,
                str(sum(published.values())),
                str(stats["retained"]),
                str(stats["dropped"]),
                str(stats["sampled_out"]),
                ", ".join(f"{cat}={n}" for cat, n in top),
            ]
        )
    return render_table(
        ["variant", "published", "retained", "dropped", "sampled", "top categories"],
        rows,
        title="Telemetry event streams",
    )


def parse_sample_spec(spec: list[str] | None) -> dict[str, int] | None:
    """``["ftl.page=8", "sim.service=4"]`` -> category stride mapping."""
    if not spec:
        return None
    out: dict[str, int] = {}
    for item in spec:
        cat, sep, stride = item.partition("=")
        if not sep or not cat:
            raise ValueError(f"bad sample spec {item!r} (want category=N)")
        out[cat] = int(stride)
    return out


def trace_payload_summary(path: str | Path) -> dict[str, object]:
    """Cheap post-write stats of a Chrome trace file (for smoke checks)."""
    payload = json.loads(Path(path).read_text())
    events = payload["traceEvents"]
    return {
        "n_events": len(events),
        "n_processes": len(
            {e["pid"] for e in events if e.get("ph") != "M"}
        ),
        "phases": sorted({e["ph"] for e in events}),
    }
