"""Tail-latency study: the closed-loop companion to Figure 14.

Average IOPS (Figure 14a) understates the user-visible difference
between the sanitization techniques: one erSSD deallocation puts a
3.5-ms erase train on the critical path, which throughput amortizes but
a p99 cannot hide.  This study replays the identical captured block
trace through the :mod:`repro.sim` queueing engine on every variant and
reports end-to-end host-read percentiles.

Each variant runs under its *honest best* scheduling policy:

* ``baseline`` / ``erSSD`` / ``scrSSD`` -- ``read_priority``.  Their
  sanitization work (immediate erasure, overwrite scrubbing) is on the
  deallocation critical path by design; suspending or deferring it
  would reopen the very exposure window the technique exists to close.
* ``secSSD`` variants -- ``defer``: lock-pulse deferral plus
  erase/program suspension, both safe because sanitization happens at
  invalidation time via pLock/bLock and GC erasure is pure space
  reclamation (see :mod:`repro.sim.policies`).

Run with ``checked=True`` (the default here) the runtime sanitizer
probes every sanitized page for real unreadability *while* deferral is
active -- the study asserts the paper's latency win without weakening
its security claim.
"""

from __future__ import annotations

from repro.sim.arrivals import ArrivalProcess, ClosedLoopArrivals
from repro.sim.policies import DeferLocksPolicy, ReadPriorityPolicy, SchedulingPolicy
from repro.sim.runner import SimResult, simulate_workload
from repro.ssd.config import SSDConfig
from repro.telemetry.histogram import PERCENTILES

from repro.analysis.tables import render_table


def _percentile_header(label: str) -> str:
    """``"p999_us"`` -> ``"p99.9 (us)"`` (column titles from the shared
    :data:`~repro.telemetry.histogram.PERCENTILES` list)."""
    stem = label.removesuffix("_us")
    if len(stem) > 3:  # p999 -> p99.9
        stem = f"{stem[:3]}.{stem[3:]}"
    return f"{stem} (us)"

#: variants compared by the default study, in display order.
TAIL_LATENCY_VARIANTS = ("baseline", "erSSD", "scrSSD", "secSSD")


def policy_for_variant(variant: str) -> SchedulingPolicy:
    """The honest best scheduling policy for one FTL variant."""
    if variant.startswith("secSSD"):
        return DeferLocksPolicy(max_pending=8)
    return ReadPriorityPolicy()


def run_tail_latency_study(
    config: SSDConfig,
    workload: str = "MailServer",
    variants: tuple[str, ...] = TAIL_LATENCY_VARIANTS,
    seed: int = 1,
    write_multiplier: float = 1.0,
    arrivals: ArrivalProcess | None = None,
    checked: bool | None = True,
    check_interval: int | None = 50,
) -> dict[str, SimResult]:
    """Closed-loop tail-latency comparison across SSD variants.

    Every variant sees the identical captured block trace; the returned
    mapping preserves ``variants`` order.  ``arrivals`` defaults to a
    closed loop at queue depth 32.
    """
    out: dict[str, SimResult] = {}
    for variant in variants:
        out[variant] = simulate_workload(
            config,
            workload,
            variant,
            seed=seed,
            write_multiplier=write_multiplier,
            policy=policy_for_variant(variant),
            arrivals=arrivals if arrivals is not None else ClosedLoopArrivals(32),
            checked=checked,
            check_interval=check_interval,
        )
    return out


def format_tail_latency(results: dict[str, SimResult]) -> str:
    """Render the study as a table of host-read latency percentiles."""
    rows = []
    for variant, sim in results.items():
        reads = sim.report.latency["read"]
        rows.append(
            [
                variant,
                sim.policy["name"],
                *(f"{reads[label]:.0f}" for label, _ in PERCENTILES),
                f"{reads['max_us'] / 1000:.2f} ms",
                str(sim.report.deferred_lock_pulses),
                str(sim.report.suspensions),
            ]
        )
    workload = next(iter(results.values())).workload if results else "?"
    return render_table(
        [
            "variant",
            "policy",
            *(_percentile_header(label) for label, _ in PERCENTILES),
            "max",
            "deferred",
            "suspends",
        ],
        rows,
        title=f"Host-read latency under closed-loop queueing ({workload})",
    )
