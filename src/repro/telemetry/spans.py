"""Span tracing for macro-phases (GC, lock batches, storms, recovery).

A span covers a phase of FTL work with a start and an end on the
simulated clock; nested spans (a secSSD lock batch inside the GC
invocation that triggered it) record their ``depth`` so exporters and
tests can reconstruct the parent/child tree even when the underlying
clock did not advance between them (the engine's functional dispatch
executes FTL work at one instant, so FTL-side spans there are
zero-duration markers with intact nesting).

The disabled path is allocation-free: :data:`NULL_SPAN` is one shared
no-op context manager returned for every ``span()`` call on a
:class:`NullTracer`.
"""

from __future__ import annotations

from repro.telemetry.events import TraceBus


class _NullSpan:
    """Shared no-op context manager for disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


#: the singleton every disabled ``span()`` call returns.
NULL_SPAN = _NullSpan()


class _Span:
    """One live span; emits its ``"X"`` event when the block exits."""

    __slots__ = ("tracer", "name", "cat", "tid", "args", "start_us", "depth")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        tid: str,
        args: dict[str, object],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.args = args
        self.start_us = 0.0
        self.depth = 0

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        self.start_us = tracer.bus.now_us()
        self.depth = len(tracer._stack)
        tracer._stack.append(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        tracer = self.tracer
        popped = tracer._stack.pop()
        assert popped is self, "span exit out of order"
        args = dict(self.args)
        args["depth"] = self.depth
        tracer.bus.complete(
            self.cat,
            self.name,
            ts_us=self.start_us,
            dur_us=tracer.bus.now_us() - self.start_us,
            tid=self.tid,
            args=args,
        )


class Tracer:
    """Factory for nested spans over one :class:`TraceBus`."""

    def __init__(self, bus: TraceBus) -> None:
        self.bus = bus
        self._stack: list[_Span] = []

    def span(
        self, name: str, cat: str, tid: str = "ftl", **args: object
    ) -> _Span:
        """Open a span; use as ``with tracer.span("gc", cat="ftl.gc"):``."""
        return _Span(self, name, cat, tid, dict(args))

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span)."""
        return len(self._stack)


class NullTracer:
    """Tracer stand-in on the disabled singleton: all spans are no-ops."""

    def span(self, name: str, cat: str, tid: str = "ftl", **args: object) -> _NullSpan:
        return NULL_SPAN

    @property
    def depth(self) -> int:
        return 0
