"""The metrics registry: counters, gauges, and streaming histograms.

Where the event bus answers "what happened at t=4.2ms on chip 3", the
registry answers "how much, overall": named counters (monotonic),
gauges (last value), and :class:`~repro.telemetry.histogram.
FixedBucketHistogram` distributions, all snapshotted into a JSON-ready
dict at the end of a run (``RunResult.telemetry``).  Metric objects are
get-or-create by name so call sites stay one-liners; snapshots sort by
name for byte-identical reports.
"""

from __future__ import annotations

from repro.telemetry.histogram import DEFAULT_BOUNDS_US, FixedBucketHistogram


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """Last-written level (queue depth, reserve blocks, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class MetricsRegistry:
    """Named metric store with get-or-create accessors."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, FixedBucketHistogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS_US
    ) -> FixedBucketHistogram:
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = FixedBucketHistogram(bounds)
        return found

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """All metrics as one sorted, JSON-ready dict."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }
