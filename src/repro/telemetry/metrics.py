"""The metrics registry: counters, gauges, and streaming histograms.

Where the event bus answers "what happened at t=4.2ms on chip 3", the
registry answers "how much, overall": named counters (monotonic),
gauges (last value), and :class:`~repro.telemetry.histogram.
FixedBucketHistogram` distributions, all snapshotted into a JSON-ready
dict at the end of a run (``RunResult.telemetry``).  Metric objects are
get-or-create by name so call sites stay one-liners; snapshots sort by
name for byte-identical reports.
"""

from __future__ import annotations

from repro.telemetry.histogram import DEFAULT_BOUNDS_US, FixedBucketHistogram


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """Last-written level (queue depth, reserve blocks, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class MetricsRegistry:
    """Named metric store with get-or-create accessors."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, FixedBucketHistogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS_US
    ) -> FixedBucketHistogram:
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = FixedBucketHistogram(bounds)
        return found

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """Checkpoint payload (see :mod:`repro.checkpoint`).

        Histograms serialize their full internals (bounds + bucket
        counts + exact aggregates), not the quantized snapshot, so a
        restored registry keeps observing into the same buckets.
        """
        return {
            "counters": {name: c.value for name, c in self._counters.items()},
            "gauges": {name: g.value for name, g in self._gauges.items()},
            "histograms": {
                name: {
                    "bounds": h.bounds,
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for name, h in self._histograms.items()
            },
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        for name, value in state["counters"].items():
            self.counter(name).value = value
        for name, value in state["gauges"].items():
            self.gauge(name).value = value
        for name, payload in state["histograms"].items():
            hist = self.histogram(name, bounds=payload["bounds"])
            hist.counts = list(payload["counts"])
            hist.count = payload["count"]
            hist.total = payload["total"]
            hist.min = payload["min"]
            hist.max = payload["max"]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """All metrics as one sorted, JSON-ready dict."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }
