"""Shared percentile math and fixed-bucket histograms.

One nearest-rank implementation serves every consumer -- the work log
(:mod:`repro.ssd.worklog`), the engine's latency recorder
(:mod:`repro.sim.metrics`), and the tail-latency tables
(:mod:`repro.analysis.latency`) -- so a percentile means the same thing
in every report.  Nearest-rank is deliberate: it is deterministic, has
no interpolation ambiguity across platforms, and returns an actually
observed sample, all of which the byte-identical-report guarantee
depends on.

:class:`FixedBucketHistogram` is the streaming companion for the metrics
registry: O(1) memory regardless of sample count, with percentile
*estimates* quantized to fixed bucket upper bounds.  Exact count, sum,
min, and max are kept alongside, so rates and means stay exact.
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil

#: the percentiles every latency/work summary reports, in report order.
PERCENTILES: tuple[tuple[str, float], ...] = (
    ("p50_us", 50.0),
    ("p95_us", 95.0),
    ("p99_us", 99.0),
    ("p999_us", 99.9),
)

#: default bucket upper bounds (microseconds), log-spaced to cover one
#: flash read (~50 us) through a multi-erase relocation storm (~1 s).
DEFAULT_BOUNDS_US: tuple[float, ...] = (
    10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0,
    100_000.0, 200_000.0, 500_000.0, 1_000_000.0,
)


def percentile(sorted_data: list[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted data (0 for empty).

    Canonical nearest rank: ``ceil(q/100 * N) - 1`` (0-indexed), clamped
    to the valid range.  The old ``round()``-based rank used banker's
    rounding on ``q/100 * (N-1)``, which is non-canonical and
    non-monotonic in the sample count (p50 of 4 samples picked the
    *upper* neighbor, p50 of 6 the lower).  The ceil rule is the
    textbook definition: the smallest sample with at least ``q`` percent
    of the data at or below it.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    n = len(sorted_data)
    if not n:
        return 0.0
    rank = max(0, min(n - 1, ceil(q / 100.0 * n) - 1))
    return sorted_data[rank]


def summarize(data: list[float]) -> dict[str, float]:
    """count/mean/min/:data:`PERCENTILES`/max of unsorted samples.

    Same key set as :meth:`FixedBucketHistogram.snapshot`, with the same
    empty-input semantics: when ``count`` is 0 every other field reads
    0.0 and carries no information -- consumers must gate on ``count``
    (a real 0 us minimum is distinguishable only that way).
    """
    ordered = sorted(data)
    out: dict[str, float] = {
        "count": float(len(ordered)),
        "mean_us": (sum(ordered) / len(ordered)) if ordered else 0.0,
        "min_us": ordered[0] if ordered else 0.0,
    }
    for label, q in PERCENTILES:
        out[label] = percentile(ordered, q)
    out["max_us"] = ordered[-1] if ordered else 0.0
    return out


class FixedBucketHistogram:
    """Streaming histogram over fixed bucket upper bounds.

    ``observe`` is O(log buckets); memory is O(buckets) forever.  A
    percentile query answers with the upper bound of the bucket holding
    the nearest-rank sample (the overflow bucket answers with the exact
    observed maximum, so tails are never silently truncated).
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS_US) -> None:
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bounds must be strictly increasing")
        self.bounds = tuple(float(b) for b in bounds)
        #: one count per bound plus the overflow bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        if value < 0.0:
            raise ValueError("histogram samples must be non-negative")
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1
        self.total += value
        self.counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank estimate: the matched bucket's upper bound.

        The estimate is clamped to the exact observed maximum, so it can
        never exceed ``max`` (a lone 5.0 us sample answers 5.0, not its
        bucket's 10.0 bound); the overflow bucket answers the exact
        maximum directly.  Tails are therefore never over- *or*
        under-reported past the true extremes.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(0, min(self.count - 1, ceil(q / 100.0 * self.count) - 1))
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if rank < seen:
                if i >= len(self.bounds):
                    return self.max
                return min(self.bounds[i], self.max)
        raise AssertionError("unreachable")  # pragma: no cover

    def snapshot(self) -> dict[str, float]:
        """JSON-ready summary (exact count/mean/min/max, bucketed tails).

        Same key set and empty-input semantics as :func:`summarize`:
        ``count`` is always present, and when it is 0 every other field
        reads 0.0 and is meaningless -- gate on ``count``.
        """
        out: dict[str, float] = {
            "count": float(self.count),
            "mean_us": self.mean,
            "min_us": self.min,
        }
        for label, q in PERCENTILES:
            out[label] = self.percentile(q)
        out["max_us"] = self.max
        return out
