"""Observer bridge: FTL callbacks -> trace events + metrics.

The FTLs already publish every page-level transition through the
:class:`~repro.ftl.observer.FtlObserver` protocol; telemetry taps that
existing seam instead of sprinkling emit calls through FTL internals.
When a run is traced, :class:`repro.ssd.device.SSD` chains one
:class:`TelemetryObserver` in front of the caller's observer (and the
runtime sanitizer, when attached, chains in front of both), so the
bridge sees the same event stream every auditor sees.

When telemetry is disabled the bridge is simply never constructed --
the FTL keeps its original observer and the hot path pays nothing.
"""

from __future__ import annotations

from repro.ftl.observer import FtlObserver, NullObserver, notify_optional
from repro.telemetry import Telemetry


class TelemetryObserver:
    """Publishes FTL observer events onto a telemetry session."""

    def __init__(
        self, telemetry: Telemetry, inner: FtlObserver | None = None
    ) -> None:
        self.telemetry = telemetry
        self.inner: FtlObserver = inner or NullObserver()
        self._bus = telemetry.bus
        self._metrics = telemetry.metrics

    # ------------------------------------------------------------------
    def on_program(self, gppa: int, lpa: int, tag: object, secure: bool) -> None:
        self.inner.on_program(gppa, lpa, tag, secure)
        self._metrics.counter("ftl.programs").inc()
        self._bus.instant(
            "ftl.page",
            "program",
            args={"gppa": gppa, "lpa": lpa, "secure": secure},
        )

    def on_invalidate(self, gppa: int, lpa: int, reason: str) -> None:
        self.inner.on_invalidate(gppa, lpa, reason)
        self._metrics.counter("ftl.invalidations").inc()
        self._bus.instant(
            "ftl.page",
            "invalidate",
            args={"gppa": gppa, "lpa": lpa, "reason": reason},
        )

    def on_sanitize(self, gppa: int, method: str) -> None:
        self.inner.on_sanitize(gppa, method)
        self._metrics.counter(f"ftl.sanitized.{method}").inc()
        self._bus.instant(
            "ftl.sanitize", "sanitize", args={"gppa": gppa, "method": method}
        )

    def on_erase(self, global_block: int) -> None:
        self.inner.on_erase(global_block)
        self._metrics.counter("ftl.erases").inc()
        self._bus.instant("ftl.flash", "erase", args={"block": global_block})

    def on_logical_tick(self, ticks: int) -> None:
        self.inner.on_logical_tick(ticks)
        self._metrics.counter("ftl.logical_ticks").inc(ticks)

    def on_lock_deferred(self, chip_id: int, n_locks: int, deferred_us: float) -> None:
        # the engine emits the drain *span*; the bridge only aggregates
        # and forwards (the inner observer may predate this callback).
        notify_optional(self.inner, "on_lock_deferred", chip_id, n_locks, deferred_us)
        self._metrics.counter("sim.lock_drains").inc()
        self._metrics.counter("sim.deferred_lock_pulses").inc(n_locks)
