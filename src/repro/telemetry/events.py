"""The structured trace-event bus.

Every layer publishes :class:`TraceEvent` records into one
:class:`TraceBus` per run: the FTLs through the observer bridge
(:mod:`repro.telemetry.bridge`), the fault injector directly, the
macro-phase spans through :mod:`repro.telemetry.spans`, and the
discrete-event engine from its completion handlers.  Timestamps are
*simulated* microseconds read from a pluggable ``clock`` callable --
the open-loop occupancy clock (``TimingModel.elapsed_us``) by default,
overridden with the event-heap clock when the :mod:`repro.sim` engine
drives the run -- never the wall clock (rule SIM07 applies in spirit
here too: a trace must be byte-identical for the same seed).

Memory is bounded two ways:

* **ring-buffer retention** -- the bus keeps the newest ``capacity``
  events and counts what it evicted in :attr:`TraceBus.dropped`;
* **category sampling** -- ``sample={"sim.service": 10}`` keeps every
  10th event of that category (the first of each stride is kept, so a
  sampled stream is a deterministic subsequence of the full one).

Per-category totals in :attr:`TraceBus.category_counts` always count
*published* events, before sampling or eviction, so a snapshot can
report exactly how much was observed vs retained.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Mapping


class TraceEvent:
    """One structured trace record (Chrome trace-event friendly).

    ``ph`` follows the Chrome trace-event phase vocabulary: ``"i"`` for
    instants, ``"X"`` for complete (duration) events.  ``tid`` names the
    simulated thread of activity (``"ftl"``, ``"host"``, ``"chip3"``,
    ``"chan1"``); exporters map it to integer thread ids.
    """

    __slots__ = ("name", "cat", "ph", "ts_us", "dur_us", "tid", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        ts_us: float,
        dur_us: float = 0.0,
        tid: str = "ftl",
        args: dict[str, object] | None = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts_us = ts_us
        self.dur_us = dur_us
        self.tid = tid
        self.args = args or {}

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts_us": self.ts_us,
            "tid": self.tid,
            "args": self.args,
        }
        if self.ph == "X":
            out["dur_us"] = self.dur_us
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent({self.name!r}, cat={self.cat!r}, ph={self.ph!r}, "
            f"ts={self.ts_us}, tid={self.tid!r})"
        )


class TraceBus:
    """Bounded, sampled sink for :class:`TraceEvent` records."""

    def __init__(
        self,
        capacity: int = 65536,
        sample: Mapping[str, int] | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        for cat, n in (sample or {}).items():
            if n < 1:
                raise ValueError(f"sample stride for {cat!r} must be >= 1: {n}")
        self.capacity = capacity
        self.sample: dict[str, int] = dict(sample or {})
        #: simulated-time source; ``None`` reads as t=0 (pre-wiring).
        self.clock = clock
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.sampled_out = 0
        self.category_counts: dict[str, int] = {}
        #: constant-time kill switch: while False, ``instant``/``complete``
        #: return immediately -- no event construction, no counting, no
        #: clock read.  Flip it back on to resume publishing; the pause
        #: is invisible to retention accounting (nothing was published).
        self.enabled = True

    # ------------------------------------------------------------------
    def now_us(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def _admit(self, cat: str) -> bool:
        counts = self.category_counts
        seen = counts.get(cat, 0)
        counts[cat] = seen + 1
        if not self.sample:
            # the common unsampled bus: one dict get + set, no stride math
            return True
        stride = self.sample.get(cat, 1)
        if stride > 1 and seen % stride != 0:
            self.sampled_out += 1
            return False
        return True

    def _push(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    # ------------------------------------------------------------------
    def instant(
        self,
        cat: str,
        name: str,
        tid: str = "ftl",
        args: dict[str, object] | None = None,
    ) -> None:
        """Publish a point-in-time event at the current simulated time."""
        if not self.enabled:
            return
        if self._admit(cat):
            self._push(TraceEvent(name, cat, "i", self.now_us(), tid=tid, args=args))

    def complete(
        self,
        cat: str,
        name: str,
        ts_us: float,
        dur_us: float,
        tid: str = "ftl",
        args: dict[str, object] | None = None,
    ) -> None:
        """Publish a duration event covering ``[ts_us, ts_us + dur_us]``."""
        if not self.enabled:
            return
        if self._admit(cat):
            self._push(
                TraceEvent(name, cat, "X", ts_us, dur_us=dur_us, tid=tid, args=args)
            )

    # ------------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def stats(self) -> dict[str, object]:
        """JSON-ready retention accounting for run snapshots."""
        return {
            "capacity": self.capacity,
            "retained": len(self._events),
            "dropped": self.dropped,
            "sampled_out": self.sampled_out,
            "published": dict(sorted(self.category_counts.items())),
        }

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """Checkpoint payload: accounting *and* the retained ring.

        The retained events must round-trip -- a resumed run's final
        trace export and ``stats()["retained"]`` have to match an
        uninterrupted run's byte for byte.
        """
        return {
            "dropped": self.dropped,
            "sampled_out": self.sampled_out,
            "category_counts": dict(self.category_counts),
            "events": [
                [e.name, e.cat, e.ph, e.ts_us, e.dur_us, e.tid, dict(e.args)]
                for e in self._events
            ],
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.dropped = state["dropped"]
        self.sampled_out = state["sampled_out"]
        self.category_counts = dict(state["category_counts"])
        self._events = deque(
            (
                TraceEvent(name, cat, ph, ts_us, dur_us=dur_us, tid=tid, args=args)
                for name, cat, ph, ts_us, dur_us, tid, args in state["events"]
            ),
            maxlen=self.capacity,
        )
