"""Trace exporters: JSONL and Chrome trace-event JSON (Perfetto).

Two output shapes for the same event stream:

* **JSONL** -- one compact, sorted-key JSON object per line, in
  publication order.  This is the diff-friendly archival format: for a
  fixed seed the bytes are identical run to run, which the golden-file
  and determinism tests assert directly.
* **Chrome trace-event JSON** -- the ``{"traceEvents": [...]}`` format
  loadable in Perfetto / ``chrome://tracing``.  Each simulated run
  becomes one *process* (so ``repro trace`` merges variants side by
  side), and each simulated thread of activity (``host``, ``ftl``,
  ``chip0``.., ``chan0``..) becomes one *thread*, named via ``"M"``
  metadata records.  Timestamps pass through unscaled: simulated
  microseconds are exactly the ``ts`` unit the format expects.

Both shapes carry an **evidence disclosure**: the bus's retention
accounting (events dropped to ring-buffer capacity, events sampled out
by category strides) rides along as a JSONL *header line* /
Chrome-trace ``metadata`` entry, so a downstream consumer -- the
``repro.audit`` trace-replay verifier above all -- can tell a complete
event record from a lossy one instead of silently treating a truncated
stream as the whole truth.

:func:`validate_chrome_trace` is the schema check CI and the tests run
over every emitted file -- catching a malformed field here beats
debugging a silently empty Perfetto UI.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.telemetry.events import TraceBus, TraceEvent

#: key of the JSONL header line and the Chrome-trace metadata entry.
HEADER_KEY = "repro_trace"

#: format tag embedded in every header (bump on layout change).
HEADER_FORMAT = "repro-trace-jsonl/1"


def trace_header(bus: TraceBus, **run_meta: object) -> dict[str, object]:
    """Evidence-disclosure header for one bus's event stream.

    Carries the retention accounting the audit layer needs to decide
    whether the stream is complete evidence: per-category published
    counts (pre-sampling, pre-eviction), the drop and sample counters,
    and the configured sample strides.  ``run_meta`` adds run identity
    (workload/variant/seed/geometry) when the writer knows it.
    """
    stats = bus.stats()
    header: dict[str, object] = {
        "format": HEADER_FORMAT,
        "capacity": stats["capacity"],
        "retained": stats["retained"],
        "dropped_events": stats["dropped"],
        "sampled_out": stats["sampled_out"],
        "sample_strides": dict(sorted(bus.sample.items())),
        "published": stats["published"],
    }
    for key, value in sorted(run_meta.items()):
        header[key] = value
    return header


def to_jsonl(
    events: Sequence[TraceEvent],
    header: Mapping[str, object] | None = None,
) -> str:
    """Serialize events as deterministic JSON lines (trailing newline).

    With ``header`` the first line is ``{"repro_trace": {...}}`` -- the
    evidence-disclosure record of :func:`trace_header`.  Event lines
    never have a ``repro_trace`` key, so readers can distinguish the
    two without positional guessing.
    """
    lines = []
    if header is not None:
        lines.append(
            json.dumps(
                {HEADER_KEY: dict(header)},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    lines.extend(
        json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
        for event in events
    )
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(
    path: str | Path,
    events: Sequence[TraceEvent],
    header: Mapping[str, object] | None = None,
) -> Path:
    target = Path(path)
    target.write_text(to_jsonl(events, header=header), encoding="utf-8")
    return target


def read_jsonl(
    path: str | Path,
) -> tuple[dict[str, object] | None, list[TraceEvent]]:
    """Parse a JSONL trace back into ``(header, events)``.

    The inverse of :func:`write_jsonl`: the optional first-line header
    comes back as a plain dict (``None`` for headerless legacy files),
    and every event line is rebuilt into a :class:`TraceEvent`.  Raises
    ``ValueError`` on a line that is neither -- a trace that does not
    parse must fail loudly, not silently audit as empty.
    """
    header: dict[str, object] | None = None
    events: list[TraceEvent] = []
    for lineno, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{lineno}: not a JSON object")
        if HEADER_KEY in record:
            if lineno != 1 or header is not None:
                raise ValueError(
                    f"{path}:{lineno}: stray {HEADER_KEY!r} header record"
                )
            header = record[HEADER_KEY]
            continue
        try:
            events.append(
                TraceEvent(
                    record["name"],
                    record["cat"],
                    record["ph"],
                    record["ts_us"],
                    dur_us=record.get("dur_us", 0.0),
                    tid=record["tid"],
                    args=record.get("args") or {},
                )
            )
        except KeyError as exc:
            raise ValueError(
                f"{path}:{lineno}: event record missing field {exc}"
            ) from exc
    return header, events


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------
def chrome_trace(
    processes: Mapping[str, Sequence[TraceEvent]],
    headers: Mapping[str, Mapping[str, object]] | None = None,
) -> dict[str, object]:
    """Merge per-run event streams into one Chrome trace-event payload.

    ``processes`` maps a display name (typically the variant) to its
    events; each gets its own ``pid`` in insertion order.  String thread
    names map to integer ``tid``s (sorted for determinism) with
    ``thread_name`` metadata alongside, so Perfetto shows ``chip0`` /
    ``chan1`` / ``host`` rows instead of bare numbers.

    ``headers`` (per-process evidence disclosures from
    :func:`trace_header`) ride along as ``"M"`` metadata records named
    :data:`HEADER_KEY`, so a merged trace discloses drops and sample
    strides with the same fidelity as the JSONL stream.
    """
    trace_events: list[dict[str, object]] = []
    for pid, (process, events) in enumerate(processes.items(), start=1):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
        if headers is not None and process in headers:
            trace_events.append(
                {
                    "name": HEADER_KEY,
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": dict(headers[process]),
                }
            )
        tids = sorted({event.tid for event in events})
        tid_of = {name: i for i, name in enumerate(tids, start=1)}
        for name, tid in tid_of.items():
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        for event in events:
            record: dict[str, object] = {
                "name": event.name,
                "cat": event.cat,
                "ph": event.ph,
                "ts": event.ts_us,
                "pid": pid,
                "tid": tid_of[event.tid],
                "args": event.args,
            }
            if event.ph == "X":
                record["dur"] = event.dur_us
            elif event.ph == "i":
                record["s"] = "t"  # instant scoped to its thread
            trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path,
    processes: Mapping[str, Sequence[TraceEvent]],
    headers: Mapping[str, Mapping[str, object]] | None = None,
) -> Path:
    """Write a merged Chrome trace; refuses to emit an invalid payload."""
    payload = chrome_trace(processes, headers=headers)
    errors = validate_chrome_trace(payload)
    if errors:  # pragma: no cover - guarded by construction
        raise ValueError(f"refusing to write invalid trace: {errors[:3]}")
    target = Path(path)
    target.write_text(
        json.dumps(payload, sort_keys=True, indent=1) + "\n", encoding="utf-8"
    )
    return target


#: phases this exporter emits (subset of the full trace-event vocabulary).
_KNOWN_PHASES = frozenset({"X", "i", "M", "C", "B", "E"})


def validate_chrome_trace(payload: object) -> list[str]:
    """Schema-check a Chrome trace payload; returns human-readable errors.

    Checks the fields Perfetto and ``chrome://tracing`` actually key on:
    the ``traceEvents`` array, and per event the ``ph``/``pid``/``tid``/
    ``name`` fields, a numeric ``ts`` on all non-metadata events, a
    numeric non-negative ``dur`` on complete events, and a ``cat`` on
    everything that is not metadata.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            errors.append(f"{where}: bad or missing ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: missing integer {key!r}")
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        if ph == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        if not isinstance(event.get("cat"), str):
            errors.append(f"{where}: missing string 'cat'")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event needs 'dur' >= 0")
    return errors
