"""Unified telemetry: event bus, metrics registry, spans, exporters.

One :class:`Telemetry` session rides along with one SSD run and bundles
the three instruments every layer publishes into:

* :attr:`Telemetry.bus` -- the structured :class:`~repro.telemetry.
  events.TraceBus` (ring-buffered, category-sampled trace events on the
  simulated clock);
* :attr:`Telemetry.metrics` -- the :class:`~repro.telemetry.metrics.
  MetricsRegistry` (counters/gauges/fixed-bucket histograms);
* :attr:`Telemetry.tracer` -- the :class:`~repro.telemetry.spans.
  Tracer` for nested macro-phase spans (GC, lock batches, relocation
  storms, recovery scans).

**Zero cost when disabled** is the design contract: the module-level
:data:`DISABLED` singleton reports ``enabled=False``, carries no bus or
registry, and hands out one shared no-op span.  Emitters either hold a
reference to :data:`DISABLED` (FTL spans -- a handful per GC round) or
are simply not installed at all (the observer bridge, the engine's
per-segment hooks), so the per-operation hot path of an untraced run
is byte-for-byte the code that ran before telemetry existed.

Wiring: pass ``Telemetry()`` as the ``telemetry=`` argument of
:class:`repro.ssd.device.SSD` / :func:`repro.sim.runner.
simulate_workload`, then export ``tel.bus.events`` via
:mod:`repro.telemetry.export`.  The ``repro trace`` subcommand and the
``--trace-out`` flags of ``repro simulate`` / ``repro torture`` do all
of that in one step.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.telemetry.events import TraceBus, TraceEvent
from repro.telemetry.histogram import (
    DEFAULT_BOUNDS_US,
    PERCENTILES,
    FixedBucketHistogram,
    percentile,
    summarize,
)
from repro.telemetry.metrics import Counter, Gauge, MetricsRegistry
from repro.telemetry.spans import NULL_SPAN, NullTracer, Tracer


class Telemetry:
    """One run's telemetry session (enabled unless told otherwise)."""

    enabled = True

    def __init__(
        self,
        capacity: int = 65536,
        sample: Mapping[str, int] | None = None,
    ) -> None:
        self.bus = TraceBus(capacity=capacity, sample=sample)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.bus)

    def snapshot(self) -> dict[str, object]:
        """Metrics plus bus retention accounting, JSON-ready."""
        out = self.metrics.snapshot()
        out["trace"] = self.bus.stats()
        return out

    def state_dict(self) -> dict[str, object]:
        """Checkpoint payload (see :mod:`repro.checkpoint`)."""
        return {
            "metrics": self.metrics.state_dict(),
            "bus": self.bus.state_dict(),
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.metrics.load_state_dict(state["metrics"])
        self.bus.load_state_dict(state["bus"])


class _DisabledTelemetry:
    """The no-op singleton; every untraced run shares this instance."""

    enabled = False
    bus = None
    metrics = None

    def __init__(self) -> None:
        self.tracer = NullTracer()

    def snapshot(self) -> dict[str, object]:
        return {}


#: process-wide disabled session: referenced, never mutated.
DISABLED = _DisabledTelemetry()

#: what emitters hold: a real session or the disabled singleton.
AnyTelemetry = Telemetry | _DisabledTelemetry

__all__ = [
    "AnyTelemetry",
    "Counter",
    "DEFAULT_BOUNDS_US",
    "DISABLED",
    "FixedBucketHistogram",
    "Gauge",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullTracer",
    "PERCENTILES",
    "Telemetry",
    "TraceBus",
    "TraceEvent",
    "Tracer",
    "percentile",
    "summarize",
]
