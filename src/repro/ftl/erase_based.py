"""erSSD: erase-based immediate sanitization -- Sections 4 and 7.

When a secured page is invalidated, erSSD sanitizes it the only way a
standard flash chip can: it relocates every live page out of the block
containing the stale copy and erases the whole block immediately.  Per
the paper's footnote 15, erSSD is assumed free of the open-interval
reliability problem (it exists to quantify the *performance* cost of
erase-based sanitization), so its GC also erases victims eagerly.

The relocation storms dominate everything: the paper measures WAF up to
320x and IOPS below 4 % of the baseline.
"""

from __future__ import annotations

from repro.ftl.base import InvalidationEvent, PageMappedFtl
from repro.ftl.page_status import PageStatus


class EraseBasedFtl(PageMappedFtl):
    """erSSD: relocate-and-erase on every secured invalidation."""

    name = "erSSD"
    tracks_secure = True
    #: every secured stale copy is erased away within the batch.
    sanitize_scope = "all"

    # ------------------------------------------------------------------
    def _sanitize_host_batch(self, events: list[InvalidationEvent]) -> None:
        blocks = {
            self.block_of_gppa(event.gppa)
            for event in events
            if event.was_secured
        }
        for gb in sorted(blocks):
            self._erase_block_for_sanitize(gb)

    def _finish_victim(
        self,
        chip_id: int,
        local_block: int,
        events: list[InvalidationEvent],
    ) -> None:
        # eager erase: the victim may hold secured stale copies, and
        # erSSD has no way to sanitize them short of erasing (fn. 15).
        gb = self.global_block(chip_id, local_block)
        self._note_secured_invalid_sanitized(gb)
        with self.timing.sanitize_region():
            if self._erase_block_now(chip_id, local_block):
                self.stats.sanitize_erases += 1
                self.alloc.add_erased(chip_id, local_block)
        # a status-failed erase scrubbed + retired the block instead;
        # the scrub sanitize notes supersede the eager erase notes

    # ------------------------------------------------------------------
    def _erase_block_for_sanitize(self, gb: int) -> None:
        """Relocate the block's live pages, then erase it right away."""
        chip_id, local_block = self.split_global_block(gb)
        with self.tel.tracer.span(
            "relocation_storm", cat="ftl.sanitize", chip=chip_id, block=gb
        ), self.timing.sanitize_region():
            stream = self.alloc.stream_of_block(chip_id, local_block)
            if stream is not None:
                # the stale copy sits in an open block: close its stream so
                # the relocations (and future writes) land elsewhere.
                self.alloc.close_active(chip_id, stream)
            live = self.status.live_pages(gb)
            for gppa in live:
                self._move_page(gppa, reason="sanitize-relocate")
            self.stats.relocation_copies += len(live)
            self._note_secured_invalid_sanitized(gb)
            if self._erase_block_now(chip_id, local_block):
                self.stats.sanitize_erases += 1
                self.alloc.add_erased(chip_id, local_block)

    def _note_secured_invalid_sanitized(self, gb: int) -> None:
        """Report every stale page of the block as sanitized-by-erase."""
        base = gb * self.geometry.pages_per_block
        for gppa in range(base, base + self.geometry.pages_per_block):
            if self.status.get(gppa) is PageStatus.INVALID:
                self.observer.on_sanitize(gppa, "erase")
