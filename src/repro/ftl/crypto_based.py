"""cryptSSD: encryption-based sanitization -- the Section 8 comparator.

Related work (Reardon's DNEFS, FeSSD, ...) sanitizes by encrypting every
data version under its own key and *deleting the key* when the data is
invalidated: without the key the ciphertext is useless, so key deletion
is an O(1), erase-free sanitize.

The paper's critique, which this model makes testable:

* encryption adds per-page compute on every read and write (we fold an
  AES-pipeline cost into the channel transfer time);
* key management is a single point of failure -- the Section 5.1
  attacker "can obtain any necessary passwords and encryption keys"
  (e.g. via a cold-boot attack).  A key-store snapshot taken *before*
  a deletion decrypts ciphertext that is sanitized only by key deletion
  *after* the snapshot.  Evanesco is complementary: a locked page
  returns zeros no matter what keys leak.

Simulation encoding: a programmed payload is ``("enc", key_id,
plaintext_token)``; the controller's key store maps ``key_id -> True``.
GC copies move ciphertext verbatim (same key).  Secured invalidation by
the host deletes the version's key.
"""

from __future__ import annotations

from repro.ftl.base import InvalidationEvent, PageMappedFtl

#: marker of ciphertext payloads.
ENC_MARKER = "enc"

#: per-page AES-engine latency folded into each transfer (us).  An
#: inline AES-XTS pipeline at ~1 GB/s adds ~16 us per 16-KiB page.
T_CRYPTO_US = 16.0


def is_ciphertext(payload: object) -> bool:
    return (
        isinstance(payload, tuple)
        and len(payload) == 3
        and payload[0] == ENC_MARKER
    )


class CryptoFtl(PageMappedFtl):
    """Key-per-version encrypting FTL with delete-by-key sanitization."""

    name = "cryptSSD"
    tracks_secure = True
    #: key deletion sanitizes on *version death* only: a GC copy's stale
    #: ciphertext legitimately keeps its key while the version lives.
    sanitize_scope = "version-death"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.key_store: dict[int, bool] = {}
        self._next_key = 0
        self.key_deletions = 0
        # the crypto engine sits on the data path: every page transfer
        # pays the AES pipeline latency, reads and writes alike
        self.timing.t_xfer_us += T_CRYPTO_US

    # ------------------------------------------------------------------
    def _program_new_page(
        self, chip_id: int, data: object, spare: dict, stream: str = "host"
    ) -> int:
        if not is_ciphertext(data):
            key_id = self._next_key
            self._next_key += 1
            self.key_store[key_id] = True
            data = (ENC_MARKER, key_id, data)
        # GC moves arrive already encrypted and keep their key
        return super()._program_new_page(chip_id, data, spare, stream)

    # ------------------------------------------------------------------
    def _sanitize_host_batch(self, events: list[InvalidationEvent]) -> None:
        """Delete the keys of dying secured versions (O(1), no flash op)."""
        for event in events:
            if not event.was_secured:
                continue
            chip_id, ppn = self.split_gppa(event.gppa)
            block_index, offset = self.geometry.split_ppn(ppn)
            payload = self.chips[chip_id].blocks[block_index].page(offset).data
            if is_ciphertext(payload):
                key_id = payload[1]
                if self.key_store.pop(key_id, None) is not None:
                    self.key_deletions += 1
                # the ciphertext is unreadable the moment its key is gone,
                # whether this copy or the pop on an earlier copy removed it
                self.observer.on_sanitize(event.gppa, "key_delete")

    # GC moves copy ciphertext under the same key; the stale copy is the
    # same *version* as the live one, so its key must survive -- the
    # default _finish_victim (lazy retire, no sanitize) is correct here.

    # ------------------------------------------------------------------
    def key_exists(self, key_id: int) -> bool:
        return key_id in self.key_store

    def decrypt(self, payload: object) -> object | None:
        """Controller-side decrypt: None when the key is gone."""
        if not is_ciphertext(payload):
            return payload
        _, key_id, plaintext = payload
        if key_id not in self.key_store:
            return None
        return plaintext

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        state = super().state_dict()
        state["key_store"] = dict(self.key_store)
        state["next_key"] = self._next_key
        state["key_deletions"] = self.key_deletions
        return state

    def load_state_dict(self, state: dict[str, object]) -> None:
        super().load_state_dict(state)
        self.key_store = dict(state["key_store"])
        self._next_key = state["next_key"]
        self.key_deletions = state["key_deletions"]
