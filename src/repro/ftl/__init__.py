"""Flash translation layers: the baseline and every evaluated variant.

* :class:`~repro.ftl.base.PageMappedFtl` -- baseline append-only FTL
  with greedy GC and lazy erase (no sanitization);
* :class:`~repro.ftl.secure.SecureFtl` -- secSSD (pLock + bLock);
* :class:`~repro.ftl.secure.SecureFtlNoBlockLock` -- secSSD_nobLock;
* :class:`~repro.ftl.erase_based.EraseBasedFtl` -- erSSD;
* :class:`~repro.ftl.scrub_based.ScrubBasedFtl` -- scrSSD.
"""

from repro.ftl.allocator import BlockAllocator
from repro.ftl.base import InvalidationEvent, PageMappedFtl
from repro.ftl.crypto_based import CryptoFtl
from repro.ftl.erase_based import EraseBasedFtl
from repro.ftl.gc_policies import GC_POLICIES, VictimView, policy_by_name
from repro.ftl.mapping import L2PTable, UNMAPPED
from repro.ftl.observer import FtlObserver, NullObserver
from repro.ftl.page_status import PageStatus, StatusTable
from repro.ftl.recovery import PowerLossRecovery, RecoveryReport
from repro.ftl.scrub_based import ScrubBasedFtl
from repro.ftl.secure import SecureFtl, SecureFtlNoBlockLock

FTL_VARIANTS = {
    cls.name: cls
    for cls in (
        PageMappedFtl,
        SecureFtl,
        SecureFtlNoBlockLock,
        EraseBasedFtl,
        ScrubBasedFtl,
        CryptoFtl,
    )
}

__all__ = [
    "BlockAllocator",
    "CryptoFtl",
    "EraseBasedFtl",
    "FTL_VARIANTS",
    "FtlObserver",
    "GC_POLICIES",
    "InvalidationEvent",
    "L2PTable",
    "NullObserver",
    "PageMappedFtl",
    "PageStatus",
    "PowerLossRecovery",
    "RecoveryReport",
    "ScrubBasedFtl",
    "SecureFtl",
    "SecureFtlNoBlockLock",
    "StatusTable",
    "UNMAPPED",
    "VictimView",
    "policy_by_name",
]
