"""Per-chip block allocation with lazy erase -- Section 5.4.

Each chip keeps a pool of erased free blocks, a pool of *erase-pending*
GC victims, and one or more open ("active") blocks that absorb page
writes.  Blocks are erased **lazily**: a GC victim is not erased when it
is reclaimed but right before it is reused, which minimizes the open
interval (the time a block sits erased before programming) and thus the
Figure-10 reliability penalty.

Writes are grouped into *streams*: by default everything shares the
``"host"`` stream (one open block per chip, the paper's FlashBench FTL);
an FTL may route GC relocations to a separate ``"gc"`` stream so that
colder relocated data does not intermix with fresh host writes -- the
classic hot/cold separation whose effect the ablation benchmarks
quantify.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

HOST_STREAM = "host"
GC_STREAM = "gc"


class OutOfBlocksError(RuntimeError):
    """A chip has no erased or erase-pending block left to open.

    End of device life: grown-bad retirement (erase failures, P/E
    exhaustion) shrank a chip's pool until a write had nowhere to go.
    Subclasses ``RuntimeError`` so long-standing callers that treated
    exhaustion as a generic runtime failure keep working; endurance
    studies catch this type to report "device died" cleanly.
    """


@dataclass
class StreamState:
    """Open-block cursor of one write stream on one chip."""

    active_block: int | None = None
    next_offset: int = 0


@dataclass
class ChipAllocState:
    """Allocation state for one chip."""

    free_blocks: deque[int] = field(default_factory=deque)   # erased, empty
    pending_blocks: deque[int] = field(default_factory=deque)  # lazy-erase queue
    streams: dict[str, StreamState] = field(default_factory=dict)
    retired: set[int] = field(default_factory=set)  # grown-bad, never reused

    def stream(self, name: str) -> StreamState:
        state = self.streams.get(name)
        if state is None:
            state = StreamState()
            self.streams[name] = state
        return state


class BlockAllocator:
    """Free-space manager across all chips.

    Blocks are identified by *local* index within their chip; the FTL
    translates to global ids.  The allocator never talks to the chips --
    it returns decisions ("erase block b now", "write page p of block b")
    and the FTL performs the flash operations and timing accounting.
    """

    def __init__(self, n_chips: int, blocks_per_chip: int, pages_per_block: int):
        if min(n_chips, blocks_per_chip, pages_per_block) <= 0:
            raise ValueError("dimensions must be positive")
        self._pages_per_block = pages_per_block
        self._blocks_per_chip = blocks_per_chip
        self._chips = [ChipAllocState() for _ in range(n_chips)]
        for state in self._chips:
            state.free_blocks.extend(range(blocks_per_chip))
        #: optional wear oracle ``(chip_id, block) -> erase_count``.  When
        #: set (``SSDConfig.wear_aware_allocation``), a stream opens the
        #: least-worn reusable block instead of the FIFO head -- dynamic
        #: wear leveling.  Ties break on block index, so the choice is a
        #: pure function of (wear counts, pool membership) and stays
        #: deterministic whatever order the deque holds.  Config-derived
        #: and re-wired by the FTL on construction, so it is deliberately
        #: not part of :meth:`state_dict`.
        self.wear_fn: Callable[[int, int], int] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_layout(
        cls,
        n_chips: int,
        blocks_per_chip: int,
        pages_per_block: int,
        free_blocks: list[list[int]],
        retired_blocks: list[set[int]] | None = None,
    ) -> "BlockAllocator":
        """Rebuild an allocator from a scanned device layout.

        ``free_blocks[chip]`` lists the chip's erased, empty blocks; every
        other block is considered closed (GC will reclaim it later).  Used
        by power-loss recovery, which must not treat written blocks as
        allocatable.  ``retired_blocks[chip]`` re-seeds the grown-bad
        exclusions recovered from the chips' block states.
        """
        if len(free_blocks) != n_chips:
            raise ValueError("free_blocks must list one entry per chip")
        alloc = cls(n_chips, blocks_per_chip, pages_per_block)
        for chip_id, free in enumerate(free_blocks):
            state = alloc._chips[chip_id]
            state.free_blocks.clear()
            state.free_blocks.extend(sorted(free))
            state.pending_blocks.clear()
            state.streams.clear()
            if retired_blocks is not None:
                state.retired = set(retired_blocks[chip_id])
                if state.retired.intersection(state.free_blocks):
                    raise ValueError("a retired block cannot be free")
        return alloc

    # ------------------------------------------------------------------
    @property
    def pages_per_block(self) -> int:
        return self._pages_per_block

    def reserve_blocks(self, chip_id: int) -> int:
        """Blocks available for reuse (erased + pending lazy erase)."""
        st = self._chips[chip_id]
        return len(st.free_blocks) + len(st.pending_blocks)

    def active_block(self, chip_id: int, stream: str = HOST_STREAM) -> int | None:
        return self._chips[chip_id].stream(stream).active_block

    def active_blocks(self, chip_id: int) -> list[int]:
        """Every stream's open block on a chip (for victim exclusion)."""
        return [
            s.active_block
            for s in self._chips[chip_id].streams.values()
            if s.active_block is not None
        ]

    def retire_victim(self, chip_id: int, block: int) -> None:
        """Queue a fully-collected GC victim for lazy erase."""
        st = self._chips[chip_id]
        if block in st.retired:
            raise ValueError(f"block {block} is retired (grown-bad)")
        st.pending_blocks.append(block)

    def add_erased(self, chip_id: int, block: int) -> None:
        """Return an already-erased block to the free pool."""
        st = self._chips[chip_id]
        if block in st.retired:
            raise ValueError(f"block {block} is retired (grown-bad)")
        st.free_blocks.append(block)

    def retire_block(self, chip_id: int, block: int) -> None:
        """Pull a grown-bad block out of every pool, permanently.

        Idempotent; also drops the block's open-block cursor if a stream
        happened to have it active (a failed lazy erase at reuse).
        """
        st = self._chips[chip_id]
        if block in st.free_blocks:
            st.free_blocks.remove(block)
        if block in st.pending_blocks:
            st.pending_blocks.remove(block)
        for stream in st.streams.values():
            if stream.active_block == block:
                stream.active_block = None
                stream.next_offset = 0
        st.retired.add(block)

    def retired_blocks(self, chip_id: int) -> set[int]:
        return set(self._chips[chip_id].retired)

    # ------------------------------------------------------------------
    def allocate_page(
        self, chip_id: int, stream: str = HOST_STREAM
    ) -> tuple[int, int, int | None]:
        """Pick the next page to program on a chip's stream.

        Returns ``(block, page_offset, erase_block)`` where ``erase_block``
        is a block the caller must erase *now* (lazy erase at reuse) or
        ``None``.  Raises ``RuntimeError`` when the chip is out of space --
        the FTL must GC before that happens.
        """
        chip = self._chips[chip_id]
        st = chip.stream(stream)
        erase_needed: int | None = None
        if st.active_block is None:
            if chip.free_blocks:
                st.active_block = self._pick_block(chip_id, chip.free_blocks)
            elif chip.pending_blocks:
                st.active_block = self._pick_block(chip_id, chip.pending_blocks)
                erase_needed = st.active_block
            else:
                raise OutOfBlocksError(
                    f"chip {chip_id} has no reusable blocks"
                )
            st.next_offset = 0
        block = st.active_block
        offset = st.next_offset
        st.next_offset += 1
        if st.next_offset >= self._pages_per_block:
            st.active_block = None
            st.next_offset = 0
        return block, offset, erase_needed

    def _pick_block(self, chip_id: int, pool: deque[int]) -> int:
        """Next block from a pool: FIFO head, or least-worn if wear-aware."""
        wear_fn = self.wear_fn
        if wear_fn is None:
            return pool.popleft()
        best = min(pool, key=lambda block: (wear_fn(chip_id, block), block))
        pool.remove(best)
        return best

    def active_position(
        self, chip_id: int, stream: str = HOST_STREAM
    ) -> tuple[int, int] | None:
        """(active block, next offset) for a chip's stream, or None."""
        st = self._chips[chip_id].stream(stream)
        if st.active_block is None:
            return None
        return st.active_block, st.next_offset

    def stream_of_block(self, chip_id: int, block: int) -> str | None:
        """Which stream (if any) currently has ``block`` open."""
        for name, st in self._chips[chip_id].streams.items():
            if st.active_block == block:
                return name
        return None

    def close_active(self, chip_id: int, stream: str = HOST_STREAM) -> int | None:
        """Abandon a stream's open block (e.g. it must be erased now).

        Returns the closed block's index or None.  The caller owns the
        block afterwards; its unwritten tail pages are lost until erase.
        """
        st = self._chips[chip_id].stream(stream)
        block = st.active_block
        st.active_block = None
        st.next_offset = 0
        return block

    def active_pages_left(self, chip_id: int, stream: str = HOST_STREAM) -> int:
        """Unwritten pages remaining in the stream's open block (0 if none)."""
        st = self._chips[chip_id].stream(stream)
        if st.active_block is None:
            return 0
        return self._pages_per_block - st.next_offset

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """Checkpoint payload: queue order and cursors are preserved
        exactly (free/pending deque order decides which block is reused
        next, so it is behaviorally significant)."""
        return {
            "chips": [
                {
                    "free_blocks": deque(chip.free_blocks),
                    "pending_blocks": deque(chip.pending_blocks),
                    "streams": {
                        name: {
                            "active_block": st.active_block,
                            "next_offset": st.next_offset,
                        }
                        for name, st in chip.streams.items()
                    },
                    "retired": set(chip.retired),
                }
                for chip in self._chips
            ],
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        chips = state["chips"]
        if len(chips) != len(self._chips):
            raise ValueError("allocator checkpoint does not match chip count")
        for chip, payload in zip(self._chips, chips):
            chip.free_blocks = deque(payload["free_blocks"])
            chip.pending_blocks = deque(payload["pending_blocks"])
            chip.streams = {
                name: StreamState(
                    active_block=st["active_block"],
                    next_offset=st["next_offset"],
                )
                for name, st in payload["streams"].items()
            }
            chip.retired = set(payload["retired"])
