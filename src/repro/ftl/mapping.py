"""Logical-to-physical mapping table (L2P) with reverse lookup.

The FTL maps each logical page address (LPA) to the physical page (global
PPA) holding its current data, exactly as in the paper's Figure 3.  The
reverse map (P2L) is what GC uses to re-map a victim's live pages; real
FTLs reconstruct it from the spare-area LPA annotation, which our chips
also carry, but keeping it in RAM mirrors production page-mapped FTLs.
"""

from __future__ import annotations

UNMAPPED = -1


class L2PTable:
    """Bidirectional page map over fixed logical/physical ranges."""

    def __init__(self, logical_pages: int, physical_pages: int) -> None:
        if logical_pages <= 0 or physical_pages <= 0:
            raise ValueError("page counts must be positive")
        if logical_pages > physical_pages:
            raise ValueError("logical space cannot exceed physical space")
        self._l2p = [UNMAPPED] * logical_pages
        self._p2l = [UNMAPPED] * physical_pages

    # ------------------------------------------------------------------
    @property
    def logical_pages(self) -> int:
        return len(self._l2p)

    @property
    def physical_pages(self) -> int:
        return len(self._p2l)

    def _check_lpa(self, lpa: int) -> None:
        if not 0 <= lpa < len(self._l2p):
            raise IndexError(f"lpa {lpa} out of range [0, {len(self._l2p)})")

    def _check_gppa(self, gppa: int) -> None:
        if not 0 <= gppa < len(self._p2l):
            raise IndexError(f"gppa {gppa} out of range [0, {len(self._p2l)})")

    # ------------------------------------------------------------------
    # the four lookup/update methods run once or twice per flash op, so
    # each inlines its bounds check (the _check_* helpers stay as the
    # canonical raise path)
    def lookup(self, lpa: int) -> int:
        """Current physical page of an LPA, or UNMAPPED."""
        l2p = self._l2p
        if not 0 <= lpa < len(l2p):
            self._check_lpa(lpa)
        return l2p[lpa]

    def reverse(self, gppa: int) -> int:
        """LPA currently mapped to a physical page, or UNMAPPED."""
        p2l = self._p2l
        if not 0 <= gppa < len(p2l):
            self._check_gppa(gppa)
        return p2l[gppa]

    def is_mapped(self, lpa: int) -> bool:
        return self.lookup(lpa) != UNMAPPED

    def map(self, lpa: int, gppa: int) -> int:
        """Point ``lpa`` at ``gppa``; returns the displaced old gppa.

        The displaced physical page's reverse entry is cleared -- the
        caller is responsible for invalidating its status.
        """
        l2p = self._l2p
        p2l = self._p2l
        if not 0 <= lpa < len(l2p):
            self._check_lpa(lpa)
        if not 0 <= gppa < len(p2l):
            self._check_gppa(gppa)
        if p2l[gppa] != UNMAPPED:
            raise ValueError(f"gppa {gppa} is already mapped to lpa {p2l[gppa]}")
        old = l2p[lpa]
        if old != UNMAPPED:
            p2l[old] = UNMAPPED
        l2p[lpa] = gppa
        p2l[gppa] = lpa
        return old

    def unmap(self, lpa: int) -> int:
        """Remove the LPA's mapping (trim); returns the old gppa."""
        l2p = self._l2p
        if not 0 <= lpa < len(l2p):
            self._check_lpa(lpa)
        old = l2p[lpa]
        if old != UNMAPPED:
            self._p2l[old] = UNMAPPED
        l2p[lpa] = UNMAPPED
        return old

    def mapped_count(self) -> int:
        return sum(1 for g in self._l2p if g != UNMAPPED)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, list[int]]:
        """Checkpoint payload (see :mod:`repro.checkpoint`)."""
        return {"l2p": list(self._l2p), "p2l": list(self._p2l)}

    def load_state_dict(self, state: dict[str, list[int]]) -> None:
        if len(state["l2p"]) != len(self._l2p) or len(state["p2l"]) != len(
            self._p2l
        ):
            raise ValueError("L2P checkpoint does not match table geometry")
        self._l2p = list(state["l2p"])
        self._p2l = list(state["p2l"])
