"""Evanesco-aware FTL: the secSSD lock manager -- Section 6.

When a *secured* page is invalidated (host update, trim, or a GC copy),
the lock manager sanitizes it immediately:

* normally with a ``pLock`` of the single page;
* with one ``bLock`` of the whole block when (1) every remaining page of
  the block needs sanitization -- i.e. the block is fully programmed and
  fully dead -- and (2) the estimated pLock cost for the batch exceeds
  ``tbLock`` (Section 6's policy; with tpLock = 100 us and tbLock =
  300 us, batches of 4+ pages take the block path).

``secSSD_nobLock`` disables the second rule, which is the ablation the
paper uses to isolate bLock's contribution (Fig. 14a discussion).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.evanesco_chip import EvanescoChip
from repro.ftl.base import InvalidationEvent, PageMappedFtl


class SecureFtl(PageMappedFtl):
    """secSSD: Evanesco-aware FTL with the pLock/bLock lock manager."""

    name = "secSSD"
    tracks_secure = True
    #: every secured stale copy (host update/trim, GC, refresh) is
    #: locked before the batch completes.
    sanitize_scope = "all"
    use_block_lock = True
    #: minimum secured pages in a fully-dead block before bLock is used;
    #: None derives the break-even from the latency constants (Section 6:
    #: n * tpLock > tbLock, i.e. 4 pages at the paper's timings).
    block_lock_threshold_pages: int | None = None

    def _make_chip(self, chip_id: int) -> EvanescoChip:
        return EvanescoChip(self.geometry, seed=self.seed * 7919 + chip_id)

    # ------------------------------------------------------------------
    def _sanitize_host_batch(self, events: list[InvalidationEvent]) -> None:
        self._lock_invalidated(events)

    def _finish_victim(
        self,
        chip_id: int,
        local_block: int,
        events: list[InvalidationEvent],
    ) -> None:
        # GC moved every live page out, so the victim is fully dead: a
        # single bLock can cover all its secured stale copies at once.
        self._lock_invalidated(events)
        self._retire_victim(chip_id, local_block)

    # ------------------------------------------------------------------
    def _lock_invalidated(self, events: list[InvalidationEvent]) -> None:
        """Sanitize the secured subset of an invalidation batch."""
        by_block: dict[int, list[InvalidationEvent]] = defaultdict(list)
        for event in events:
            if event.was_secured:
                by_block[self.block_of_gppa(event.gppa)].append(event)
        for gb, block_events in by_block.items():
            chip_id, local_block = self.split_global_block(gb)
            chip = self.chips[chip_id]
            if chip.block_locked(local_block):
                # an earlier bLock already covers everything in the block
                for event in block_events:
                    self.observer.on_sanitize(event.gppa, "block_lock")
                continue
            if self._should_block_lock(gb, len(block_events)):
                chip.block_lock(local_block)
                self.timing.block_lock(chip_id)
                self.stats.block_locks += 1
                for event in block_events:
                    self.observer.on_sanitize(event.gppa, "block_lock")
            else:
                for event in block_events:
                    _, ppn = self.split_gppa(event.gppa)
                    chip.plock(ppn)
                    self.timing.plock(chip_id)
                    self.stats.plocks += 1
                    self.observer.on_sanitize(event.gppa, "plock")

    def _should_block_lock(self, gb: int, n_secured: int) -> bool:
        """Section 6 policy: whole-block lock only for fully-dead blocks
        whose batch would cost more in pLocks than one bLock."""
        if not self.use_block_lock:
            return False
        chip_id, local_block = self.split_global_block(gb)
        block = self.chips[chip_id].blocks[local_block]
        fully_dead = block.is_full and self.status.live_count(gb) == 0
        if not fully_dead:
            return False
        if self.block_lock_threshold_pages is not None:
            return n_secured >= self.block_lock_threshold_pages
        return n_secured * self.config.t_plock_us > self.config.t_block_lock_us


class SecureFtlNoBlockLock(SecureFtl):
    """secSSD_nobLock: the pLock-only ablation."""

    name = "secSSD_nobLock"
    use_block_lock = False
