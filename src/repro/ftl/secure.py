"""Evanesco-aware FTL: the secSSD lock manager -- Section 6.

When a *secured* page is invalidated (host update, trim, or a GC copy),
the lock manager sanitizes it immediately:

* normally with a ``pLock`` of the single page;
* with one ``bLock`` of the whole block when (1) every remaining page of
  the block needs sanitization -- i.e. the block is fully programmed and
  fully dead -- and (2) the estimated pLock cost for the batch exceeds
  ``tbLock`` (Section 6's policy; with tpLock = 100 us and tbLock =
  300 us, batches of 4+ pages take the block path).

``secSSD_nobLock`` disables the second rule, which is the ablation the
paper uses to isolate bLock's contribution (Fig. 14a discussion).

Lock operations can *fail* (Section 4.1's k=9 pAP redundancy exists
precisely because flag-cell programming is unreliable; the fault
injector models the residual majority-loss case).  Every lock is
therefore issued verify-after-write: the manager re-reads the AP state
and re-pulses up to ``config.lock_retry_limit`` times (the pulses are
monotonic, so a retry programs the cells the last pulse missed).  A
persistently failing pLock escalates to a bLock of the whole block
(after evacuating live pages and padding); a persistently failing bLock
escalates to an immediate erase; a failing erase scrubs and retires the
block.  Each step is strictly stronger, so the security invariant --
invalidated secured pages are unreadable by the end of the batch --
holds under any injected fault, and the runtime sanitizer's probes
verify it on the actual chip state.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.evanesco_chip import EvanescoChip
from repro.flash.errors import ProgramFailError
from repro.ftl.base import InvalidationEvent, PageMappedFtl


class SecureFtl(PageMappedFtl):
    """secSSD: Evanesco-aware FTL with the pLock/bLock lock manager."""

    name = "secSSD"
    tracks_secure = True
    #: every secured stale copy (host update/trim, GC, refresh) is
    #: locked before the batch completes.
    sanitize_scope = "all"
    use_block_lock = True
    #: minimum secured pages in a fully-dead block before bLock is used;
    #: None derives the break-even from the latency constants (Section 6:
    #: n * tpLock > tbLock, i.e. 4 pages at the paper's timings).
    block_lock_threshold_pages: int | None = None

    def _make_chip(self, chip_id: int) -> EvanescoChip:
        return EvanescoChip(
            self.geometry,
            pe_limit=self.config.pe_limit,
            seed=self.seed * 7919 + chip_id,
        )

    # ------------------------------------------------------------------
    def _sanitize_host_batch(self, events: list[InvalidationEvent]) -> None:
        self._lock_invalidated(events)

    def _finish_victim(
        self,
        chip_id: int,
        local_block: int,
        events: list[InvalidationEvent],
    ) -> None:
        # GC moved every live page out, so the victim is fully dead: a
        # single bLock can cover all its secured stale copies at once.
        disposed = self._lock_invalidated(events)
        if self.global_block(chip_id, local_block) in disposed:
            # the fallback chain already erased (or retired) the victim;
            # queueing it for lazy erase again would double-handle it
            return
        self._retire_victim(chip_id, local_block)

    # ------------------------------------------------------------------
    def _lock_invalidated(self, events: list[InvalidationEvent]) -> set[int]:
        """Sanitize the secured subset of an invalidation batch.

        Returns the set of global block ids the fallback chain *disposed
        of* (erased and returned to the allocator, or scrubbed and
        retired) so that callers holding their own claim on a block --
        GC's ``_finish_victim`` -- do not retire it a second time.
        """
        by_block: dict[int, list[InvalidationEvent]] = defaultdict(list)
        for event in events:
            if event.was_secured:
                by_block[self.block_of_gppa(event.gppa)].append(event)
        if not by_block:
            return set()
        with self.tel.tracer.span(
            "lock_batch", cat="ftl.sanitize", blocks=len(by_block)
        ):
            return self._lock_blocks(by_block)

    def _lock_blocks(
        self, by_block: dict[int, list[InvalidationEvent]]
    ) -> set[int]:
        disposed: set[int] = set()
        for gb, block_events in by_block.items():
            chip_id, local_block = self.split_global_block(gb)
            chip = self.chips[chip_id]
            if chip.block_locked(local_block):
                # an earlier bLock already covers everything in the block
                for event in block_events:
                    self.observer.on_sanitize(event.gppa, "block_lock")
                continue
            if self._should_block_lock(gb, len(block_events)):
                if not self._block_lock_verified(chip_id, local_block, block_events):
                    if self._fallback_erase(gb):
                        disposed.add(gb)
                continue
            failed = [
                event
                for event in block_events
                if not self._plock_verified(chip_id, event)
            ]
            if failed and self._fallback_block_lock(gb, failed):
                disposed.add(gb)
        return disposed

    # ------------------------------------------------------------------
    # verified lock primitives
    # ------------------------------------------------------------------
    def _plock_verified(self, chip_id: int, event: InvalidationEvent) -> bool:
        """pLock one stale copy, verify, retry; True when it stuck."""
        chip = self.chips[chip_id]
        _, ppn = self.split_gppa(event.gppa)
        attempts = 1 + self.config.lock_retry_limit
        for attempt in range(attempts):
            chip.plock(ppn)
            self.timing.plock(chip_id)
            self.stats.plocks += 1
            if chip.page_locked(ppn):
                self.observer.on_sanitize(event.gppa, "plock")
                return True
            if attempt + 1 < attempts:
                self.stats.lock_retries += 1
        self.stats.lock_failures += 1
        return False

    def _block_lock_verified(
        self,
        chip_id: int,
        local_block: int,
        covered: list[InvalidationEvent],
    ) -> bool:
        """bLock a block, verify, retry; reports coverage on success."""
        chip = self.chips[chip_id]
        attempts = 1 + self.config.lock_retry_limit
        for attempt in range(attempts):
            chip.block_lock(local_block)
            self.timing.block_lock(chip_id)
            self.stats.block_locks += 1
            if chip.block_locked(local_block):
                for event in covered:
                    self.observer.on_sanitize(event.gppa, "block_lock")
                return True
            if attempt + 1 < attempts:
                self.stats.lock_retries += 1
        self.stats.lock_failures += 1
        return False

    # ------------------------------------------------------------------
    # the fallback chain: pLock -> bLock -> erase -> scrub+retire
    # ------------------------------------------------------------------
    def _fallback_block_lock(
        self, gb: int, failed: list[InvalidationEvent]
    ) -> bool:
        """Escalate unlockable pages to a bLock of their whole block.

        The block may be live and even open, so this is the expensive
        path: close its stream cursor, pad it full, relocate its live
        pages, then bLock.  Returns True when the chain went all the way
        to disposing of the block (erase or scrub+retire).

        Note: this escalation runs even for ``secSSD_nobLock`` --
        ``use_block_lock`` is the Section-6 *batching policy*, whereas
        this is a reliability escalation; disabling the policy ablation
        must not weaken the sanitization guarantee.
        """
        self.stats.fallback_block_locks += 1
        chip_id, local_block = self.split_global_block(gb)
        with self.tel.tracer.span(
            "lock_fallback", cat="ftl.sanitize", chip=chip_id, block=gb
        ), self.timing.sanitize_region():
            stream = self.alloc.stream_of_block(chip_id, local_block)
            if stream is not None:
                self.alloc.close_active(chip_id, stream)
            self._pad_block_full(chip_id, local_block)
            moved = [
                self._move_page(gppa, reason="fallback-relocate")
                for gppa in self.status.live_pages(gb)
            ]
            self.stats.relocation_copies += len(moved)
            covered = failed + [e for e in moved if e.was_secured]
            if self._block_lock_verified(chip_id, local_block, covered):
                return False
            return self._fallback_erase(gb)

    def _fallback_erase(self, gb: int) -> bool:
        """Last resort: erase the block now (scrub+retire if that fails).

        Erase resets the AP flags *and* the cells, so the stale copies
        are gone outright; the sanitizer hears it via ``on_erase``.  A
        status-failed erase lands in ``_retire_bad_block``, which scrubs
        every programmed wordline before retiring -- still sanitized.
        Returns True iff the block was disposed of (always, here).
        """
        self.stats.fallback_erases += 1
        chip_id, local_block = self.split_global_block(gb)
        with self.timing.sanitize_region():
            if self._erase_block_now(chip_id, local_block):
                self.stats.sanitize_erases += 1
                self.alloc.add_erased(chip_id, local_block)
        return True

    def _pad_block_full(self, chip_id: int, local_block: int) -> None:
        """Dummy-program a block's unwritten tail so it can be bLocked.

        An open block cannot be taken out of service while host writes
        could still land in it; the pads close it the same way power-loss
        recovery closes half-written blocks.  A torn pad is still a pad.
        """
        chip = self.chips[chip_id]
        block = chip.blocks[local_block]
        while not block.is_full:
            ppn = self.geometry.ppn(local_block, block.next_page)
            gppa = self.make_gppa(chip_id, ppn)
            try:
                chip.program_page(ppn, None, {"pad": True})
            except ProgramFailError:
                self.stats.program_fails += 1
            self.timing.program(chip_id)
            self.stats.flash_programs += 1
            self.status.set_written(gppa, False)
            self.observer.on_program(gppa, -1, None, False)
            self.status.set_invalid(gppa)
            self.observer.on_invalidate(gppa, -1, "pad")

    def _should_block_lock(self, gb: int, n_secured: int) -> bool:
        """Section 6 policy: whole-block lock only for fully-dead blocks
        whose batch would cost more in pLocks than one bLock."""
        if not self.use_block_lock:
            return False
        chip_id, local_block = self.split_global_block(gb)
        block = self.chips[chip_id].blocks[local_block]
        fully_dead = block.is_full and self.status.live_count(gb) == 0
        if not fully_dead:
            return False
        if self.block_lock_threshold_pages is not None:
            return n_secured >= self.block_lock_threshold_pages
        return n_secured * self.config.t_plock_us > self.config.t_block_lock_us


class SecureFtlNoBlockLock(SecureFtl):
    """secSSD_nobLock: the pLock-only ablation."""

    name = "secSSD_nobLock"
    use_block_lock = False
