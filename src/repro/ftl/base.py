"""Baseline page-mapped FTL (no sanitization support).

Implements the standard append-only FTL of Section 2.2: host writes go to
the next free page of a per-chip active block (round-robin striping
across chips for parallelism), the L2P table is updated, the overwritten
physical page is merely marked *invalid*, and greedy garbage collection
reclaims the most-invalidated blocks with **lazy erase** (Section 5.4).

This class is also the extension point for every evaluated SSD variant:

* :class:`~repro.ftl.secure.SecureFtl` (secSSD / secSSD_nobLock)
  overrides the sanitization hooks with pLock/bLock;
* :class:`~repro.ftl.erase_based.EraseBasedFtl` (erSSD) relocates and
  immediately erases;
* :class:`~repro.ftl.scrub_based.ScrubBasedFtl` (scrSSD) relocates
  wordline siblings and scrubs.

The baseline itself records every write as plain ``valid`` data -- it is
the "SSD with no data sanitization support" all Figure 14 results are
normalized to.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import NamedTuple

from repro.checkers.sanitizer import FtlSanitizer, default_checked
from repro.faults import FaultInjector, FaultPlan
from repro.flash.block import BlockState
from repro.flash.chip import FlashChip, ReadResult
from repro.flash.constants import LOGICAL_TIME_WRITE_BYTES
from repro.flash.errors import (
    EraseFailError,
    ProgramFailError,
    UncorrectableError,
    WearOutError,
)
from repro.flash.wear import WearReadGate
from repro.ftl.allocator import BlockAllocator, GC_STREAM, HOST_STREAM
from repro.ftl.gc_policies import VictimView, policy_by_name
from repro.ftl.mapping import L2PTable, UNMAPPED
from repro.ftl.observer import FtlObserver, NullObserver
from repro.ftl.page_status import PageStatus, StatusTable
from repro.ssd.config import SSDConfig
from repro.ssd.request import IoRequest, RequestOp
from repro.ssd.stats import DeviceStats
from repro.ssd.timing import TimingModel
from repro.telemetry import (  # lint: disable=SIM14 -- telemetry is the cross-cutting observability seam (DESIGN 3f); DISABLED makes it zero-cost
    DISABLED,
    AnyTelemetry,
    Telemetry,
)


class InvalidationEvent(NamedTuple):
    """One physical page turning stale, with its prior status.

    A ``NamedTuple``: one is built per invalidated page (every host
    update/trim and every GC move), where tuple construction is several
    times cheaper than a frozen-dataclass ``__init__``.
    """

    gppa: int
    lpa: int
    was_secured: bool
    reason: str  # "host-update" | "host-trim" | "gc"


class PageMappedFtl:
    """Baseline append-only page-mapped FTL."""

    name = "baseline"
    #: whether writes without INSEC_WRITE are tracked as SECURED.
    tracks_secure = False
    #: sanitization guarantee the runtime checker enforces (see
    #: :data:`repro.checkers.sanitizer.SANITIZE_SCOPES`): "none" here --
    #: the baseline leaves stale data in place until GC.
    sanitize_scope = "none"

    def __init__(
        self,
        config: SSDConfig,
        observer: FtlObserver | None = None,
        seed: int = 0,
        checked: bool | None = None,
        check_interval: int | None = None,
        faults: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config
        self.geometry = config.geometry
        self.observer: FtlObserver = observer or NullObserver()
        self.seed = seed
        #: telemetry session for macro-phase spans (GC, refresh, and the
        #: variants' sanitization storms); the DISABLED singleton's
        #: spans are shared no-ops, so untraced runs pay ~nothing.
        self.tel: AnyTelemetry = telemetry if telemetry is not None else DISABLED
        self.timing = TimingModel(
            n_channels=config.n_channels,
            chips_per_channel=config.chips_per_channel,
            t_read_us=config.t_read_us,
            t_prog_us=config.t_prog_us,
            t_erase_us=config.t_erase_us,
            t_plock_us=config.t_plock_us,
            t_block_lock_us=config.t_block_lock_us,
            t_scrub_us=config.t_scrub_us,
            t_xfer_us=config.t_xfer_us,
        )
        self.stats = DeviceStats()
        self.chips: list[FlashChip] = [
            self._make_chip(i) for i in range(config.n_chips)
        ]
        #: one injector shared by all chips (global op index) or None.
        self.fault_injector: FaultInjector | None = None
        if faults is not None:
            self.fault_injector = FaultInjector(faults)
            for chip in self.chips:
                chip.fault_hook = self.fault_injector
        #: one wear gate shared by all chips (wear is per-block state;
        #: the gate itself only holds the memoized RBER cache) or None.
        self.wear_gate: WearReadGate | None = None
        if config.wear_coupling:
            self.wear_gate = WearReadGate.for_cell_type(
                self.geometry.cell_type
            )
            for chip in self.chips:
                chip.wear_gate = self.wear_gate
        self.l2p = L2PTable(config.logical_pages, config.physical_pages)
        self.status = StatusTable(
            config.physical_pages, self.geometry.pages_per_block
        )
        self.alloc = BlockAllocator(
            config.n_chips,
            self.geometry.blocks_per_chip,
            self.geometry.pages_per_block,
        )
        if config.wear_aware_allocation:
            self.alloc.wear_fn = self._block_wear
        self._pending_victims: set[int] = set()  # global block ids
        #: chips whose wear spread must be re-checked (marked by each
        #: erase, drained at the end of the host request -- migrating
        #: inline from under an in-flight program would interleave page
        #: programs within one block).  Checkpointed: a residue can
        #: survive a request when a migration's own GC re-marks a chip.
        self._wear_level_due: set[int] = set()
        #: cached geometry scalars: the address helpers below run once
        #: per flash op, and a plain attribute beats a property call
        self._pages_per_chip = self.geometry.pages_per_chip
        self._pages_per_block = self.geometry.pages_per_block
        self._blocks_per_chip = self.geometry.blocks_per_chip
        self._rr_chip = 0
        self._write_seq = 0
        self._logical_time = 0
        self._gc_policy = policy_by_name(config.gc_policy)
        n_blocks = config.n_chips * self.geometry.blocks_per_chip
        self._block_last_program: list[int] = [0] * n_blocks
        #: host reads per block since the last erase (read-disturb cap).
        self._block_reads: list[int] = [0] * n_blocks
        #: grown-bad table: global ids of retired blocks (mirrors the
        #: persistent BlockState.RETIRED marks on the chips).
        self._bad_blocks: set[int] = set()
        #: blocks over the program-fail threshold, awaiting retirement
        #: at their next collection (RAM intent, re-learned after crash).
        self._condemned: set[int] = set()
        #: program status-fails per block since its last erase.
        self._block_program_fails: list[int] = [0] * n_blocks
        #: optional runtime invariant checker (repro.checkers.sanitizer).
        self._sanitizer: FtlSanitizer | None = None
        if checked is None:
            checked = default_checked()
        if checked:
            self._sanitizer = FtlSanitizer(self, interval=check_interval)

    # ------------------------------------------------------------------
    # chip construction and address arithmetic
    # ------------------------------------------------------------------
    def _make_chip(self, chip_id: int) -> FlashChip:
        return FlashChip(self.geometry, pe_limit=self.config.pe_limit)

    def _block_wear(self, chip_id: int, local_block: int) -> int:
        """Wear oracle the allocator consults for wear-aware allocation."""
        return self.chips[chip_id].blocks[local_block].erase_count

    @property
    def n_chips(self) -> int:
        return self.config.n_chips

    @property
    def pages_per_chip(self) -> int:
        return self.geometry.pages_per_chip

    def split_gppa(self, gppa: int) -> tuple[int, int]:
        """Global PPA -> (chip id, chip-local ppn)."""
        return divmod(gppa, self._pages_per_chip)

    def make_gppa(self, chip_id: int, ppn: int) -> int:
        return chip_id * self._pages_per_chip + ppn

    def global_block(self, chip_id: int, local_block: int) -> int:
        return chip_id * self._blocks_per_chip + local_block

    def split_global_block(self, global_block: int) -> tuple[int, int]:
        return divmod(global_block, self._blocks_per_chip)

    def block_of_gppa(self, gppa: int) -> int:
        return gppa // self._pages_per_block

    @property
    def logical_time(self) -> int:
        """Logical clock: one tick per 4-KiB of host writes (Section 3)."""
        return self._logical_time

    # ------------------------------------------------------------------
    # host interface
    # ------------------------------------------------------------------
    def submit(self, request: IoRequest) -> None:
        """Execute one host request synchronously."""
        if request.op is RequestOp.READ:
            self._host_read(request)
        elif request.op is RequestOp.WRITE:
            self._host_write(request)
        elif request.op is RequestOp.TRIM:
            self._host_trim(request)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown op {request.op!r}")
        if self._wear_level_due:
            self._drain_wear_leveling()
        if self._sanitizer is not None:
            self._sanitizer.check_batch()

    @property
    def checker(self) -> FtlSanitizer | None:
        """The attached runtime invariant sanitizer, if ``checked``.

        Tooling (the ``repro.sim`` engine, ``repro check``) reads its
        counters to report how much verification ran alongside a run.
        """
        return self._sanitizer

    def resync_checker(self) -> None:
        """Tell an attached sanitizer the tables were rebuilt wholesale.

        Power-loss recovery replaces the L2P/status tables without
        emitting observer events; a checked FTL must re-adopt the new
        state as ground truth afterwards.  No-op when unchecked.
        """
        if self._sanitizer is not None:
            self._sanitizer.resync()

    def _host_read(self, request: IoRequest) -> None:
        refresh_candidates: set[int] = set()
        for lpa in request.lpas():
            self.stats.host_reads += 1
            gppa = self.l2p.lookup(lpa)
            if gppa == UNMAPPED:
                continue  # unmapped reads return zeros without flash access
            chip_id, ppn = self.split_gppa(gppa)
            try:
                self._read_flash_page(chip_id, ppn)
            except UncorrectableError:
                # retry budget exhausted: surface as a host read error
                # (EIO) and keep serving; the mapping stays intact for
                # later heroic recovery attempts.
                self.stats.read_failures += 1
            threshold = self.config.read_refresh_threshold
            if threshold is not None:
                gb = self.block_of_gppa(gppa)
                self._block_reads[gb] += 1
                if self._block_reads[gb] >= threshold:
                    refresh_candidates.add(gb)
        for gb in refresh_candidates:
            self._refresh_block(gb)

    def _host_write(self, request: IoRequest) -> None:
        secure = request.secure and self.tracks_secure
        events: list[InvalidationEvent] = []
        for lpa in request.lpas():
            self.stats.host_writes += 1
            chip_id = self._pick_chip()
            self._ensure_space(chip_id)
            gppa = self._program_new_page(
                chip_id,
                data=(lpa, request.tag, self._write_seq),
                # spare-area annotations: everything power-loss recovery
                # needs to rebuild the L2P table (Section 2.2 / Fig. 8)
                spare={
                    "lpa": lpa,
                    "tag": request.tag,
                    "seq": self._write_seq,
                    "secure": secure,
                },
            )
            self._write_seq += 1
            # the L2P update is the commit point: the old copy turns stale
            # in the same instant the new copy becomes the live version.
            old = self.l2p.map(lpa, gppa)
            if old != UNMAPPED:
                events.append(self._invalidate(old, lpa, "host-update"))
            self.status.set_written(gppa, secure)
            self.observer.on_program(gppa, lpa, request.tag, secure)
        # sanitization is part of the same request: it completes before
        # logical time advances (the lock manager acts "immediately").
        with self.timing.sanitize_region():
            self._sanitize_host_batch(events)
        self._ensure_space_all_touched(events)
        ticks = request.npages * (
            self.geometry.page_size_bytes // LOGICAL_TIME_WRITE_BYTES
        )
        self._logical_time += ticks
        self.observer.on_logical_tick(ticks)

    def _host_trim(self, request: IoRequest) -> None:
        events: list[InvalidationEvent] = []
        for lpa in request.lpas():
            self.stats.host_trims += 1
            old = self.l2p.unmap(lpa)
            if old != UNMAPPED:
                events.append(self._invalidate(old, lpa, "host-trim"))
        with self.timing.sanitize_region():
            self._sanitize_host_batch(events)
        self._ensure_space_all_touched(events)

    # ------------------------------------------------------------------
    # fault-tolerant flash access
    # ------------------------------------------------------------------
    def _read_flash_page(self, chip_id: int, ppn: int) -> ReadResult:
        """Read with the bounded retry loop real controllers implement.

        Transient sense failures re-roll on the next attempt; torn pages
        fail deterministically and exhaust the budget.  Every attempt is
        a real flash read (timed and counted); the final failure
        re-raises for the caller to translate.
        """
        attempts = self.config.read_retry_limit
        chip_read = self.chips[chip_id].read_page
        timing_read = self.timing.read
        stats = self.stats
        for attempt in range(attempts):
            try:
                result = chip_read(ppn)
            except UncorrectableError:
                timing_read(chip_id)
                stats.flash_reads += 1
                if attempt + 1 >= attempts:
                    raise
                stats.read_retries += 1
            else:
                timing_read(chip_id)
                stats.flash_reads += 1
                return result
        raise AssertionError("unreachable")  # pragma: no cover

    def _salvage_read(self, chip_id: int, ppn: int) -> ReadResult:
        """Last-resort read of a live page past the retry budget.

        Models the soft-decode / voltage-shift heroics controllers keep
        for GC of a must-not-lose page.  Injection and the wear gate are
        suspended: salvage succeeds against transient faults and against
        wear-degraded (but physically intact) cells -- the only ways a
        *live* page can exhaust the normal budget -- preserving the L2P
        bijection.
        """
        self.stats.salvage_reads += 1
        self.timing.read(chip_id)
        self.stats.flash_reads += 1
        with ExitStack() as stack:
            if self.fault_injector is not None:
                stack.enter_context(self.fault_injector.suspended())
            if self.wear_gate is not None:
                stack.enter_context(self.wear_gate.suspended())
            return self.chips[chip_id].read_page(ppn)

    # ------------------------------------------------------------------
    # write-path plumbing
    # ------------------------------------------------------------------
    def _pick_chip(self) -> int:
        chip_id = self._rr_chip
        self._rr_chip = (self._rr_chip + 1) % self.n_chips
        return chip_id

    def _program_new_page(
        self, chip_id: int, data: object, spare: dict, stream: str = HOST_STREAM
    ) -> int:
        """Allocate + program one page on a chip (no GC trigger).

        Survives injected faults: a program status-fail consumes the
        torn page (marked dead) and the write remaps to the next free
        page; a failed lazy erase retires the grown-bad block and
        allocation moves on to another block.
        """
        pages_per_block = self._pages_per_block
        guard = self._blocks_per_chip * pages_per_block
        chip_program = self.chips[chip_id].program_page
        alloc_page = self.alloc.allocate_page
        timing_program = self.timing.program
        stats = self.stats
        gppa_base = chip_id * self._pages_per_chip
        while guard > 0:
            guard -= 1
            block, offset, erase_block = alloc_page(chip_id, stream)
            if erase_block is not None and not self._erase_block_now(
                chip_id, erase_block
            ):
                # the block was scrubbed + retired (allocator cursor
                # dropped); pick up a different block next iteration
                continue
            # allocator addresses are in range by construction, so the
            # geometry.ppn / helper bounds checks are inlined away here
            ppn = block * pages_per_block + offset
            gb = chip_id * self._blocks_per_chip + block
            try:
                chip_program(ppn, data, spare)
            except ProgramFailError:
                # rare path: spelled self.* so the SIM06 accounting
                # pairing stays visible to the lint
                self.timing.program(chip_id)
                self.stats.flash_programs += 1
                self._note_program_failure(gb, gppa_base + ppn)
                continue
            timing_program(chip_id)
            stats.flash_programs += 1
            self._block_last_program[gb] = stats.flash_programs
            return gppa_base + ppn
        raise RuntimeError(
            f"chip {chip_id}: no programmable page found (fault storm)"
        )

    def _note_program_failure(self, gb: int, gppa: int) -> None:
        """Account one torn page and condemn its block over threshold.

        The torn page is physically consumed, so it runs through the
        observer stream like a zero-length pad -- shadow checkers track
        it -- and ends up INVALID (GC reclaims it with the block).
        """
        self.stats.program_fails += 1
        self.status.set_written(gppa, False)
        self.observer.on_program(gppa, -1, None, False)
        self.status.set_invalid(gppa)
        self.observer.on_invalidate(gppa, -1, "program-fail")
        self._block_program_fails[gb] += 1
        threshold = self.config.program_fail_retire_threshold
        if (
            threshold > 0
            and self._block_program_fails[gb] >= threshold
            and gb not in self._bad_blocks
        ):
            self._condemned.add(gb)

    def _erase_block_now(self, chip_id: int, local_block: int) -> bool:
        """Erase one block; a status-fail scrubs + retires it instead.

        Returns True when the block is erased and reusable, False when
        it went to the grown-bad table (its pages stay INVALID).  Every
        erase in the FTL -- lazy reuse, sanitize-now, fallback chains --
        funnels through here, so this is the single place P/E exhaustion
        (``WearOutError``) is translated into grown-bad retirement: the
        worn block is scrubbed (scrub pulses do not need the erase
        circuitry, so the sanitization guarantee survives end-of-life)
        and pulled from service like any other bad block.
        """
        gb = self.global_block(chip_id, local_block)
        try:
            self.chips[chip_id].erase_block(local_block)
        except EraseFailError:
            self.stats.erase_fails += 1
            self._retire_bad_block(chip_id, local_block)
            return False
        except WearOutError:
            # raised before any erase pulse: the block still holds its
            # data and its counters; retire it the scrubbed way.
            self.stats.worn_out_blocks += 1
            if self.stats.worn_out_blocks == 1:
                self.stats.host_writes_at_first_wearout = self.stats.host_writes
            self._retire_bad_block(chip_id, local_block)
            return False
        self.timing.erase(chip_id)
        self.stats.flash_erases += 1
        self.status.set_erased_block(gb)
        self._pending_victims.discard(gb)
        self._block_reads[gb] = 0
        self._block_program_fails[gb] = 0
        self.observer.on_erase(gb)
        if self.config.wear_leveling_threshold is not None:
            self._wear_level_due.add(chip_id)
        return True

    def _retire_bad_block(self, chip_id: int, local_block: int) -> None:
        """Grown-bad retirement: destroy residual data, pull from service.

        The data a failed erase leaves behind can include secured stale
        copies, so every programmed wordline is scrubbed first (scrub
        pulses do not depend on the erase circuitry) -- the sanitization
        guarantee survives the fault.  The RETIRED mark lives on the
        chip, so the grown-bad table persists across power loss.
        """
        gb = self.global_block(chip_id, local_block)
        chip = self.chips[chip_id]
        block = chip.blocks[local_block]
        for wordline in range(self.geometry.wordlines_per_block):
            if wordline * self.geometry.pages_per_wordline >= block.next_page:
                break
            chip.scrub_wordline(local_block, wordline)
            self.timing.scrub(chip_id)
            self.stats.scrubs += 1
        base = gb * self.geometry.pages_per_block
        for gppa in range(base, base + self.geometry.pages_per_block):
            if self.status.get(gppa) is PageStatus.INVALID:
                self.observer.on_sanitize(gppa, "scrub")
        block.mark_retired()
        self.alloc.retire_block(chip_id, local_block)
        self._pending_victims.discard(gb)
        self._condemned.discard(gb)
        self._bad_blocks.add(gb)
        self.stats.grown_bad_blocks += 1

    def _invalidate(self, gppa: int, lpa: int, reason: str) -> InvalidationEvent:
        prev = self.status.set_invalid(gppa)
        self.observer.on_invalidate(gppa, lpa, reason)
        return InvalidationEvent(
            gppa=gppa,
            lpa=lpa,
            was_secured=prev is PageStatus.SECURED,
            reason=reason,
        )

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def _ensure_space(self, chip_id: int) -> None:
        """Run GC on a chip until its block reserve is healthy.

        GC starts when the reserve drops below ``gc_threshold_blocks`` and
        keeps collecting until ``gc_target_blocks`` (hysteresis, so GC
        work arrives in bursts instead of once per write).
        """
        if self.alloc.reserve_blocks(chip_id) >= self.config.gc_threshold_blocks:
            return
        guard = self.geometry.blocks_per_chip + 1
        while (
            self.alloc.reserve_blocks(chip_id) < self.config.gc_target_blocks
            and guard > 0
        ):
            if not self._collect_chip(chip_id):
                break
            guard -= 1

    def _ensure_space_all_touched(self, events: list[InvalidationEvent]) -> None:
        """Re-check reserves of chips touched by sanitization relocations."""
        touched = {self.split_gppa(e.gppa)[0] for e in events}
        for chip_id in touched:
            self._ensure_space(chip_id)

    def _select_victim(self, chip_id: int) -> int | None:
        """Pick a GC victim using the configured policy.

        Only fully-programmed, non-pending, non-active blocks with at
        least one invalid page are candidates (a fully-live victim would
        make no progress regardless of policy).
        """
        chip = self.chips[chip_id]
        actives = set(self.alloc.active_blocks(chip_id))
        best: int | None = None
        best_score = float("-inf")
        for local_block in range(self.geometry.blocks_per_chip):
            gb = self.global_block(chip_id, local_block)
            if gb in self._pending_victims or local_block in actives:
                continue
            if gb in self._bad_blocks:
                continue  # grown-bad: nothing to reclaim, ever
            block = chip.blocks[local_block]
            if not block.is_full:
                continue
            invalid = self.status.invalid_count(gb)
            if invalid == 0:
                continue
            if gb in self._condemned:
                # over the program-fail threshold: drain it first so the
                # retirement happens before more writes land near it
                return local_block
            score = self._gc_policy(
                VictimView(
                    global_block=gb,
                    invalid_pages=invalid,
                    live_pages=self.status.live_count(gb),
                    pages_per_block=self.geometry.pages_per_block,
                    erase_count=block.erase_count,
                    last_program_seq=self._block_last_program[gb],
                    now_seq=self.stats.flash_programs,
                    pe_limit=self.config.pe_limit,
                )
            )
            if score > best_score:
                best_score = score
                best = local_block
        return best

    def _collect_chip(self, chip_id: int) -> bool:
        """One GC round: evacuate one victim block; returns success."""
        victim = self._select_victim(chip_id)
        if victim is None:
            return False
        gb = self.global_block(chip_id, victim)
        self.stats.gc_invocations += 1
        with self.tel.tracer.span("gc", cat="ftl.gc", chip=chip_id, block=gb):
            events = [
                self._move_page(gppa, reason="gc")
                for gppa in self.status.live_pages(gb)
            ]
            self.stats.gc_copies += len(events)
            self._finish_victim(chip_id, victim, events)
        return True

    def _move_page(self, gppa: int, reason: str) -> InvalidationEvent:
        """Copy one live page to a fresh page on the same chip and remap.

        Used by GC and by the relocation passes of the erase- and
        scrub-based sanitization baselines.  The caller accounts the copy
        in the appropriate stats bucket.
        """
        chip_id, ppn = divmod(gppa, self._pages_per_chip)  # split_gppa, inlined
        lpa = self.l2p.reverse(gppa)
        was_secure = self.status.get(gppa) is PageStatus.SECURED
        try:
            result = self._read_flash_page(chip_id, ppn)
        except UncorrectableError:
            # a live page must not be lost to a transient fault storm:
            # fall through to the salvage path (suspended injection)
            self.stats.read_failures += 1
            result = self._salvage_read(chip_id, ppn)
        stream = GC_STREAM if self.config.separate_gc_stream else HOST_STREAM
        # result.spare is already a fresh per-read copy (and the chip
        # copies again on program), so it is passed through uncopied
        new_gppa = self._program_new_page(
            chip_id, data=result.data, spare=result.spare, stream=stream
        )
        old = self.l2p.map(lpa, new_gppa)
        assert old == gppa, "page move raced with the L2P table"
        event = self._invalidate(gppa, lpa, reason)
        self.status.set_written(new_gppa, was_secure)
        self.observer.on_program(new_gppa, lpa, result.spare.get("tag"), was_secure)
        return event

    # ------------------------------------------------------------------
    # read-disturb refresh (Section 6's "flash management task" family)
    # ------------------------------------------------------------------
    def _refresh_block(self, gb: int) -> None:
        """Relocate a heavily-read block's live data and retire it.

        Like GC, refresh is a flash-management move of valid pages --
        so the variant's sanitization hook runs on the stale copies it
        leaves behind (a secured page's old copy gets locked/scrubbed/
        erased exactly as if GC had moved it).
        """
        chip_id, local_block = self.split_global_block(gb)
        if gb in self._pending_victims:
            return  # already collected; erase will reset the counter
        if local_block in self.alloc.active_blocks(chip_id):
            return  # open blocks are not refreshable; retry once closed
        self.stats.refreshes += 1
        with self.tel.tracer.span(
            "refresh", cat="ftl.refresh", chip=chip_id, block=gb
        ):
            events = [
                self._move_page(gppa, reason="refresh")
                for gppa in self.status.live_pages(gb)
            ]
            self.stats.refresh_copies += len(events)
            self._block_reads[gb] = 0
            self._finish_victim(chip_id, local_block, events)
        self._ensure_space(chip_id)

    # ------------------------------------------------------------------
    # static wear leveling (another Section-6 flash-management task)
    # ------------------------------------------------------------------
    def _drain_wear_leveling(self) -> None:
        """Re-check wear spread on every chip an erase just touched."""
        due = sorted(self._wear_level_due)
        self._wear_level_due.clear()
        for chip_id in due:
            self._maybe_level_wear(chip_id)

    def _maybe_level_wear(self, chip_id: int) -> None:
        """Migrate the coldest block's live data when wear spreads.

        Classic static wear leveling: dynamic allocation can only even
        out wear among blocks that *circulate*; a block pinned full of
        cold data never rejoins the pool and falls ever further behind.
        When a full block's erase count lags the chip's in-service
        maximum by ``wear_leveling_threshold`` or more, the coldest such
        laggard is evacuated exactly like a GC victim (its stale copies
        run through the variant's sanitization hook) and queued for
        reuse, so the hot write stream starts wearing it.  Anchoring the
        trigger on the *victim's* lag (not just the chip-wide min, which
        a soon-to-circulate free block can pin forever) makes the
        process convergent: once every full block is within the
        threshold of the leader there is nothing left to migrate.
        Migration transiently draws on the free pool for its copies --
        at most one block open mid-move (the stream cursor absorbs the
        rest), plus one spare in case that open lazy-erases into a
        wear-out retirement -- so it defers on a leaner chip until the
        next erase re-marks it due.  Ties break on
        block index; the whole decision is a pure function of table
        state, keeping determinism.
        """
        threshold = self.config.wear_leveling_threshold
        if threshold is None:
            return
        if self.alloc.reserve_blocks(chip_id) < 2:
            return
        chip = self.chips[chip_id]
        base_gb = chip_id * self._blocks_per_chip
        hi: int | None = None
        for local_block in range(self._blocks_per_chip):
            if base_gb + local_block in self._bad_blocks:
                continue  # retired: out of service, not levelable wear
            count = chip.blocks[local_block].erase_count
            if hi is None or count > hi:
                hi = count
        if hi is None:
            return
        actives = set(self.alloc.active_blocks(chip_id))
        best: int | None = None
        best_key: tuple[int, int] | None = None
        for local_block in range(self._blocks_per_chip):
            gb = base_gb + local_block
            if (
                gb in self._bad_blocks
                or gb in self._pending_victims
                or gb in self._condemned
                or local_block in actives
            ):
                continue
            block = chip.blocks[local_block]
            if hi - block.erase_count < threshold:
                continue  # circulating healthily; migration buys nothing
            if not block.is_full or self.status.live_count(gb) == 0:
                continue
            key = (block.erase_count, local_block)
            if best_key is None or key < best_key:
                best_key = key
                best = local_block
        if best is None:
            return  # nothing cold and migratable right now
        gb = base_gb + best
        self.stats.wear_levelings += 1
        with self.tel.tracer.span(
            "wear-level", cat="ftl.wear", chip=chip_id, block=gb
        ):
            events = [
                self._move_page(gppa, reason="wear-level")
                for gppa in self.status.live_pages(gb)
            ]
            self.stats.wear_level_copies += len(events)
            self._finish_victim(chip_id, best, events)
        self._ensure_space(chip_id)

    # ------------------------------------------------------------------
    # sanitization hooks (overridden by the evaluated variants)
    # ------------------------------------------------------------------
    def _sanitize_host_batch(self, events: list[InvalidationEvent]) -> None:
        """Called after each host write/trim with its invalidations."""
        # baseline: stale data just sits there until GC (Section 2.2).

    def _finish_victim(
        self,
        chip_id: int,
        local_block: int,
        events: list[InvalidationEvent],
    ) -> None:
        """Called after GC evacuated a victim; default: lazy erase."""
        self._retire_victim(chip_id, local_block)

    def _retire_victim(self, chip_id: int, local_block: int) -> None:
        gb = self.global_block(chip_id, local_block)
        if gb in self._condemned:
            # too many program failures: erase now (sanitizing whatever
            # the evacuation left) and pull the block from service
            # instead of queueing it for reuse.  A failed erase lands in
            # _retire_bad_block, which retires it the scrubbed way.
            if self._erase_block_now(chip_id, local_block):
                self.chips[chip_id].blocks[local_block].mark_retired()
                self.alloc.retire_block(chip_id, local_block)
                self._condemned.discard(gb)
                self._bad_blocks.add(gb)
                self.stats.grown_bad_blocks += 1
            return
        self.chips[chip_id].blocks[local_block].mark_erase_pending()
        self.alloc.retire_victim(chip_id, local_block)
        self._pending_victims.add(gb)

    # ------------------------------------------------------------------
    # inspection helpers
    # ------------------------------------------------------------------
    def mapped_gppa(self, lpa: int) -> int:
        return self.l2p.lookup(lpa)

    def raw_device_dump(self) -> dict[int, object]:
        """Forensic attacker view across all chips (gppa -> payload)."""
        out: dict[int, object] = {}
        for chip_id, chip in enumerate(self.chips):
            for ppn, data in chip.raw_dump().items():
                out[self.make_gppa(chip_id, ppn)] = data
        return out

    def elapsed_us(self) -> float:
        return self.timing.elapsed_us

    # ------------------------------------------------------------------
    # checkpoint support (repro.checkpoint)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """FTL tables and cursors only -- chip arrays, the fault
        injector, the timing model, and the sanitizer are separate
        checkpoint sections (see repro.checkpoint.device)."""
        return {
            "l2p": self.l2p.state_dict(),
            "status": self.status.state_dict(),
            "alloc": self.alloc.state_dict(),
            "pending_victims": set(self._pending_victims),
            "rr_chip": self._rr_chip,
            "write_seq": self._write_seq,
            "logical_time": self._logical_time,
            "block_last_program": list(self._block_last_program),
            "block_reads": list(self._block_reads),
            "bad_blocks": set(self._bad_blocks),
            "condemned": set(self._condemned),
            "block_program_fails": list(self._block_program_fails),
            "wear_level_due": set(self._wear_level_due),
            "stats": self.stats.to_dict(),
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.l2p.load_state_dict(state["l2p"])
        self.status.load_state_dict(state["status"])
        self.alloc.load_state_dict(state["alloc"])
        self._pending_victims = set(state["pending_victims"])
        self._rr_chip = state["rr_chip"]
        self._write_seq = state["write_seq"]
        self._logical_time = state["logical_time"]
        self._block_last_program = list(state["block_last_program"])
        self._block_reads = list(state["block_reads"])
        self._bad_blocks = set(state["bad_blocks"])
        self._condemned = set(state["condemned"])
        self._block_program_fails = list(state["block_program_fails"])
        self._wear_level_due = set(state.get("wear_level_due", ()))
        self.stats = DeviceStats.from_dict(state["stats"])
