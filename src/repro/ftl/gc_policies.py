"""Garbage-collection victim-selection policies.

The paper's FlashBench FTL uses greedy victim selection; this module
makes the policy pluggable so the design choice can be ablated:

* **greedy** -- the fully-programmed block with the most invalid pages;
  minimizes copies *now* (the paper's policy, and our default);
* **cost-benefit** -- classic Rosenblum/Ousterhout score
  ``benefit/cost = (1 - u) * age / (1 + u)`` with ``u`` the live
  fraction; prefers old, mostly-dead blocks, which segregates hot and
  cold data over time;
* **fifo** -- oldest-programmed block first, regardless of liveness
  (a deliberately-bad baseline that bounds the policy headroom);
* **wear-aware greedy** -- greedy, tie-broken toward low-erase-count
  blocks so wear stays even (the wear-levelling design point).

Policies are pure functions over the FTL's tables: they receive a
:class:`VictimView` per candidate block and return a score; the FTL
collects the argmax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class VictimView:
    """Everything a policy may inspect about one candidate block."""

    global_block: int
    invalid_pages: int
    live_pages: int
    pages_per_block: int
    erase_count: int
    #: write sequence number of the block's last program (age proxy).
    last_program_seq: int
    #: current global write sequence number.
    now_seq: int
    #: the device's configured P/E endurance limit, or None (no limit).
    #: Wear-aware policies normalize their erase-count terms by it.
    pe_limit: int | None = None

    @property
    def utilization(self) -> float:
        """Live fraction u of the block."""
        return self.live_pages / self.pages_per_block

    @property
    def age(self) -> float:
        """Writes since the block was last programmed."""
        return float(max(0, self.now_seq - self.last_program_seq))


PolicyFn = Callable[[VictimView], float]


def greedy(view: VictimView) -> float:
    """Most invalid pages wins (the paper's FTL)."""
    return float(view.invalid_pages)


def cost_benefit(view: VictimView) -> float:
    """Rosenblum/Ousterhout benefit-to-cost score."""
    u = view.utilization
    if u >= 1.0:
        return -1.0
    return (1.0 - u) * (1.0 + view.age) / (1.0 + u)


def fifo(view: VictimView) -> float:
    """Oldest block first (bounds the bad end of the policy space)."""
    return view.age


#: erase-count normalization cap for wear tie-breaks when no ``pe_limit``
#: is configured.  The tie term is ``min(count, cap) / (cap + 1)``, which
#: is provably in [0, 1) for *any* erase count -- the historical
#: ``count / 1e6`` form silently broke (the term crossed one page and
#: started overriding the greedy score) once counts reached 1e6.
WEAR_TIEBREAK_CAP = 1_000_000


def wear_aware_greedy(view: VictimView) -> float:
    """Greedy with a low-wear tie-break.

    The erase-count term is normalized by the configured ``pe_limit``
    (or :data:`WEAR_TIEBREAK_CAP`) and clamped, so it stays strictly
    below one page for any endurance setting: it can only break ties
    between equally-invalid candidates, never outvote a whole page.
    """
    cap = view.pe_limit if view.pe_limit is not None else WEAR_TIEBREAK_CAP
    worn = min(view.erase_count, cap) / (cap + 1)
    return float(view.invalid_pages) - worn


GC_POLICIES: dict[str, PolicyFn] = {
    "greedy": greedy,
    "cost-benefit": cost_benefit,
    "fifo": fifo,
    "wear-aware": wear_aware_greedy,
}


def policy_by_name(name: str) -> PolicyFn:
    try:
        return GC_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown GC policy {name!r}; choose from {sorted(GC_POLICIES)}"
        ) from None
