"""Extended page-status table -- Section 6.

A page in SecureSSD is ``free``, ``valid``, ``invalid``, or ``secured``
(the fourth state is the paper's extension: written data whose future
invalidation must be sanitized).  The table also keeps per-block live and
invalid counters so greedy GC victim selection and the lock manager's
"is the whole block dead?" test are O(1).
"""

from __future__ import annotations

from enum import IntEnum


class PageStatus(IntEnum):
    """FTL view of one physical page."""

    FREE = 0
    VALID = 1      # live, security-insensitive
    INVALID = 2    # dead, awaiting erase
    SECURED = 3    # live, security-sensitive


class StatusTable:
    """Per-page status plus per-block aggregates."""

    def __init__(self, physical_pages: int, pages_per_block: int) -> None:
        if physical_pages <= 0 or pages_per_block <= 0:
            raise ValueError("sizes must be positive")
        if physical_pages % pages_per_block:
            raise ValueError("physical_pages must be a multiple of pages_per_block")
        self._status = [PageStatus.FREE] * physical_pages
        self._pages_per_block = pages_per_block
        n_blocks = physical_pages // pages_per_block
        self._live = [0] * n_blocks       # VALID + SECURED
        self._secured = [0] * n_blocks    # SECURED only
        self._invalid = [0] * n_blocks

    # ------------------------------------------------------------------
    @property
    def physical_pages(self) -> int:
        return len(self._status)

    @property
    def n_blocks(self) -> int:
        return len(self._live)

    def block_of(self, gppa: int) -> int:
        return gppa // self._pages_per_block

    def get(self, gppa: int) -> PageStatus:
        return self._status[gppa]

    # ------------------------------------------------------------------
    def set_written(self, gppa: int, secure: bool) -> None:
        """FREE -> VALID/SECURED on program."""
        if self._status[gppa] is not PageStatus.FREE:
            raise ValueError(f"gppa {gppa} is {self._status[gppa].name}, not FREE")
        blk = self.block_of(gppa)
        self._status[gppa] = PageStatus.SECURED if secure else PageStatus.VALID
        self._live[blk] += 1
        if secure:
            self._secured[blk] += 1

    def set_invalid(self, gppa: int) -> PageStatus:
        """VALID/SECURED -> INVALID; returns the previous status."""
        prev = self._status[gppa]
        if prev not in (PageStatus.VALID, PageStatus.SECURED):
            raise ValueError(f"gppa {gppa} is {prev.name}, cannot invalidate")
        blk = self.block_of(gppa)
        self._status[gppa] = PageStatus.INVALID
        self._live[blk] -= 1
        self._invalid[blk] += 1
        if prev is PageStatus.SECURED:
            self._secured[blk] -= 1
        return prev

    def set_erased_block(self, block_id: int) -> None:
        """All pages of a block -> FREE (block erase)."""
        base = block_id * self._pages_per_block
        for gppa in range(base, base + self._pages_per_block):
            self._status[gppa] = PageStatus.FREE
        self._live[block_id] = 0
        self._secured[block_id] = 0
        self._invalid[block_id] = 0

    # ------------------------------------------------------------------
    def live_count(self, block_id: int) -> int:
        return self._live[block_id]

    def secured_count(self, block_id: int) -> int:
        return self._secured[block_id]

    def invalid_count(self, block_id: int) -> int:
        return self._invalid[block_id]

    def live_pages(self, block_id: int) -> list[int]:
        """Physical pages of the block that are VALID or SECURED."""
        base = block_id * self._pages_per_block
        return [
            gppa
            for gppa in range(base, base + self._pages_per_block)
            if self._status[gppa] in (PageStatus.VALID, PageStatus.SECURED)
        ]

    def counts(self) -> dict[PageStatus, int]:
        out = {s: 0 for s in PageStatus}
        for s in self._status:
            out[s] += 1
        return out
