"""Extended page-status table -- Section 6.

A page in SecureSSD is ``free``, ``valid``, ``invalid``, or ``secured``
(the fourth state is the paper's extension: written data whose future
invalidation must be sanitized).  The table also keeps per-block live and
invalid counters so greedy GC victim selection and the lock manager's
"is the whole block dead?" test are O(1).
"""

from __future__ import annotations

from enum import IntEnum


class PageStatus(IntEnum):
    """FTL view of one physical page."""

    FREE = 0
    VALID = 1      # live, security-insensitive
    INVALID = 2    # dead, awaiting erase
    SECURED = 3    # live, security-sensitive


# module-level aliases: the setters below run once per programmed or
# invalidated page, and a local/global load is much cheaper than two
# enum attribute lookups per call.
_FREE = PageStatus.FREE
_VALID = PageStatus.VALID
_INVALID = PageStatus.INVALID
_SECURED = PageStatus.SECURED


class StatusTable:
    """Per-page status plus per-block aggregates."""

    def __init__(self, physical_pages: int, pages_per_block: int) -> None:
        if physical_pages <= 0 or pages_per_block <= 0:
            raise ValueError("sizes must be positive")
        if physical_pages % pages_per_block:
            raise ValueError("physical_pages must be a multiple of pages_per_block")
        self._status = [PageStatus.FREE] * physical_pages
        self._pages_per_block = pages_per_block
        n_blocks = physical_pages // pages_per_block
        self._live = [0] * n_blocks       # VALID + SECURED
        self._secured = [0] * n_blocks    # SECURED only
        self._invalid = [0] * n_blocks

    # ------------------------------------------------------------------
    @property
    def physical_pages(self) -> int:
        return len(self._status)

    @property
    def n_blocks(self) -> int:
        return len(self._live)

    def block_of(self, gppa: int) -> int:
        return gppa // self._pages_per_block

    def get(self, gppa: int) -> PageStatus:
        return self._status[gppa]

    # ------------------------------------------------------------------
    def set_written(self, gppa: int, secure: bool) -> None:
        """FREE -> VALID/SECURED on program."""
        status = self._status
        if status[gppa] is not _FREE:
            raise ValueError(f"gppa {gppa} is {status[gppa].name}, not FREE")
        blk = gppa // self._pages_per_block
        status[gppa] = _SECURED if secure else _VALID
        self._live[blk] += 1
        if secure:
            self._secured[blk] += 1

    def set_invalid(self, gppa: int) -> PageStatus:
        """VALID/SECURED -> INVALID; returns the previous status."""
        status = self._status
        prev = status[gppa]
        if prev is not _VALID and prev is not _SECURED:
            raise ValueError(f"gppa {gppa} is {prev.name}, cannot invalidate")
        blk = gppa // self._pages_per_block
        status[gppa] = _INVALID
        self._live[blk] -= 1
        self._invalid[blk] += 1
        if prev is _SECURED:
            self._secured[blk] -= 1
        return prev

    def set_erased_block(self, block_id: int) -> None:
        """All pages of a block -> FREE (block erase)."""
        base = block_id * self._pages_per_block
        for gppa in range(base, base + self._pages_per_block):
            self._status[gppa] = PageStatus.FREE
        self._live[block_id] = 0
        self._secured[block_id] = 0
        self._invalid[block_id] = 0

    # ------------------------------------------------------------------
    def live_count(self, block_id: int) -> int:
        return self._live[block_id]

    def secured_count(self, block_id: int) -> int:
        return self._secured[block_id]

    def invalid_count(self, block_id: int) -> int:
        return self._invalid[block_id]

    def live_pages(self, block_id: int) -> list[int]:
        """Physical pages of the block that are VALID or SECURED."""
        base = block_id * self._pages_per_block
        status = self._status
        return [
            gppa
            for gppa in range(base, base + self._pages_per_block)
            if status[gppa] is _VALID or status[gppa] is _SECURED
        ]

    def counts(self) -> dict[PageStatus, int]:
        out = {s: 0 for s in PageStatus}
        for s in self._status:
            out[s] += 1
        return out

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, list[int]]:
        """Checkpoint payload; statuses as ints (4x smaller than tags)."""
        return {
            "status": [int(s) for s in self._status],
            "live": list(self._live),
            "secured": list(self._secured),
            "invalid": list(self._invalid),
        }

    def load_state_dict(self, state: dict[str, list[int]]) -> None:
        if len(state["status"]) != len(self._status):
            raise ValueError("status checkpoint does not match table geometry")
        self._status = [PageStatus(v) for v in state["status"]]
        self._live = list(state["live"])
        self._secured = list(state["secured"])
        self._invalid = list(state["invalid"])
