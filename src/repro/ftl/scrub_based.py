"""scrSSD: scrubbing-based immediate sanitization -- Sections 4 and 7.

When a secured page is invalidated, scrSSD destroys it with a one-shot
scrub pulse on its wordline.  In TLC flash a wordline holds three pages,
so any live sibling pages must first be relocated -- the copy overhead
the paper quantifies (WAF up to 4.41x, IOPS ~34 % of baseline).  The
scrub pulse itself is modelled at 100 us, matching Section 7 ("we set
the scrubbing latency to 100 us assuming that the one-shot programming
scheme is used").

Two bookkeeping subtleties the real design would face are modelled
explicitly:

* a stale copy in the chip's *open* block can sit on a wordline whose
  tail pages are not yet programmed; scrubbing would make those pages
  unusable (their cells end high-Vth, not erased), so the FTL pads them
  with dummy programs first;
* scrubbed pages remain *programmed* garbage until the block is erased,
  so they are left INVALID and reclaimed by normal GC.
"""

from __future__ import annotations

from repro.ftl.base import InvalidationEvent, PageMappedFtl
from repro.ftl.page_status import PageStatus


class ScrubBasedFtl(PageMappedFtl):
    """scrSSD: relocate wordline siblings, then scrub the wordline."""

    name = "scrSSD"
    tracks_secure = True
    #: every secured stale copy's wordline is scrubbed within the batch.
    sanitize_scope = "all"
    #: one-shot scrub pulse latency (Section 7).
    t_scrub_us = 100.0

    # ------------------------------------------------------------------
    def _sanitize_host_batch(self, events: list[InvalidationEvent]) -> None:
        for gb, wordline in self._wordlines_of(events):
            self._scrub_wordline(gb, wordline, relocate=True)

    def _finish_victim(
        self,
        chip_id: int,
        local_block: int,
        events: list[InvalidationEvent],
    ) -> None:
        # the victim is fully dead after GC, so no relocation is needed --
        # but its wordlines holding secured stale copies must be scrubbed
        # before the block waits (possibly long) for its lazy erase.
        for gb, wordline in self._wordlines_of(events):
            self._scrub_wordline(gb, wordline, relocate=False)
        self._retire_victim(chip_id, local_block)

    # ------------------------------------------------------------------
    def _wordlines_of(
        self, events: list[InvalidationEvent]
    ) -> list[tuple[int, int]]:
        """Distinct (global block, wordline) pairs holding secured events."""
        seen: set[tuple[int, int]] = set()
        out: list[tuple[int, int]] = []
        for event in events:
            if not event.was_secured:
                continue
            gb = self.block_of_gppa(event.gppa)
            offset = event.gppa % self.geometry.pages_per_block
            key = (gb, self.geometry.wordline_of(offset))
            if key not in seen:
                seen.add(key)
                out.append(key)
        return out

    def _scrub_wordline(self, gb: int, wordline: int, relocate: bool) -> None:
        with self.tel.tracer.span(
            "scrub_pass", cat="ftl.sanitize", block=gb, wordline=wordline
        ), self.timing.sanitize_region():
            self._scrub_wordline_inner(gb, wordline, relocate)

    def _scrub_wordline_inner(
        self, gb: int, wordline: int, relocate: bool
    ) -> None:
        chip_id, local_block = self.split_global_block(gb)
        base_offset = wordline * self.geometry.pages_per_wordline
        base_gppa = gb * self.geometry.pages_per_block + base_offset
        if relocate:
            # pad FIRST: it pushes the chip's program cursor past this
            # wordline, so sibling relocations cannot land on the very
            # wordline the scrub pulse is about to destroy.
            self._pad_open_wordline(chip_id, local_block, wordline)
            for sibling in range(self.geometry.pages_per_wordline):
                gppa = base_gppa + sibling
                if self.status.get(gppa) in (PageStatus.VALID, PageStatus.SECURED):
                    self._move_page(gppa, reason="scrub-relocate")
                    self.stats.relocation_copies += 1
        self.chips[chip_id].scrub_wordline(
            local_block, wordline, latency_us=self.t_scrub_us
        )
        self.timing.scrub(chip_id)
        self.stats.scrubs += 1
        for sibling in range(self.geometry.pages_per_wordline):
            gppa = base_gppa + sibling
            if self.status.get(gppa) is PageStatus.INVALID:
                self.observer.on_sanitize(gppa, "scrub")

    def _pad_open_wordline(
        self, chip_id: int, local_block: int, wordline: int
    ) -> None:
        """Dummy-program a scrub target's unwritten tail pages.

        Only relevant when the wordline lives in the chip's open block and
        program order has not passed it yet; the pads keep the block's
        sequential-program invariant while letting the scrub pulse destroy
        the whole wordline safely.
        """
        stream = self.alloc.stream_of_block(chip_id, local_block)
        if stream is None:
            return
        last_offset = (wordline + 1) * self.geometry.pages_per_wordline - 1
        while True:
            position = self.alloc.active_position(chip_id, stream)
            if position is None:
                break
            active_block, next_offset = position
            if active_block != local_block or next_offset > last_offset:
                break
            gppa = self._program_new_page(
                chip_id, data=None, spare={"pad": True}, stream=stream
            )
            self.status.set_written(gppa, False)
            # pads are FTL-internal traffic, but the observer stream must
            # still see every page transition or downstream auditors (and
            # the runtime sanitizer's shadow table) lose track of them.
            self.observer.on_program(gppa, -1, None, False)
            self.status.set_invalid(gppa)
            self.observer.on_invalidate(gppa, -1, "pad")
