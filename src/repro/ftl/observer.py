"""Observer hooks into FTL-internal events.

The VerTrace profiler (Section 3) and the sanitization auditor need to
see what the FTL does to physical pages: programs, invalidations,
sanitizations (lock/scrub/erase), and block erases.  The FTL publishes
those through this minimal observer protocol so the measurement tools
stay decoupled from FTL internals -- mirroring how the paper bolts its
logger module onto FlashBench's emulated storage model.
"""

from __future__ import annotations

from typing import Any, Protocol


class FtlObserver(Protocol):
    """Callbacks invoked synchronously by the FTL."""

    def on_program(self, gppa: int, lpa: int, tag: object, secure: bool) -> None:
        """A physical page was programmed with host (or GC-moved) data."""

    def on_invalidate(self, gppa: int, lpa: int, reason: str) -> None:
        """A physical page's data became stale (host update/trim or GC move)."""

    def on_sanitize(self, gppa: int, method: str) -> None:
        """A physical page's data became irrecoverable before erase
        (method: "plock" | "block_lock" | "scrub" | "erase" |
        "key_delete")."""

    def on_erase(self, global_block: int) -> None:
        """A block was physically erased (all its pages destroyed)."""

    def on_logical_tick(self, ticks: int) -> None:
        """Logical time advanced (one tick per 4-KiB host write, Sec. 3)."""

    def on_lock_deferred(self, chip_id: int, n_locks: int, deferred_us: float) -> None:
        """A batch of deferred lock pulses drained on a chip.

        Emitted by the :mod:`repro.sim` sanitization-deferral scheduling
        policy when it flushes pending pLock/bLock *pulses* into an idle
        window (or ahead of a read barrier).  ``deferred_us`` is how long
        the oldest pulse of the batch waited.  Deferral is a *timing*
        policy only -- the FTL's functional lock state was already
        applied at invalidation time -- so observers use this to audit
        the deferral window, not to track sanitization coverage.
        Optional: emitters must tolerate observers without it.
        """


def notify_optional(observer: Any, method: str, *args: Any) -> None:
    """Invoke an *optional* observer callback, tolerating its absence.

    The protocol grows optional callbacks over time (``on_lock_deferred``
    today); long-lived third-party observers may predate them.  Every
    emitter and forwarder routes optional calls through this helper so
    the tolerance rule lives in exactly one place instead of a
    ``getattr`` guard per call site.
    """
    fn = getattr(observer, method, None)
    if fn is not None:
        fn(*args)


class NullObserver:
    """Default observer: ignores everything."""

    def on_program(self, gppa: int, lpa: int, tag: object, secure: bool) -> None:
        pass

    def on_invalidate(self, gppa: int, lpa: int, reason: str) -> None:
        pass

    def on_sanitize(self, gppa: int, method: str) -> None:
        pass

    def on_erase(self, global_block: int) -> None:
        pass

    def on_logical_tick(self, ticks: int) -> None:
        pass

    def on_lock_deferred(self, chip_id: int, n_locks: int, deferred_us: float) -> None:
        pass
