"""Power-loss recovery: rebuild the FTL's volatile state from flash.

A real SSD loses its RAM-resident L2P table, page-status table, and
allocation state on power failure; the FTL reconstructs them by scanning
every programmed page's spare-area annotations (LPA + write sequence
number + security bit -- exactly what the write path stores, Section 2.2
/ Figure 8's OOB usage).  The newest sequence number wins per LPA; every
older copy is stale.

The Evanesco interaction is the interesting part and a direct corollary
of the paper's design: pAP/bAP flags live in *flash cells*, so locks
survive power loss, and the recovery scan simply cannot read a locked
page -- the chip returns zeros, the scanner classifies the page as dead,
and sanitized data stays sanitized across power cycles with no FTL
metadata needed.

Recovery also closes half-written blocks by padding them with dummy
programs (standard practice: it keeps the sequential-program invariant
and makes the block reclaimable by GC).

Note on cryptSSD: the key store is modelled as persistent (real designs
journal it to flash); only the mapping structures are rebuilt here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.block import BlockState
from repro.flash.errors import ProgramFailError, UncorrectableError
from repro.ftl.allocator import BlockAllocator
from repro.ftl.base import PageMappedFtl
from repro.ftl.mapping import L2PTable
from repro.ftl.page_status import StatusTable


@dataclass(frozen=True)
class RecoveryReport:
    """What the recovery scan found and rebuilt."""

    pages_scanned: int
    live_pages_recovered: int
    stale_pages_discarded: int
    locked_pages_skipped: int
    blocks_padded: int
    pad_programs: int
    #: pages the scan could not read even after the retry budget -- a
    #: program torn by the crash itself, typically.  They are classified
    #: stale (a torn page can never be the newest copy the host was
    #: acknowledged for) and reclaimed by GC like any dead page.
    unreadable_pages_skipped: int = 0

    @property
    def mapped_lpas(self) -> int:
        return self.live_pages_recovered


class PowerLossRecovery:
    """Rebuilds one FTL's volatile tables by scanning its chips."""

    def __init__(self, ftl: PageMappedFtl) -> None:
        self.ftl = ftl

    # ------------------------------------------------------------------
    def simulate_power_loss(self) -> None:
        """Drop every volatile structure (what a crash would destroy).

        Chip-resident state -- page contents, lock flags, erase counts --
        survives; the FTL's RAM tables and in-flight intents (the
        lazy-erase queue, the open-block cursor) do not.
        """
        ftl = self.ftl
        ftl.l2p = L2PTable(ftl.config.logical_pages, ftl.config.physical_pages)
        ftl.status = StatusTable(
            ftl.config.physical_pages, ftl.geometry.pages_per_block
        )
        ftl._pending_victims.clear()
        # RAM-resident fault bookkeeping dies with the power: the
        # grown-bad mirror is re-learned from the chips' RETIRED marks
        # during recovery, the condemnation intents are simply lost
        # (their blocks re-earn condemnation if they keep failing).
        ftl._bad_blocks.clear()
        ftl._condemned.clear()
        ftl._block_program_fails = [0] * len(ftl._block_program_fails)
        # the erase-pending *intent* is gone; physically these blocks are
        # just fully-programmed blocks again
        for chip in ftl.chips:
            for block in chip.blocks:
                if block.state is BlockState.ERASE_PENDING:
                    block.state = (
                        BlockState.FULL if block.is_full else BlockState.OPEN
                    )

    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Scan, pad, and rebuild; returns the recovery report."""
        with self.ftl.tel.tracer.span("recovery_scan", cat="ftl.recovery"):
            return self._recover_inner()

    def _recover_inner(self) -> RecoveryReport:
        ftl = self.ftl
        blocks_padded, pad_programs = self._pad_open_blocks()
        candidates, invalid, locked, scanned, unreadable = self._scan()
        winners = self._resolve(candidates)

        l2p = L2PTable(ftl.config.logical_pages, ftl.config.physical_pages)
        status = StatusTable(
            ftl.config.physical_pages, ftl.geometry.pages_per_block
        )
        stale = 0
        for lpa, (seq, gppa, secure) in winners.items():
            l2p.map(lpa, gppa)
            status.set_written(gppa, secure and ftl.tracks_secure)
        for seq, gppa, secure, lpa in candidates:
            if winners.get(lpa, (None, None, None))[1] != gppa:
                status.set_written(gppa, False)
                status.set_invalid(gppa)
                stale += 1
        for gppa in invalid:
            status.set_written(gppa, False)
            status.set_invalid(gppa)

        # served from each chip's incrementally maintained free set
        free_layout = [chip.free_blocks() for chip in ftl.chips]
        # the grown-bad table is chip-persistent (RETIRED block marks):
        # re-learn it so the allocator and GC keep excluding those blocks.
        retired_layout = [
            {
                block.index
                for block in chip.blocks
                if block.state is BlockState.RETIRED
            }
            for chip in ftl.chips
        ]
        ftl.l2p = l2p
        ftl.status = status
        ftl.alloc = BlockAllocator.from_layout(
            ftl.config.n_chips,
            ftl.geometry.blocks_per_chip,
            ftl.geometry.pages_per_block,
            free_layout,
            retired_blocks=retired_layout,
        )
        ftl._bad_blocks = {
            ftl.global_block(chip_id, index)
            for chip_id, retired in enumerate(retired_layout)
            for index in retired
        }
        ftl._pending_victims.clear()
        ftl._write_seq = (
            max((seq for seq, *_ in candidates), default=-1) + 1
        )
        # the rebuild happened outside the observer stream: a checked
        # FTL's shadow tables must re-adopt the recovered state.
        ftl.resync_checker()
        return RecoveryReport(
            pages_scanned=scanned,
            live_pages_recovered=len(winners),
            stale_pages_discarded=stale,
            locked_pages_skipped=locked,
            blocks_padded=blocks_padded,
            pad_programs=pad_programs,
            unreadable_pages_skipped=unreadable,
        )

    # ------------------------------------------------------------------
    def _pad_open_blocks(self) -> tuple[int, int]:
        """Dummy-program the unwritten tail of every half-open block."""
        ftl = self.ftl
        blocks_padded = 0
        pad_programs = 0
        for chip_id, chip in enumerate(ftl.chips):
            for block in chip.blocks:
                if block.state is not BlockState.OPEN:
                    continue
                blocks_padded += 1
                while not block.is_full:
                    ppn = ftl.geometry.ppn(block.index, block.next_page)
                    try:
                        chip.program_page(ppn, None, {"pad": True})
                    except ProgramFailError:
                        # a torn pad is still a pad: the page is consumed
                        # and dead either way, so padding proceeds
                        ftl.stats.program_fails += 1
                    ftl.timing.program(chip_id)
                    ftl.stats.flash_programs += 1
                    pad_programs += 1
        return blocks_padded, pad_programs

    def _scan(self):
        """Read every programmed page's spare annotations."""
        ftl = self.ftl
        candidates: list[tuple[int, int, bool, int]] = []  # seq,gppa,secure,lpa
        invalid: list[int] = []
        locked = 0
        scanned = 0
        unreadable = 0
        for chip_id, chip in enumerate(ftl.chips):
            for block in chip.blocks:
                if block.state is BlockState.RETIRED:
                    # grown-bad: scrubbed at retirement, never scanned --
                    # its consumed pages are dead by construction
                    for offset in range(block.next_page):
                        invalid.append(
                            ftl.make_gppa(
                                chip_id, ftl.geometry.ppn(block.index, offset)
                            )
                        )
                    continue
                for offset in range(block.next_page):
                    ppn = ftl.geometry.ppn(block.index, offset)
                    gppa = ftl.make_gppa(chip_id, ppn)
                    scanned += 1
                    try:
                        result = ftl._read_flash_page(chip_id, ppn)
                    except UncorrectableError:
                        # torn by the crash mid-program (or a transient
                        # storm): it cannot be the newest acknowledged
                        # copy of anything, so classify it stale
                        ftl.stats.read_failures += 1
                        unreadable += 1
                        invalid.append(gppa)
                        continue
                    if result.blocked:
                        locked += 1
                        invalid.append(gppa)
                        continue
                    spare = result.spare
                    if "lpa" not in spare or "seq" not in spare:
                        invalid.append(gppa)  # pads, scrub residue, ...
                        continue
                    candidates.append(
                        (
                            int(spare["seq"]),
                            gppa,
                            bool(spare.get("secure", False)),
                            int(spare["lpa"]),
                        )
                    )
        return candidates, invalid, locked, scanned, unreadable

    @staticmethod
    def _resolve(
        candidates: list[tuple[int, int, bool, int]],
    ) -> dict[int, tuple[int, int, bool]]:
        """Newest sequence number wins per LPA."""
        winners: dict[int, tuple[int, int, bool]] = {}
        for seq, gppa, secure, lpa in candidates:
            current = winners.get(lpa)
            if current is None or seq > current[0]:
                winners[lpa] = (seq, gppa, secure)
        return winners
