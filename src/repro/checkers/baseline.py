"""Committed-baseline support for incremental lint adoption.

A baseline file records the findings a tree is *known* to have, so the
lint gate can demand "no new findings" without first paying down every
historical one.  Fingerprints deliberately exclude line numbers --
unrelated edits move code around, and a baseline that churns on every
refactor trains people to regenerate it blindly.  Instead a finding is
identified by ``rule_id :: path :: message``, with a count per
fingerprint: if a file grows a *second* identical finding, the gate
still fires.

Format (JSON, committed as ``.lint-baseline.json`` at the repo root)::

    {
      "version": 1,
      "fingerprints": {
        "SIM14::repro/ftl/base.py::<message>": 1,
        ...
      }
    }
"""

from __future__ import annotations

import json
from pathlib import Path, PurePath

from repro.checkers.lint import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".lint-baseline.json"


def normalize_path(path: str) -> str:
    """Path suffix from the last ``repro`` directory (machine-portable).

    Findings carry whatever path the CLI was invoked with (absolute in
    CI, relative locally); fingerprints must match across both, so they
    key on the ``repro/...`` suffix when one exists.
    """
    parts = PurePath(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return "/".join(parts)


def fingerprint(finding: Finding) -> str:
    """Line-number-free identity of a finding (stable across refactors)."""
    return f"{finding.rule_id}::{normalize_path(finding.path)}::{finding.message}"


class Baseline:
    """A set of accepted finding fingerprints with multiplicities."""

    def __init__(self, fingerprints: dict[str, int] | None = None) -> None:
        self.fingerprints: dict[str, int] = dict(fingerprints or {})

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        counts: dict[str, int] = {}
        for finding in findings:
            key = fingerprint(finding)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            # no baseline recorded yet: everything counts as new
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}"
            )
        raw = payload.get("fingerprints", {})
        if not isinstance(raw, dict):
            raise ValueError(f"malformed baseline file {path}")
        return cls({str(k): int(v) for k, v in raw.items()})

    def dump(self, path: str | Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "fingerprints": {
                key: self.fingerprints[key]
                for key in sorted(self.fingerprints)
            },
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, baselined) preserving input order.

        Each fingerprint absorbs at most its recorded count; extra
        occurrences beyond the count surface as new findings.
        """
        budget = dict(self.fingerprints)
        new: list[Finding] = []
        accepted: list[Finding] = []
        for finding in findings:
            key = fingerprint(finding)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                accepted.append(finding)
            else:
                new.append(finding)
        return new, accepted
