"""AST normalization for lockstep-region equivalence (SIM11).

Two lockstep sites are allowed to differ in *mechanical* ways that do
not change behaviour -- the inlined hot-path copies cache attributes in
locals (``t_read = self.t_read_us``) and name intermediates differently
-- but must stay semantically identical.  The normalizer canonicalizes
exactly those freedoms and nothing more:

1. **Copy propagation** of locals bound exactly once to a *pure*
   expression (constants, names, attribute chains, and operator
   combinations thereof -- never calls or subscripts, whose value can
   change between binding and use).  A binding is only propagated when
   no attribute stored anywhere in the region shares a terminal name
   with an attribute read in the bound expression (a cheap, conservative
   alias check: storing ``self.token`` blocks propagating a binding that
   reads ``server.token``).
2. **Dead-binding elimination**: propagated bindings with no remaining
   readers disappear.
3. **Alpha-renaming** of the locals the region itself binds, in first-
   binding order, to ``_v0``, ``_v1``, ...  Free names (``self``,
   parameters, globals) keep their spelling: renaming those would let
   genuinely different code compare equal.

The canonical form is the ``ast.dump`` of the rewritten statements, so
comparison is exact and the diff between two sites is printable.
"""

from __future__ import annotations

import ast
import copy
from collections.abc import Sequence

_PURE_LEAVES = (ast.Constant, ast.Name)
_PURE_OPS = (ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.Compare, ast.IfExp)


def _is_pure(node: ast.expr) -> bool:
    """Pure = re-evaluating later cannot change the value or side-effect.

    Attribute loads are treated as pure here; the alias check in
    :func:`_propagatable` guards against the region itself storing to an
    attribute of the same name.
    """
    if isinstance(node, _PURE_LEAVES):
        return True
    if isinstance(node, ast.Attribute):
        return _is_pure(node.value)
    if isinstance(node, ast.BinOp):
        return _is_pure(node.left) and _is_pure(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_pure(node.operand)
    if isinstance(node, ast.BoolOp):
        return all(_is_pure(v) for v in node.values)
    if isinstance(node, ast.Compare):
        return _is_pure(node.left) and all(_is_pure(c) for c in node.comparators)
    if isinstance(node, ast.IfExp):
        return _is_pure(node.test) and _is_pure(node.body) and _is_pure(node.orelse)
    if isinstance(node, ast.Tuple):
        return all(_is_pure(e) for e in node.elts)
    return False


def _store_counts(stmts: Sequence[ast.stmt]) -> dict[str, int]:
    """How many times each plain name is bound anywhere in the region."""
    counts: dict[str, int] = {}
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                counts[node.id] = counts.get(node.id, 0) + 1
    return counts


def _stored_attrs(stmts: Sequence[ast.stmt]) -> set[str]:
    """Terminal names of attributes rebound in the region.

    Only ``x.attr = ...`` / ``x.attr += ...`` counts: it changes what a
    propagated copy of ``x.attr`` would re-read.  Storing *through* a
    subscript (``x.items[i] = ...``) mutates elements, not the binding,
    so an alias of ``x.items`` remains valid -- that is exactly the
    local-alias pattern the inlined hot paths use.
    """
    stored: set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
                stored.add(node.attr)
    return stored


def _read_attrs(expr: ast.expr) -> set[str]:
    attrs: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute):
            attrs.add(node.attr)
    return attrs


def _read_names(expr: ast.expr) -> set[str]:
    return {
        n.id
        for n in ast.walk(expr)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


class _Substitute(ast.NodeTransformer):
    def __init__(self, bindings: dict[str, ast.expr]) -> None:
        self.bindings = bindings
        self.changed = False

    def visit_Name(self, node: ast.Name) -> ast.expr:
        if isinstance(node.ctx, ast.Load) and node.id in self.bindings:
            self.changed = True
            return copy.deepcopy(self.bindings[node.id])
        return node


class _AlphaRename(ast.NodeTransformer):
    def __init__(self, mapping: dict[str, str]) -> None:
        self.mapping = mapping

    def visit_Name(self, node: ast.Name) -> ast.Name:
        new = self.mapping.get(node.id)
        if new is not None:
            return ast.copy_location(ast.Name(id=new, ctx=node.ctx), node)
        return node


def _propagatable(
    stmts: Sequence[ast.stmt],
) -> dict[str, ast.expr]:
    """Bindings eligible for copy propagation (name -> RHS)."""
    counts = _store_counts(stmts)
    stored = _stored_attrs(stmts)
    bindings: dict[str, ast.expr] = {}
    for stmt in stmts:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if counts.get(target.id, 0) != 1:
            continue
        if not _is_pure(stmt.value):
            continue
        if _read_attrs(stmt.value) & stored:
            # region stores an attribute of the same terminal name: the
            # bound value may change after the store, keep the binding
            continue
        bindings[target.id] = stmt.value
    return bindings


def normalize_region(stmts: Sequence[ast.stmt]) -> str:
    """Canonical dump of a lockstep region (see module docstring)."""
    work: list[ast.stmt] = [copy.deepcopy(s) for s in stmts]

    # copy-propagate to fixpoint (bindings may reference each other)
    for _ in range(len(work) + 2):
        bindings = _propagatable(work)
        # drop self-referencing bindings (cannot converge)
        bindings = {
            name: expr
            for name, expr in bindings.items()
            if name not in _read_names(expr)
        }
        if not bindings:
            break
        # substitute into every statement, including other bindings'
        # right-hand sides (store-context names are untouched), so
        # chained bindings flatten and can die together below
        sub = _Substitute(bindings)
        work = [sub.visit(stmt) for stmt in work]
        if not sub.changed:
            break

    # dead-binding elimination: propagated names with no remaining loads
    while True:
        bindings = _propagatable(work)
        live: set[str] = set()
        for stmt in work:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    live.add(node.id)
        kept = [
            stmt
            for stmt in work
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id in bindings
                and stmt.targets[0].id not in live
            )
        ]
        if len(kept) == len(work):
            break
        work = kept

    # alpha-rename region-bound locals in first-binding order
    mapping: dict[str, str] = {}
    for stmt in work:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id not in mapping:
                    mapping[node.id] = f"_v{len(mapping)}"
    renamer = _AlphaRename(mapping)
    work = [renamer.visit(stmt) for stmt in work]

    module = ast.Module(body=list(work), type_ignores=[])
    return ast.dump(module)


def region_diff(dump_a: str, dump_b: str) -> str:
    """First divergence between two canonical dumps, for the finding."""
    limit = min(len(dump_a), len(dump_b))
    pos = 0
    while pos < limit and dump_a[pos] == dump_b[pos]:
        pos += 1
    lo = max(0, pos - 40)
    return (
        f"...{dump_a[lo:pos + 40]}... vs ...{dump_b[lo:pos + 40]}..."
    )
