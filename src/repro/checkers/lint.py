"""Rule-driven static lint engine for the ``repro`` tree.

The engine parses every python file under the given paths, hands the AST
to each registered :class:`LintRule`, and collects :class:`Finding`
objects.  Rules are *domain* rules: they encode simulator invariants
(page-status encapsulation, lock-op accounting, seeded randomness, ...)
that generic linters cannot know about -- see
:mod:`repro.checkers.rules` for the catalogue.

Suppression uses two comment syntaxes.  Per line::

    something_suspicious()  # lint: disable=SIM03
    other_thing()           # lint: disable=SIM01,SIM02 -- why it is fine
    everything_goes()       # lint: disable=all

and per file (anywhere in the file, conventionally near the top)::

    # lint: disable-file=SIM13 -- this module mixes units on purpose

A per-line suppression only silences findings reported *on that line*;
a file-level suppression silences the named rules for the whole file.
File-level wins whenever it applies -- per-line comments for other
rules keep working independently.  Text after ``--`` is a free-form
justification (encouraged, never parsed).

Rules come in two flavours: plain :class:`LintRule` sees one file at a
time; :class:`ProjectRule` runs once over a
:class:`repro.checkers.project.ProjectContext` built from every linted
file, which is how the cross-module families (import layering, lockstep
equivalence, observer completeness) see the whole program.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

#: suppression comment, e.g. ``# lint: disable=SIM01,SIM05`` (per line)
#: or ``# lint: disable-file=SIM13`` (whole file).  An optional
#: ``-- justification`` trailer is ignored by the parser.
SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable(-file)?=([A-Za-z0-9_*,\s]+)")

#: severity ordering used to sort reports (most severe first).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self, show_hint: bool = True) -> str:
        out = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} {self.rule_id}: {self.message}"
        )
        if show_hint and self.hint:
            out += f"\n    hint: {self.hint}"
        return out


@dataclass
class FileContext:
    """Everything a rule needs to inspect one source file."""

    path: Path
    display_path: str
    #: path parts relative to (and excluding) the ``repro`` package root,
    #: e.g. ``("ftl", "base.py")``; files outside a ``repro`` directory
    #: keep their full parts.  Rules use this for directory scoping.
    rel_parts: tuple[str, ...]
    source: str
    tree: ast.Module

    @property
    def filename(self) -> str:
        return self.rel_parts[-1] if self.rel_parts else self.path.name

    def in_package_dir(self, dirname: str) -> bool:
        """Whether the file lives under ``repro/<dirname>/``."""
        return len(self.rel_parts) > 1 and self.rel_parts[0] == dirname


class LintRule:
    """Base class for domain lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings via :meth:`finding`.
    """

    rule_id: str = "SIM00"
    severity: str = "error"
    description: str = ""
    hint: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str | None = None
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message or self.description,
            hint=self.hint,
        )


class ProjectRule(LintRule):
    """Base class for whole-program rules.

    The engine collects every parsed file into a
    :class:`repro.checkers.project.ProjectContext` and calls
    :meth:`check_project` once; findings still go through the normal
    per-file/per-line suppression machinery afterwards.
    """

    def applies_to(self, ctx: FileContext) -> bool:  # pragma: no cover
        return False  # never run in per-file mode

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(
        self,
        path: str,
        line: int,
        message: str | None = None,
        col: int = 1,
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message or self.description,
            hint=self.hint,
        )


# ---------------------------------------------------------------------------
# shared AST helpers used by the rule implementations
# ---------------------------------------------------------------------------
def attr_chain(node: ast.AST) -> tuple[str, ...] | None:
    """Dotted-name chain of an attribute/name expression.

    ``self.timing.plock`` -> ``("self", "timing", "plock")``; returns
    ``None`` when the chain is rooted in something unnamed (a call
    result, a subscript, ...), in which case only the trailing attribute
    names are recoverable via :func:`attr_tail`.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def attr_tail(node: ast.AST) -> tuple[str, ...]:
    """Trailing attribute names regardless of the chain's root.

    ``self.chips[i].plock`` -> ``("plock",)``;
    ``chip.block_lock`` -> ``("chip", "block_lock")`` (name roots count).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def functions_of(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def calls_in(func: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            yield node


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------
def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> suppressed rule ids (``{"all"}`` wildcards)."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_RE.search(line)
        if match and not match.group(1):
            ids = {part.strip() for part in match.group(2).split(",")}
            out[lineno] = {i for i in ids if i}
    return out


def _file_suppressions(source: str) -> set[str]:
    """Rule ids suppressed for the whole file (``disable-file=`` lines)."""
    out: set[str] = set()
    for line in source.splitlines():
        match = SUPPRESS_RE.search(line)
        if match and match.group(1):
            out.update(
                part.strip()
                for part in match.group(2).split(",")
                if part.strip()
            )
    return out


def _rel_parts(path: Path) -> tuple[str, ...]:
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return parts[i + 1 :]
    return parts


def make_context(path: Path, display_path: str | None = None) -> FileContext:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=path,
        display_path=display_path or str(path),
        rel_parts=_rel_parts(path),
        source=source,
        tree=tree,
    )


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts and "egg-info" not in p.name
            )
        elif path.suffix == ".py" and path.is_file():
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def _parse_error_finding(path: Path | str, display_path: str | None,
                         exc: SyntaxError) -> Finding:
    return Finding(
        rule_id="SIM-PARSE",
        severity="error",
        path=display_path or str(path),
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        message=f"file does not parse: {exc.msg}",
    )


def _apply_rules(
    contexts: Sequence[FileContext],
    rules: Sequence[LintRule],
    tree_scan: bool,
) -> list[Finding]:
    """Run per-file and project rules, then filter suppressions."""
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    findings: list[Finding] = []
    for ctx in contexts:
        for rule in file_rules:
            if rule.applies_to(ctx):
                findings.extend(rule.check(ctx))
    if project_rules and contexts:
        # imported lazily: project.py depends on this module
        from repro.checkers.project import ProjectContext

        project = ProjectContext(contexts, tree_scan=tree_scan)
        for rule in project_rules:
            findings.extend(rule.check_project(project))
    line_supp = {c.display_path: _suppressions(c.source) for c in contexts}
    file_supp = {c.display_path: _file_suppressions(c.source) for c in contexts}
    kept: list[Finding] = []
    for finding in findings:
        in_file = file_supp.get(finding.path, ())
        if "all" in in_file or finding.rule_id in in_file:
            continue
        on_line = line_supp.get(finding.path, {}).get(finding.line, ())
        if "all" in on_line or finding.rule_id in on_line:
            continue
        kept.append(finding)
    return kept


def lint_file(
    path: Path | str,
    rules: Sequence[LintRule] | None = None,
    display_path: str | None = None,
) -> list[Finding]:
    """Run the rule set over one file, honouring suppressions.

    Project rules do run, but against a single-file project built in
    non-tree-scan mode (rules that need to see sibling files -- e.g.
    "lockstep group has only one site" -- stay quiet).
    """
    if rules is None:
        rules = default_rules()
    path = Path(path)
    try:
        ctx = make_context(path, display_path)
    except SyntaxError as exc:
        return [_parse_error_finding(path, display_path, exc)]
    return _apply_rules([ctx], rules, tree_scan=False)


def lint_paths(
    paths: Iterable[Path | str], rules: Sequence[LintRule] | None = None
) -> list[Finding]:
    """Run the rule set over files/directories; sorted, stable output."""
    if rules is None:
        rules = default_rules()
    paths = list(paths)
    tree_scan = any(Path(p).is_dir() for p in paths)
    contexts: list[FileContext] = []
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            contexts.append(make_context(path))
        except SyntaxError as exc:
            findings.append(_parse_error_finding(path, None, exc))
    findings.extend(_apply_rules(contexts, rules, tree_scan=tree_scan))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def format_findings(
    findings: Sequence[Finding],
    show_hints: bool = True,
    baselined: int = 0,
) -> str:
    """Human-readable report: one block per finding plus a summary line."""
    suffix = f", {baselined} baselined" if baselined else ""
    if not findings:
        return f"repro lint: clean (0 findings{suffix})"
    lines = [f.format(show_hint=show_hints) for f in findings]
    by_sev = {
        sev: sum(1 for f in findings if f.severity == sev) for sev in SEVERITIES
    }
    summary = ", ".join(f"{n} {sev}(s)" for sev, n in by_sev.items() if n)
    lines.append(f"repro lint: {len(findings)} finding(s): {summary}{suffix}")
    return "\n".join(lines)


def default_rules() -> list[LintRule]:
    """The registered SIM rule set (imported lazily to stay cycle-free)."""
    from repro.checkers.rules import ALL_RULES

    return [cls() for cls in ALL_RULES]


def rule_catalogue() -> str:
    """One line per rule: id, severity, description (for ``--rules``)."""
    lines = []
    for rule in default_rules():
        lines.append(f"{rule.rule_id} [{rule.severity}] {rule.description}")
    return "\n".join(lines)


def run_lint(
    paths: Sequence[str] | None = None,
    show_hints: bool = True,
    echo: Callable[[str], object] = print,
    fmt: str = "text",
    out: str | None = None,
    baseline_path: str | None = None,
    no_baseline: bool = False,
    write_baseline: bool = False,
) -> int:
    """CLI entry: lint the given paths (default: the installed package).

    Output goes through ``echo`` (stdout by default; pass a collector to
    capture it -- referencing ``print`` as a value keeps this module
    SIM08-clean, the *call* happens on the caller's authority).

    ``fmt`` selects ``text``, ``json``, or ``sarif``; ``out`` writes the
    report to a file instead of echoing it.  A baseline file (explicit
    ``baseline_path``, or ``.lint-baseline.json`` discovered in the
    working directory or an ancestor of the first linted path) hides
    known findings; ``write_baseline`` regenerates it from the current
    findings.

    Returns a process exit code: 0 when no *new* error-severity finding
    remains, 1 otherwise, 2 on usage errors.
    """
    from repro.checkers.baseline import (
        DEFAULT_BASELINE_NAME,
        Baseline,
    )
    from repro.checkers.report import render_json, render_sarif

    if fmt not in ("text", "json", "sarif"):
        echo(f"repro lint: unknown format {fmt!r}")
        return 2
    if not paths:
        package_root = Path(__file__).resolve().parent.parent
        paths = [str(package_root)]
    try:
        findings = lint_paths(paths)
    except FileNotFoundError as exc:
        echo(f"repro lint: {exc}")
        return 2

    resolved_baseline: Path | None = None
    if baseline_path:
        resolved_baseline = Path(baseline_path)
    elif not no_baseline:
        # discover in the working directory first, then up from the
        # linted path -- `repro lint /path/to/repo/src/repro` should
        # honour that repo's committed baseline regardless of cwd
        first = Path(paths[0]).resolve()
        candidates = [Path.cwd(), first, *first.parents]
        for directory in candidates:
            candidate = directory / DEFAULT_BASELINE_NAME
            if candidate.is_file():
                resolved_baseline = candidate
                break

    if write_baseline:
        target = resolved_baseline or Path.cwd() / DEFAULT_BASELINE_NAME
        Baseline.from_findings(findings).dump(target)
        echo(
            f"repro lint: wrote baseline with {len(findings)} "
            f"finding(s) to {target}"
        )
        return 0

    baselined: list[Finding] = []
    if resolved_baseline is not None and not no_baseline:
        try:
            baseline = Baseline.load(resolved_baseline)
        except (OSError, ValueError) as exc:
            echo(f"repro lint: cannot read baseline: {exc}")
            return 2
        findings, baselined = baseline.split(findings)

    if fmt == "json":
        payload = render_json(findings, baselined)
    elif fmt == "sarif":
        payload = render_sarif(findings, baselined)
    else:
        payload = format_findings(
            findings, show_hints=show_hints, baselined=len(baselined)
        )

    if out:
        Path(out).write_text(payload + "\n", encoding="utf-8")
        echo(
            format_findings([], baselined=len(baselined))
            if not findings
            else f"repro lint: {len(findings)} finding(s) written to {out}"
        )
    else:
        echo(payload)
    return 1 if any(f.severity == "error" for f in findings) else 0
