"""Rule-driven static lint engine for the ``repro`` tree.

The engine parses every python file under the given paths, hands the AST
to each registered :class:`LintRule`, and collects :class:`Finding`
objects.  Rules are *domain* rules: they encode simulator invariants
(page-status encapsulation, lock-op accounting, seeded randomness, ...)
that generic linters cannot know about -- see
:mod:`repro.checkers.rules` for the catalogue.

Per-line suppression uses the comment syntax::

    something_suspicious()  # lint: disable=SIM03
    other_thing()           # lint: disable=SIM01,SIM02
    everything_goes()       # lint: disable=all

A suppression only silences findings reported *on that line*.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

#: per-line suppression comment, e.g. ``# lint: disable=SIM01,SIM05``.
SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_*,\s]+)")

#: severity ordering used to sort reports (most severe first).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self, show_hint: bool = True) -> str:
        out = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} {self.rule_id}: {self.message}"
        )
        if show_hint and self.hint:
            out += f"\n    hint: {self.hint}"
        return out


@dataclass
class FileContext:
    """Everything a rule needs to inspect one source file."""

    path: Path
    display_path: str
    #: path parts relative to (and excluding) the ``repro`` package root,
    #: e.g. ``("ftl", "base.py")``; files outside a ``repro`` directory
    #: keep their full parts.  Rules use this for directory scoping.
    rel_parts: tuple[str, ...]
    source: str
    tree: ast.Module

    @property
    def filename(self) -> str:
        return self.rel_parts[-1] if self.rel_parts else self.path.name

    def in_package_dir(self, dirname: str) -> bool:
        """Whether the file lives under ``repro/<dirname>/``."""
        return len(self.rel_parts) > 1 and self.rel_parts[0] == dirname


class LintRule:
    """Base class for domain lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings via :meth:`finding`.
    """

    rule_id: str = "SIM00"
    severity: str = "error"
    description: str = ""
    hint: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str | None = None
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message or self.description,
            hint=self.hint,
        )


# ---------------------------------------------------------------------------
# shared AST helpers used by the rule implementations
# ---------------------------------------------------------------------------
def attr_chain(node: ast.AST) -> tuple[str, ...] | None:
    """Dotted-name chain of an attribute/name expression.

    ``self.timing.plock`` -> ``("self", "timing", "plock")``; returns
    ``None`` when the chain is rooted in something unnamed (a call
    result, a subscript, ...), in which case only the trailing attribute
    names are recoverable via :func:`attr_tail`.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def attr_tail(node: ast.AST) -> tuple[str, ...]:
    """Trailing attribute names regardless of the chain's root.

    ``self.chips[i].plock`` -> ``("plock",)``;
    ``chip.block_lock`` -> ``("chip", "block_lock")`` (name roots count).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def functions_of(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def calls_in(func: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            yield node


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------
def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> suppressed rule ids (``{"all"}`` wildcards)."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_RE.search(line)
        if match:
            ids = {part.strip() for part in match.group(1).split(",")}
            out[lineno] = {i for i in ids if i}
    return out


def _rel_parts(path: Path) -> tuple[str, ...]:
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return parts[i + 1 :]
    return parts


def make_context(path: Path, display_path: str | None = None) -> FileContext:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=path,
        display_path=display_path or str(path),
        rel_parts=_rel_parts(path),
        source=source,
        tree=tree,
    )


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts and "egg-info" not in p.name
            )
        elif path.suffix == ".py" and path.is_file():
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def lint_file(
    path: Path | str,
    rules: Sequence[LintRule] | None = None,
    display_path: str | None = None,
) -> list[Finding]:
    """Run the rule set over one file, honouring suppressions."""
    if rules is None:
        rules = default_rules()
    path = Path(path)
    try:
        ctx = make_context(path, display_path)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="SIM-PARSE",
                severity="error",
                path=display_path or str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    suppressed = _suppressions(ctx.source)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            on_line = suppressed.get(finding.line, ())
            if "all" in on_line or finding.rule_id in on_line:
                continue
            findings.append(finding)
    return findings


def lint_paths(
    paths: Iterable[Path | str], rules: Sequence[LintRule] | None = None
) -> list[Finding]:
    """Run the rule set over files/directories; sorted, stable output."""
    if rules is None:
        rules = default_rules()
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def format_findings(findings: Sequence[Finding], show_hints: bool = True) -> str:
    """Human-readable report: one block per finding plus a summary line."""
    if not findings:
        return "repro lint: clean (0 findings)"
    lines = [f.format(show_hint=show_hints) for f in findings]
    by_sev = {
        sev: sum(1 for f in findings if f.severity == sev) for sev in SEVERITIES
    }
    summary = ", ".join(f"{n} {sev}(s)" for sev, n in by_sev.items() if n)
    lines.append(f"repro lint: {len(findings)} finding(s): {summary}")
    return "\n".join(lines)


def default_rules() -> list[LintRule]:
    """The registered SIM rule set (imported lazily to stay cycle-free)."""
    from repro.checkers.rules import ALL_RULES

    return [cls() for cls in ALL_RULES]


def rule_catalogue() -> str:
    """One line per rule: id, severity, description (for ``--rules``)."""
    lines = []
    for rule in default_rules():
        lines.append(f"{rule.rule_id} [{rule.severity}] {rule.description}")
    return "\n".join(lines)


def run_lint(
    paths: Sequence[str] | None = None,
    show_hints: bool = True,
    echo: Callable[[str], object] = print,
) -> int:
    """CLI entry: lint the given paths (default: the installed package).

    Output goes through ``echo`` (stdout by default; pass a collector to
    capture it -- referencing ``print`` as a value keeps this module
    SIM08-clean, the *call* happens on the caller's authority).
    Returns a process exit code: 0 when clean, 1 when any finding.
    """
    if not paths:
        package_root = Path(__file__).resolve().parent.parent
        paths = [str(package_root)]
    try:
        findings = lint_paths(paths)
    except FileNotFoundError as exc:
        echo(f"repro lint: {exc}")
        return 2
    echo(format_findings(findings, show_hints=show_hints))
    return 1 if findings else 0
