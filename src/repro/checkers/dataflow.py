"""Intraprocedural taint analysis for determinism lint (SIM10).

The simulator's output contracts are *byte-identity* contracts
(serial ≡ parallel runs, golden telemetry files, the bench regression
gate), so any value derived from wall-clock time, process identity, or
unordered-collection iteration that reaches a result artifact silently
voids them.  This walker tracks, per function, which local names carry:

* ``wall-clock`` -- ``time.time/perf_counter/monotonic`` (and ``_ns``
  variants), ``datetime.now/utcnow/today``;
* ``entropy``    -- ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*``;
* ``process``    -- ``os.getpid``, ``id()``, ``hash()`` (hash is
  PYTHONHASHSEED-salted for str/bytes);
* ``set-order``  -- iterating a ``set``/``frozenset`` value (element
  order is observable and insertion-history dependent).

Analysis is flow-insensitive within a function (a fixpoint over its
statements), which trades a little precision for robustness: the rules
only *report* at well-known sinks, so over-approximation inside the
function body is harmless.

Sanitizers: ``sorted(x)`` erases set-order taint (that is exactly the
repo-wide fix pattern for deterministic iteration); order-insensitive
aggregators (``sum``/``min``/``max``/``len``/``any``/``all``) erase
set-order but keep wall-clock/entropy taint.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.checkers.lint import attr_chain

# taint kinds ----------------------------------------------------------
WALL = "wall-clock"
ENTROPY = "entropy"
PROCESS = "process-identity"
ORDER = "set-order"

#: 2-element attribute-chain tails that produce each taint kind.
_SOURCE_TAILS: dict[tuple[str, str], str] = {
    ("time", "time"): WALL,
    ("time", "time_ns"): WALL,
    ("time", "perf_counter"): WALL,
    ("time", "perf_counter_ns"): WALL,
    ("time", "monotonic"): WALL,
    ("time", "monotonic_ns"): WALL,
    ("datetime", "now"): WALL,
    ("datetime", "utcnow"): WALL,
    ("datetime", "today"): WALL,
    ("date", "today"): WALL,
    ("os", "urandom"): ENTROPY,
    ("uuid", "uuid1"): ENTROPY,
    ("uuid", "uuid4"): ENTROPY,
    ("os", "getpid"): PROCESS,
}

#: bare builtins producing taint when called.
_SOURCE_BUILTINS: dict[str, str] = {"id": PROCESS, "hash": PROCESS}

#: calling anything under these modules is a source.
_SOURCE_MODULES: dict[str, str] = {"secrets": ENTROPY}

#: builtins that consume iteration order (safe over unordered input).
_ORDER_SANITIZERS = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all"}
)

#: calls that build set-like (unordered) values.
_SET_BUILDERS = frozenset({"set", "frozenset"})


@dataclass
class Taint:
    """Taint kinds attached to one value, with the source line of each."""

    kinds: dict[str, int] = field(default_factory=dict)

    def merged(self, other: "Taint") -> "Taint":
        kinds = dict(self.kinds)
        for kind, line in other.kinds.items():
            kinds.setdefault(kind, line)
        return Taint(kinds)

    def without(self, kind: str) -> "Taint":
        kinds = {k: v for k, v in self.kinds.items() if k != kind}
        return Taint(kinds)

    def __bool__(self) -> bool:
        return bool(self.kinds)


def _function_source_kind(chain: tuple[str, ...] | None) -> str | None:
    """Taint kind produced by *calling* the function this chain names."""
    if not chain:
        return None
    if len(chain) == 1 and chain[0] in _SOURCE_BUILTINS:
        return _SOURCE_BUILTINS[chain[0]]
    if len(chain) >= 2 and chain[-2:] in _SOURCE_TAILS:
        return _SOURCE_TAILS[chain[-2:]]
    if chain[0] in _SOURCE_MODULES:
        return _SOURCE_MODULES[chain[0]]
    return None


class FunctionTaint:
    """Taint environment for one function body (fixpoint-computed)."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        #: name -> taint currently known for that local
        self.env: dict[str, Taint] = {}
        #: names statically known to hold set-like values
        self.setlike: set[str] = set()
        #: names aliasing a taint-source function (``clock = time.time``)
        self.fn_alias: dict[str, str] = {}
        self._compute()

    # -- statement iteration (skip nested function/class bodies) -------
    def _own_statements(self) -> Iterator[ast.stmt]:
        def visit(body: list[ast.stmt]) -> Iterator[ast.stmt]:
            for stmt in body:
                yield stmt
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                for name in ("body", "orelse", "finalbody"):
                    sub = getattr(stmt, name, None)
                    if isinstance(sub, list):
                        yield from visit(sub)
                for handler in getattr(stmt, "handlers", []):
                    yield from visit(handler.body)

        yield from visit(self.func.body)

    # -- expression evaluation ------------------------------------------
    def taint_of(self, node: ast.expr) -> Taint:
        """Taint carried by evaluating ``node`` (recursive)."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id, Taint())
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.Attribute):
            return self.taint_of(node.value)
        if isinstance(node, ast.Subscript):
            return self.taint_of(node.value).merged(self.taint_of(node.slice))
        if isinstance(node, ast.BinOp):
            return self.taint_of(node.left).merged(self.taint_of(node.right))
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, ast.BoolOp):
            out = Taint()
            for value in node.values:
                out = out.merged(self.taint_of(value))
            return out
        if isinstance(node, ast.Compare):
            out = self.taint_of(node.left)
            for comp in node.comparators:
                out = out.merged(self.taint_of(comp))
            return out
        if isinstance(node, ast.IfExp):
            return (
                self.taint_of(node.test)
                .merged(self.taint_of(node.body))
                .merged(self.taint_of(node.orelse))
            )
        if isinstance(node, ast.JoinedStr):
            out = Taint()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out = out.merged(self.taint_of(value.value))
            return out
        if isinstance(node, (ast.List, ast.Tuple)):
            out = Taint()
            for elt in node.elts:
                out = out.merged(self.taint_of(elt))
            return out
        if isinstance(node, ast.Set):
            out = Taint({ORDER: node.lineno})
            for elt in node.elts:
                out = out.merged(self.taint_of(elt))
            return out
        if isinstance(node, ast.Dict):
            out = Taint()
            for key in node.keys:
                if key is not None:
                    out = out.merged(self.taint_of(key))
            for value in node.values:
                out = out.merged(self.taint_of(value))
            return out
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            out = self._comprehension_taint(node.generators, node.lineno)
            out = out.merged(self.taint_of(node.elt))
            if isinstance(node, ast.SetComp):
                out = out.merged(Taint({ORDER: node.lineno}))
            return out
        if isinstance(node, ast.DictComp):
            out = self._comprehension_taint(node.generators, node.lineno)
            return out.merged(self.taint_of(node.key)).merged(
                self.taint_of(node.value)
            )
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, ast.Await):
            return self.taint_of(node.value)
        return Taint()

    def _comprehension_taint(
        self, generators: list[ast.comprehension], lineno: int
    ) -> Taint:
        out = Taint()
        for gen in generators:
            iter_taint = self.taint_of(gen.iter)
            if self._is_setlike(gen.iter):
                iter_taint = iter_taint.merged(
                    Taint({ORDER: gen.iter.lineno})
                )
            out = out.merged(iter_taint)
            for cond in gen.ifs:
                out = out.merged(self.taint_of(cond))
        return out

    def _is_setlike(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.setlike
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain and chain[-1] in _SET_BUILDERS:
                return True
            # s.union(...), s.difference(...), ... yield sets again
            if (
                chain
                and len(chain) >= 2
                and chain[-1] in {
                    "union", "intersection", "difference",
                    "symmetric_difference", "copy",
                }
                and self._is_setlike_name(chain[:-1])
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_setlike(node.left) or self._is_setlike(node.right)
        return False

    def _is_setlike_name(self, chain: tuple[str, ...]) -> bool:
        return len(chain) == 1 and chain[0] in self.setlike

    def _call_taint(self, node: ast.Call) -> Taint:
        chain = attr_chain(node.func)
        arg_taint = Taint()
        for arg in node.args:
            arg_taint = arg_taint.merged(self.taint_of(arg))
        for kw in node.keywords:
            arg_taint = arg_taint.merged(self.taint_of(kw.value))
        if isinstance(node.func, ast.Attribute):
            # a method call carries its receiver's taint through:
            # os.urandom(8).hex() is as entropy-tainted as the bytes
            arg_taint = arg_taint.merged(self.taint_of(node.func.value))

        # direct source call (time.time(), os.urandom(n), id(x), ...)
        kind = _function_source_kind(chain)
        if kind is not None:
            return arg_taint.merged(Taint({kind: node.lineno}))
        # call through an alias (clock = time.perf_counter; clock())
        if chain and len(chain) == 1 and chain[0] in self.fn_alias:
            return arg_taint.merged(
                Taint({self.fn_alias[chain[0]]: node.lineno})
            )

        if chain:
            name = chain[-1]
            if name in _SET_BUILDERS:
                # building a set is fine; only *iterating* it taints
                return arg_taint.without(ORDER)
            if name == "sorted" or name in _ORDER_SANITIZERS:
                return arg_taint.without(ORDER)
            if name in {"join",}:
                # "".join(iterable): order-sensitive, keep taint
                return arg_taint
        return arg_taint

    # -- fixpoint over statements ---------------------------------------
    def _assign_name(self, name: str, taint: Taint, setlike: bool) -> bool:
        changed = False
        old = self.env.get(name, Taint())
        new = old.merged(taint)
        if new.kinds != old.kinds:
            self.env[name] = new
            changed = True
        if setlike and name not in self.setlike:
            self.setlike.add(name)
            changed = True
        return changed

    def _bind_target(self, target: ast.expr, value: ast.expr | None,
                     taint: Taint, setlike: bool) -> bool:
        changed = False
        if isinstance(target, ast.Name):
            changed |= self._assign_name(target.id, taint, setlike)
            # track function aliasing for wall-clock sources
            if value is not None:
                alias_kind = _function_source_kind(attr_chain(value))
                if isinstance(value, ast.IfExp):
                    for branch in (value.body, value.orelse):
                        branch_kind = _function_source_kind(attr_chain(branch))
                        if branch_kind is not None:
                            alias_kind = branch_kind
                if alias_kind is not None and not isinstance(value, ast.Call):
                    if self.fn_alias.get(target.id) != alias_kind:
                        self.fn_alias[target.id] = alias_kind
                        changed = True
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                changed |= self._bind_target(elt, None, taint, setlike)
        elif isinstance(target, ast.Starred):
            changed |= self._bind_target(target.value, None, taint, setlike)
        return changed

    def _step(self) -> bool:
        changed = False
        for stmt in self._own_statements():
            if isinstance(stmt, ast.Assign):
                taint = self.taint_of(stmt.value)
                setlike = self._is_setlike(stmt.value)
                for target in stmt.targets:
                    changed |= self._bind_target(
                        target, stmt.value, taint, setlike
                    )
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                taint = self.taint_of(stmt.value)
                changed |= self._bind_target(
                    stmt.target, stmt.value, taint,
                    self._is_setlike(stmt.value),
                )
            elif isinstance(stmt, ast.AugAssign):
                taint = self.taint_of(stmt.value).merged(
                    self.taint_of(stmt.target)
                )
                changed |= self._bind_target(stmt.target, None, taint, False)
            elif isinstance(stmt, ast.For):
                iter_taint = self.taint_of(stmt.iter)
                if self._is_setlike(stmt.iter):
                    iter_taint = iter_taint.merged(
                        Taint({ORDER: stmt.iter.lineno})
                    )
                changed |= self._bind_target(
                    stmt.target, None, iter_taint, False
                )
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                # receiver.append(tainted) and friends taint the receiver
                call = stmt.value
                chain = attr_chain(call.func)
                if chain and len(chain) == 2 and chain[1] in {
                    "append", "add", "extend", "update", "insert",
                }:
                    taint = Taint()
                    for arg in call.args:
                        taint = taint.merged(self.taint_of(arg))
                    if taint:
                        changed |= self._assign_name(chain[0], taint, False)
        return changed

    def _compute(self) -> None:
        # bounded fixpoint; each pass only adds taint, so it terminates
        for _ in range(16):
            if not self._step():
                break
