"""Correctness tooling for the Evanesco reproduction.

Two complementary layers guard the simulator's core invariants as the
codebase grows:

* :mod:`repro.checkers.lint` -- a rule-driven **static** AST lint engine
  with domain rules (SIM01..SIM05) that survive refactors: page-status
  encapsulation, lock/erase accounting pairs, seeded randomness, float
  equality in reliability math, and observer-hook coverage of sanitize
  paths.  Run it with ``repro lint``.
* :mod:`repro.checkers.sanitizer` -- an opt-in **runtime** shadow checker
  (think TSan for the FTL) that re-verifies the page-status state
  machine, L2P bijection, per-block counters, and the paper's security
  invariant -- a stale secured copy must be unreadable -- after every
  host/GC batch.  Enable it with ``checked=True`` on
  :class:`~repro.ssd.device.SSD` or ``repro check``.
"""

from repro.checkers.lint import Finding, LintRule, format_findings, lint_paths
from repro.checkers.sanitizer import (
    FtlSanitizer,
    InvariantViolation,
    default_checked,
    set_default_checked,
)

__all__ = [
    "Finding",
    "FtlSanitizer",
    "InvariantViolation",
    "LintRule",
    "default_checked",
    "format_findings",
    "lint_paths",
    "set_default_checked",
]
