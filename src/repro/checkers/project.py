"""Whole-program context for cross-module lint rules.

The per-file rules (SIM01..SIM09) see one AST at a time; the rule
families added with SIM10..SIM14 need facts that only exist across the
tree: the import graph (layering, SIM14), the class hierarchy (which
classes subclass ``PageMappedFtl``, SIM12), and the paired "lockstep"
regions whose AST-normalized bodies must stay equivalent (SIM11).

:class:`ProjectContext` parses the linted file set exactly once and
exposes those derived views.  It is deliberately *approximate* where
full import resolution would be overkill for a domain lint:

* module names are derived from the path relative to the ``repro``
  package root, so fixture trees (``tmp/repro/ftl/x.py``) resolve the
  same way the shipped package does;
* class bases are resolved by simple name across the whole project
  (the simulator has no duplicate class names across packages).

Lockstep regions are declared in comments::

    # lockstep: begin <group>
    ...statements that must stay equivalent across all sites...
    # lockstep: skip-begin -- <why this site-only code is exempt>
    ...site-specific statements (e.g. the op-capture append)...
    # lockstep: skip-end
    ...more shared statements...
    # lockstep: end <group>

Every group must have at least two sites; SIM11 normalizes each site's
statements and reports any drift.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.checkers.lint import FileContext

#: lockstep marker comment grammar (see module docstring).
LOCKSTEP_RE = re.compile(
    r"#\s*lockstep:\s*(skip-begin|skip-end|begin|end)"
    # group names may contain hyphens but must not start with one, so
    # the "--" of a justification trailer is never eaten as a name
    r"(?:\s+([A-Za-z0-9_][A-Za-z0-9_.\-]*))?"
    r"(?:\s*--\s*(.*))?"
)

#: prose marker that must be backed by machine-checkable regions.
LOCKSTEP_PROSE = "KEEP IN LOCKSTEP"


@dataclass(frozen=True)
class ImportEdge:
    """One ``import``/``from ... import`` statement in a module."""

    module: str                 #: absolute module imported, e.g. ``repro.ssd.config``
    names: tuple[str, ...]      #: names bound by a ``from`` import, ``()`` otherwise
    lineno: int
    col: int
    type_only: bool             #: inside an ``if TYPE_CHECKING:`` block

    @property
    def top_package(self) -> str | None:
        """Top-level package under ``repro`` (``None`` for externals)."""
        parts = self.module.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            return None
        return parts[1]


@dataclass
class ClassInfo:
    """One class definition and its directly-declared surface."""

    name: str
    module: str
    node: ast.ClassDef
    bases: tuple[str, ...]
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef]


@dataclass(frozen=True)
class LockstepSite:
    """One occurrence of a lockstep group in one file."""

    group: str
    path: str                           #: display path of the file
    begin_line: int
    end_line: int
    skips: tuple[tuple[int, int], ...]  #: (skip-begin line, skip-end line)


@dataclass
class ModuleInfo:
    """Everything the project knows about one source file."""

    name: str                   #: dotted module name, e.g. ``repro.ftl.base``
    ctx: FileContext
    imports: list[ImportEdge] = field(default_factory=list)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: line of the first :data:`LOCKSTEP_PROSE` comment, if any.
    lockstep_prose_line: int | None = None

    @property
    def top_package(self) -> str | None:
        parts = self.name.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            return None
        return parts[1]


def module_name_of(ctx: FileContext) -> str:
    """Dotted module name derived from the path's ``repro`` suffix."""
    parts = list(ctx.rel_parts)
    if not parts or parts == list(ctx.path.parts):
        # file outside any repro package root: bare module name
        return ctx.path.stem
    parts[-1] = parts[-1].removesuffix(".py")
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(["repro", *parts]) if parts else "repro"


def _collect_imports(tree: ast.Module) -> list[ImportEdge]:
    """Import edges, tagging those under ``if TYPE_CHECKING:``."""
    edges: list[ImportEdge] = []

    def visit(nodes: Iterable[ast.stmt], type_only: bool) -> None:
        for node in nodes:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    edges.append(
                        ImportEdge(alias.name, (), node.lineno,
                                   node.col_offset + 1, type_only)
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    # relative imports stay within one package: never a
                    # cross-layer edge, so layering ignores them
                    continue
                if node.module == "repro":
                    # ``from repro import ssd`` binds subpackages
                    for alias in node.names:
                        edges.append(
                            ImportEdge(f"repro.{alias.name}", (), node.lineno,
                                       node.col_offset + 1, type_only)
                        )
                else:
                    names = tuple(alias.name for alias in node.names)
                    edges.append(
                        ImportEdge(node.module, names, node.lineno,
                                   node.col_offset + 1, type_only)
                    )
            elif isinstance(node, ast.If):
                guard = _is_type_checking_guard(node.test)
                visit(node.body, type_only or guard)
                visit(node.orelse, type_only)
            elif isinstance(node, ast.Try):
                visit(node.body, type_only)
                for handler in node.handlers:
                    visit(handler.body, type_only)
                visit(node.orelse, type_only)
                visit(node.finalbody, type_only)
            elif isinstance(node, (ast.With, ast.FunctionDef,
                                   ast.AsyncFunctionDef, ast.ClassDef)):
                visit(node.body, type_only)

    visit(tree.body, False)
    return edges


def _is_type_checking_guard(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _collect_classes(module: str, tree: ast.Module) -> dict[str, ClassInfo]:
    classes: dict[str, ClassInfo] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        methods = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        classes[node.name] = ClassInfo(
            name=node.name, module=module, node=node,
            bases=tuple(bases), methods=methods,
        )
    return classes


def _comments_of(source: str) -> Iterator[tuple[int, str]]:
    """(line, text) for every comment token (strings never match)."""
    readline = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return


def _scan_lockstep(
    ctx: FileContext,
) -> tuple[list[LockstepSite], list[tuple[str, int, str]], int | None]:
    """Parse the lockstep marker comments of one file.

    Returns (sites, errors, prose_line) where each error is
    (path, line, message) and prose_line is the first *comment* saying
    "KEEP IN LOCKSTEP" (docstrings quoting the phrase don't count).
    """
    sites: list[LockstepSite] = []
    errors: list[tuple[str, int, str]] = []
    open_site: tuple[str, int] | None = None       # (group, begin line)
    open_skip: int | None = None
    skips: list[tuple[int, int]] = []
    prose_line: int | None = None
    for lineno, line in _comments_of(ctx.source):
        if prose_line is None and LOCKSTEP_PROSE in line:
            prose_line = lineno
        match = LOCKSTEP_RE.search(line)
        if not match:
            continue
        kind, group, reason = match.group(1), match.group(2), match.group(3)
        if kind == "begin":
            if not group:
                errors.append((ctx.display_path, lineno,
                               "lockstep begin without a group name"))
            elif open_site is not None:
                errors.append((ctx.display_path, lineno,
                               "nested lockstep regions are not supported"))
            else:
                open_site, skips = (group, lineno), []
        elif kind == "end":
            if open_site is None:
                errors.append((ctx.display_path, lineno,
                               "lockstep end without a matching begin"))
            elif group and group != open_site[0]:
                errors.append((
                    ctx.display_path, lineno,
                    f"lockstep end {group!r} does not match open region "
                    f"{open_site[0]!r}",
                ))
            else:
                if open_skip is not None:
                    errors.append((ctx.display_path, lineno,
                                   "lockstep region ends inside a skip"))
                sites.append(LockstepSite(
                    group=open_site[0], path=ctx.display_path,
                    begin_line=open_site[1], end_line=lineno,
                    skips=tuple(skips),
                ))
                open_site = None
        elif kind == "skip-begin":
            if open_site is None:
                errors.append((ctx.display_path, lineno,
                               "lockstep skip outside any region"))
            elif open_skip is not None:
                errors.append((ctx.display_path, lineno,
                               "nested lockstep skips are not supported"))
            elif not reason:
                errors.append((
                    ctx.display_path, lineno,
                    "lockstep skip-begin requires a justification "
                    "(`# lockstep: skip-begin -- why`)",
                ))
            else:
                open_skip = lineno
        elif kind == "skip-end":
            if open_skip is None:
                errors.append((ctx.display_path, lineno,
                               "lockstep skip-end without a skip-begin"))
            else:
                skips.append((open_skip, lineno))
                open_skip = None
    if open_site is not None:
        errors.append((ctx.display_path, open_site[1],
                       f"lockstep region {open_site[0]!r} is never closed"))
    return sites, errors, prose_line


def extract_region_statements(
    tree: ast.Module, site: LockstepSite
) -> tuple[list[ast.stmt], list[tuple[int, str]]]:
    """Statements of a lockstep site, with skip sub-ranges removed.

    Selects the outermost statements strictly between the begin and end
    marker lines; statements fully inside a skip range are dropped.  A
    statement that only partially overlaps a skip range is an error
    (returned as ``(line, message)`` pairs).
    """
    selected: list[ast.stmt] = []
    errors: list[tuple[int, str]] = []

    def visit_outer(body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            end = getattr(stmt, "end_lineno", stmt.lineno)
            if stmt.lineno > site.begin_line and end < site.end_line:
                selected.append(stmt)
            elif stmt.lineno <= site.end_line and end >= site.begin_line:
                # statement spans a marker: look inside its blocks
                for name in ("body", "orelse", "finalbody"):
                    sub = getattr(stmt, name, None)
                    if isinstance(sub, list):
                        visit_outer(sub)
                for handler in getattr(stmt, "handlers", []):
                    visit_outer(handler.body)

    visit_outer(tree.body)

    kept: list[ast.stmt] = []
    for stmt in selected:
        end = getattr(stmt, "end_lineno", stmt.lineno)
        dropped = False
        for skip_begin, skip_end in site.skips:
            if stmt.lineno > skip_begin and end < skip_end:
                dropped = True
                break
            if stmt.lineno <= skip_end and end >= skip_begin and not (
                stmt.lineno > skip_begin and end < skip_end
            ):
                errors.append((
                    stmt.lineno,
                    "statement partially overlaps a lockstep skip range",
                ))
                dropped = True
                break
        if not dropped:
            kept.append(stmt)
    kept.sort(key=lambda s: (s.lineno, s.col_offset))
    return kept, errors


class ProjectContext:
    """Parsed whole-program view over the linted file set."""

    def __init__(self, contexts: Sequence[FileContext],
                 tree_scan: bool = True) -> None:
        #: whether the file set came from scanning directories (a lone
        #: file cannot prove a lockstep group has no sibling site).
        self.tree_scan = tree_scan
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        self.lockstep_sites: dict[str, list[LockstepSite]] = {}
        self.lockstep_errors: list[tuple[str, int, str]] = []
        self._classes_by_name: dict[str, list[ClassInfo]] = {}
        for ctx in contexts:
            name = module_name_of(ctx)
            info = ModuleInfo(
                name=name,
                ctx=ctx,
                imports=_collect_imports(ctx.tree),
                classes=_collect_classes(name, ctx.tree),
            )
            self.modules[name] = info
            self.by_path[ctx.display_path] = info
            for cls in info.classes.values():
                self._classes_by_name.setdefault(cls.name, []).append(cls)
            sites, errors, prose_line = _scan_lockstep(ctx)
            info.lockstep_prose_line = prose_line
            for site in sites:
                self.lockstep_sites.setdefault(site.group, []).append(site)
            self.lockstep_errors.extend(errors)

    # ------------------------------------------------------------------
    def iter_modules(self) -> Iterator[ModuleInfo]:
        for name in sorted(self.modules):
            yield self.modules[name]

    def classes_named(self, name: str) -> list[ClassInfo]:
        return self._classes_by_name.get(name, [])

    def mro_names(self, cls: ClassInfo) -> list[str]:
        """Approximate linearization by simple base names (cycle-safe)."""
        order: list[str] = []
        seen: set[str] = set()
        stack = [cls.name]
        while stack:
            name = stack.pop(0)
            if name in seen:
                continue
            seen.add(name)
            order.append(name)
            for info in self.classes_named(name):
                stack.extend(b for b in info.bases if b not in seen)
        return order

    def is_subclass_of(self, cls: ClassInfo, base_name: str) -> bool:
        return base_name in self.mro_names(cls)

    def subclasses_of(self, base_name: str) -> list[ClassInfo]:
        """Every project class whose hierarchy reaches ``base_name``."""
        out = []
        for infos in self._classes_by_name.values():
            for info in infos:
                if self.is_subclass_of(info, base_name):
                    out.append(info)
        out.sort(key=lambda c: (c.module, c.name))
        return out

    def resolved_methods(
        self, cls: ClassInfo
    ) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
        """Method table with inheritance applied (derived wins)."""
        table: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for name in reversed(self.mro_names(cls)):
            for info in self.classes_named(name):
                table.update(info.methods)
        return table
