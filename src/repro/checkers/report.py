"""Machine-readable lint reports: JSON and SARIF 2.1.0.

The SARIF output follows the subset of the 2.1.0 schema that code
hosts actually render: one run, rule metadata on the tool driver, one
result per finding with a physical location.  Baselined findings are
emitted with ``"baselineState": "unchanged"`` so viewers can fold them
away while the gate (exit code) only counts *new* findings.
"""

from __future__ import annotations

import json

from repro.checkers.lint import Finding, default_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"

_SARIF_LEVEL = {"error": "error", "warning": "warning"}


def _finding_dict(finding: Finding) -> dict:
    out = {
        "rule_id": finding.rule_id,
        "severity": finding.severity,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }
    if finding.hint:
        out["hint"] = finding.hint
    return out


def render_json(
    new: list[Finding], baselined: list[Finding]
) -> str:
    """Stable JSON document for scripting against lint output."""
    payload = {
        "version": 1,
        "tool": TOOL_NAME,
        "summary": {
            "findings": len(new),
            "errors": sum(1 for f in new if f.severity == "error"),
            "warnings": sum(1 for f in new if f.severity == "warning"),
            "baselined": len(baselined),
        },
        "findings": [_finding_dict(f) for f in new],
        "baselined": [_finding_dict(f) for f in baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_result(finding: Finding, baselined: bool) -> dict:
    message = finding.message
    if finding.hint:
        message = f"{message} (hint: {finding.hint})"
    result = {
        "ruleId": finding.rule_id,
        "level": _SARIF_LEVEL.get(finding.severity, "warning"),
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
    }
    if baselined:
        result["baselineState"] = "unchanged"
    return result


def render_sarif(
    new: list[Finding], baselined: list[Finding]
) -> str:
    """SARIF 2.1.0 log with rule metadata and baseline states."""
    rules_meta = []
    seen: set[str] = set()
    for rule in default_rules():
        if rule.rule_id in seen:
            continue
        seen.add(rule.rule_id)
        rules_meta.append(
            {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.description},
                "help": {"text": rule.hint},
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL.get(rule.severity, "warning")
                },
            }
        )
    results = [_sarif_result(f, baselined=False) for f in new]
    results.extend(_sarif_result(f, baselined=True) for f in baselined)
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
