"""Runtime sanitization-invariant checker ("TSan for the FTL").

An opt-in shadow checker that attaches to any
:class:`~repro.ftl.base.PageMappedFtl` subclass and re-verifies, after
every host/GC batch, the invariants the whole reproduction stands on:

1. **Page-status state machine** -- every physical page only moves
   FREE -> VALID/SECURED -> INVALID -> FREE.  The checker replays the
   FTL's observer event stream into a shadow status table and flags any
   illegal transition the instant it happens, plus any divergence
   between shadow and the FTL's real :class:`StatusTable`.
2. **L2P/P2S bijection** -- the mapping tables stay mutually inverse,
   and a page is VALID/SECURED if and only if it is mapped.
3. **Per-block counters** -- ``live``/``secured``/``invalid`` counts
   match a from-scratch recount of the status array.
4. **The security invariant** (the paper's C1/C2 core): once a secured
   page is invalidated, it must be sanitized before the request
   completes -- and the sanitized copy must *actually* be unreadable.
   The checker issues real reads against stale secured copies and
   asserts the chip returns all-zero (locked), scrubbed, or erased
   data -- or, for key-deletion designs, that the ciphertext no longer
   decrypts.

Violations raise :class:`InvariantViolation` carrying the recent event
trail so the failing FTL path can be reconstructed.

Cost: the per-event shadow replay and end-of-batch security check are
O(batch); the full recount/bijection/probe pass is O(device) and runs
every ``interval`` batches (``interval=1`` checks after every request).
Enable per device with ``SSD(..., checked=True)``, globally with
:func:`set_default_checked` or ``REPRO_CHECKED=1``.
"""

from __future__ import annotations

import os
from collections import deque
from contextlib import ExitStack
from typing import TYPE_CHECKING, Any

from repro.flash.chip import ERASED_DATA, SCRUBBED_DATA, ZERO_DATA
from repro.ftl.observer import notify_optional
from repro.ftl.page_status import PageStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.ftl.base import PageMappedFtl

#: invalidation reasons that kill a data *version* (vs. relocating a
#: still-live version's old copy).
VERSION_DEATH_REASONS = frozenset({"host-update", "host-trim"})

#: sanitize scopes an FTL class may declare (``sanitize_scope`` attr):
#: - "none": no sanitization guarantee (baseline);
#: - "all": every secured stale copy is sanitized in-batch (secSSD,
#:   erSSD, scrSSD);
#: - "version-death": only host updates/trims sanitize (cryptSSD: GC
#:   copies of a live version legitimately keep their key).
SANITIZE_SCOPES = ("none", "all", "version-death")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


_default_checked: bool = _env_flag("REPRO_CHECKED")
_default_interval: int = int(os.environ.get("REPRO_CHECK_INTERVAL", "1") or 1)


def set_default_checked(enabled: bool = True, interval: int | None = None) -> None:
    """Set the process-wide default for newly constructed FTLs/SSDs.

    Test suites call this once (e.g. from ``conftest.py``) to run every
    device under the sanitizer without touching call sites.
    """
    global _default_checked, _default_interval
    _default_checked = enabled
    if interval is not None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        _default_interval = interval


def default_checked() -> bool:
    return _default_checked


def default_interval() -> int:
    return _default_interval


class InvariantViolation(Exception):
    """A checked FTL broke one of the sanitization invariants.

    Attributes
    ----------
    invariant:
        Which invariant failed: ``"status-transition"``,
        ``"status-divergence"``, ``"mapping-bijection"``,
        ``"block-counters"``, ``"security"``, or ``"unreadable-probe"``.
    detail:
        Human-readable description with the offending addresses.
    trail:
        The most recent observer events, oldest first.
    batch:
        Index of the host batch during which the violation surfaced.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        trail: list[str] | None = None,
        batch: int = 0,
    ) -> None:
        self.invariant = invariant
        self.detail = detail
        self.trail = list(trail or [])
        self.batch = batch
        super().__init__(self._render())

    def _render(self) -> str:
        lines = [f"[{self.invariant}] {self.detail} (batch {self.batch})"]
        if self.trail:
            lines.append("event trail (oldest first):")
            lines.extend(f"  {event}" for event in self.trail)
        return "\n".join(lines)


class _RecordingObserver:
    """Forwards FTL events to the inner observer and the sanitizer."""

    def __init__(self, sanitizer: FtlSanitizer, inner: Any) -> None:
        self._sanitizer = sanitizer
        self._inner = inner

    def on_program(self, gppa: int, lpa: int, tag: object, secure: bool) -> None:
        self._inner.on_program(gppa, lpa, tag, secure)
        self._sanitizer._on_program(gppa, lpa, secure)

    def on_invalidate(self, gppa: int, lpa: int, reason: str) -> None:
        self._inner.on_invalidate(gppa, lpa, reason)
        self._sanitizer._on_invalidate(gppa, lpa, reason)

    def on_sanitize(self, gppa: int, method: str) -> None:
        self._inner.on_sanitize(gppa, method)
        self._sanitizer._on_sanitize(gppa, method)

    def on_erase(self, global_block: int) -> None:
        self._inner.on_erase(global_block)
        self._sanitizer._on_erase(global_block)

    def on_logical_tick(self, ticks: int) -> None:
        self._inner.on_logical_tick(ticks)

    def on_lock_deferred(self, chip_id: int, n_locks: int, deferred_us: float) -> None:
        # timing-only event (repro.sim deferral policy): record it in the
        # trail so violation reports show deferral activity, and forward
        # if the inner observer cares; it never changes page status.
        notify_optional(
            self._inner, "on_lock_deferred", chip_id, n_locks, deferred_us
        )
        self._sanitizer._record(
            f"lock-drain chip={chip_id} n={n_locks} waited={deferred_us:.1f}us"
        )


class FtlSanitizer:
    """Shadow checker attached to one FTL instance.

    Construction chains a recording observer in front of the FTL's
    observer; :meth:`check_batch` is invoked by the FTL at the end of
    every ``submit``.
    """

    def __init__(
        self,
        ftl: PageMappedFtl,
        interval: int | None = None,
        trail_length: int = 64,
    ) -> None:
        self.ftl = ftl
        self.interval = max(1, interval if interval is not None else default_interval())
        scope = getattr(ftl, "sanitize_scope", "none")
        if scope not in SANITIZE_SCOPES:
            raise ValueError(
                f"{type(ftl).__name__}.sanitize_scope must be one of "
                f"{SANITIZE_SCOPES}, got {scope!r}"
            )
        self.scope = scope
        self.batch = 0
        self.full_checks = 0
        self.probes = 0
        self._trail: deque[str] = deque(maxlen=trail_length)
        #: shadow copy of the per-page status, driven purely by events.
        self._shadow: list[PageStatus] = [PageStatus.FREE] * ftl.config.physical_pages
        #: secured stale copies awaiting sanitization (must drain by
        #: the end of every batch).
        self._pending: set[int] = set()
        #: sanitized-but-not-yet-erased pages: gppa -> sanitize method.
        self._sanitized: dict[int, str] = {}
        #: pages sanitized during the current batch (probed eagerly).
        self._fresh: set[int] = set()
        ftl.observer = _RecordingObserver(self, ftl.observer)

    # ------------------------------------------------------------------
    # event stream (called by the recording observer)
    # ------------------------------------------------------------------
    def _record(self, event: str) -> None:
        self._trail.append(f"#{self.batch} {event}")

    def _fail(self, invariant: str, detail: str) -> None:
        raise InvariantViolation(
            invariant, detail, trail=list(self._trail), batch=self.batch
        )

    def _on_program(self, gppa: int, lpa: int, secure: bool) -> None:
        self._record(f"program gppa={gppa} lpa={lpa} secure={secure}")
        prev = self._shadow[gppa]
        if prev is not PageStatus.FREE:
            self._fail(
                "status-transition",
                f"program of gppa {gppa} while {prev.name} (must be FREE)",
            )
        self._shadow[gppa] = PageStatus.SECURED if secure else PageStatus.VALID

    def _on_invalidate(self, gppa: int, lpa: int, reason: str) -> None:
        self._record(f"invalidate gppa={gppa} lpa={lpa} reason={reason}")
        prev = self._shadow[gppa]
        if prev not in (PageStatus.VALID, PageStatus.SECURED):
            self._fail(
                "status-transition",
                f"invalidate of gppa {gppa} while {prev.name} "
                "(must be VALID or SECURED)",
            )
        self._shadow[gppa] = PageStatus.INVALID
        if prev is PageStatus.SECURED and self._requires_sanitize(reason):
            self._pending.add(gppa)

    def _on_sanitize(self, gppa: int, method: str) -> None:
        self._record(f"sanitize gppa={gppa} method={method}")
        self._pending.discard(gppa)
        self._sanitized[gppa] = method
        self._fresh.add(gppa)

    def _on_erase(self, global_block: int) -> None:
        self._record(f"erase block={global_block}")
        ppb = self.ftl.geometry.pages_per_block
        base = global_block * ppb
        for gppa in range(base, base + ppb):
            self._shadow[gppa] = PageStatus.FREE
            self._pending.discard(gppa)
            self._sanitized.pop(gppa, None)
            self._fresh.discard(gppa)

    def _requires_sanitize(self, reason: str) -> bool:
        if self.scope == "none":
            return False
        if self.scope == "all":
            return True
        return reason in VERSION_DEATH_REASONS

    # ------------------------------------------------------------------
    # batch boundary
    # ------------------------------------------------------------------
    def check_batch(self) -> None:
        """Verify invariants at the end of one host request batch."""
        self.batch += 1
        if self._pending:
            sample = sorted(self._pending)[:8]
            self._fail(
                "security",
                f"{len(self._pending)} secured stale page(s) left "
                f"unsanitized at batch end (e.g. gppa {sample}); scope="
                f"{self.scope!r}",
            )
        for gppa in sorted(self._fresh):
            self._probe(gppa, self._sanitized[gppa])
        self._fresh.clear()
        if self.batch % self.interval == 0:
            self.full_check()

    def full_check(self) -> None:
        """O(device) pass: shadow divergence, counters, bijection, probes."""
        self.full_checks += 1
        self._check_shadow_divergence()
        self._check_block_counters()
        self._check_mapping_bijection()
        for gppa, method in sorted(self._sanitized.items()):
            self._probe(gppa, method)

    def resync(self) -> None:
        """Re-adopt the FTL's tables as ground truth.

        Used after legitimate wholesale state rebuilds (power-loss
        recovery): the observer stream does not describe those, so the
        shadow is re-seeded from the real tables and the sanitize
        tracking is dropped (locked pages re-enter as plain INVALID,
        exactly how the recovery scan classifies them).
        """
        status = self.ftl.status
        self._shadow = [status.get(g) for g in range(status.physical_pages)]
        self._pending.clear()
        self._sanitized.clear()
        self._fresh.clear()
        self._record("resync (state rebuild adopted)")

    # ------------------------------------------------------------------
    # structural checks
    # ------------------------------------------------------------------
    def _check_shadow_divergence(self) -> None:
        status = self.ftl.status
        for gppa in range(status.physical_pages):
            real = status.get(gppa)
            shadow = self._shadow[gppa]
            if real is not shadow:
                self._fail(
                    "status-divergence",
                    f"gppa {gppa}: StatusTable says {real.name} but the "
                    f"observer event stream implies {shadow.name} (a "
                    "status mutation bypassed the observer hooks)",
                )

    def _check_block_counters(self) -> None:
        status = self.ftl.status
        ppb = self.ftl.geometry.pages_per_block
        for block_id in range(status.n_blocks):
            base = block_id * ppb
            live = secured = invalid = 0
            for gppa in range(base, base + ppb):
                st = status.get(gppa)
                if st in (PageStatus.VALID, PageStatus.SECURED):
                    live += 1
                    if st is PageStatus.SECURED:
                        secured += 1
                elif st is PageStatus.INVALID:
                    invalid += 1
            recounted = (live, secured, invalid)
            cached = (
                status.live_count(block_id),
                status.secured_count(block_id),
                status.invalid_count(block_id),
            )
            if recounted != cached:
                self._fail(
                    "block-counters",
                    f"block {block_id}: cached (live, secured, invalid)="
                    f"{cached} but recount gives {recounted}",
                )

    def _check_mapping_bijection(self) -> None:
        ftl = self.ftl
        l2p = ftl.l2p
        status = ftl.status
        from repro.ftl.mapping import UNMAPPED

        for lpa in range(l2p.logical_pages):
            gppa = l2p.lookup(lpa)
            if gppa == UNMAPPED:
                continue
            back = l2p.reverse(gppa)
            if back != lpa:
                self._fail(
                    "mapping-bijection",
                    f"l2p[{lpa}] = {gppa} but p2l[{gppa}] = {back}",
                )
        for gppa in range(l2p.physical_pages):
            lpa = l2p.reverse(gppa)
            mapped = lpa != UNMAPPED
            if mapped and l2p.lookup(lpa) != gppa:
                self._fail(
                    "mapping-bijection",
                    f"p2l[{gppa}] = {lpa} but l2p[{lpa}] = {l2p.lookup(lpa)}",
                )
            live = status.get(gppa) in (PageStatus.VALID, PageStatus.SECURED)
            if live and not mapped:
                self._fail(
                    "mapping-bijection",
                    f"gppa {gppa} is {status.get(gppa).name} but unmapped "
                    "(leaked live page)",
                )
            if mapped and not live:
                self._fail(
                    "mapping-bijection",
                    f"gppa {gppa} is mapped to lpa {lpa} but its status is "
                    f"{status.get(gppa).name}",
                )

    # ------------------------------------------------------------------
    # security probes: actually read the stale copy
    # ------------------------------------------------------------------
    def _probe(self, gppa: int, method: str) -> None:
        """Read a sanitized stale copy and assert it is unreadable.

        Probe reads restore the chip's operation counters -- and run with
        fault injection and the wear gate suspended -- so that a checked
        run reports identical statistics *and* an identical fault
        sequence to an unchecked one.  (The wear gate answers "is this
        block still serviceable?"; the probe asks "was this page
        sanitized?" -- a wear-degraded scrubbed page must still probe as
        scrubbed, not crash the probe with an ECC error.)
        """
        self.probes += 1
        ftl = self.ftl
        chip_id, ppn = ftl.split_gppa(gppa)
        chip = ftl.chips[chip_id]
        injector = getattr(ftl, "fault_injector", None)
        wear_gate = getattr(ftl, "wear_gate", None)
        saved_reads = chip.stats.reads
        saved_busy = chip.stats.busy_time_us
        try:
            with ExitStack() as stack:
                if injector is not None:
                    stack.enter_context(injector.suspended())
                if wear_gate is not None:
                    stack.enter_context(wear_gate.suspended())
                result = chip.read_page(ppn)
        finally:
            chip.stats.reads = saved_reads
            chip.stats.busy_time_us = saved_busy
        data = result.data
        if method in ("plock", "block_lock"):
            if data == ERASED_DATA:
                return  # erased since the lock: even more unreadable
            if not (result.blocked and data == ZERO_DATA):
                self._fail(
                    "unreadable-probe",
                    f"gppa {gppa} was sanitized via {method!r} but a read "
                    f"returned {data!r} (blocked={result.blocked}); "
                    "expected the all-zero locked pattern",
                )
        elif method == "scrub":
            if result.blocked and data == ZERO_DATA:
                # scrubbed beneath a still-enforcing lock: wear-out
                # retirement scrubs bLocked GC victims whose clearing
                # erase never happened -- doubly unreadable
                return
            if data not in (SCRUBBED_DATA, ERASED_DATA):
                self._fail(
                    "unreadable-probe",
                    f"gppa {gppa} was sanitized via scrub but a read "
                    f"returned {data!r}; expected scrubbed/erased cells",
                )
        elif method == "erase":
            if data != ERASED_DATA:
                self._fail(
                    "unreadable-probe",
                    f"gppa {gppa} was sanitized via erase but a read "
                    f"returned {data!r}; expected erased cells",
                )
        elif method == "key_delete":
            decrypt = getattr(ftl, "decrypt", None)
            if data == ERASED_DATA or decrypt is None:
                return
            if decrypt(data) is not None:
                self._fail(
                    "unreadable-probe",
                    f"gppa {gppa} was sanitized via key deletion but its "
                    "ciphertext still decrypts (key survived)",
                )
        else:
            self._fail(
                "unreadable-probe",
                f"gppa {gppa} reported an unknown sanitize method "
                f"{method!r}; cannot verify unreadability",
            )

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, int]:
        """Counters for reporting (``repro check``)."""
        return {
            "batches": self.batch,
            "full_checks": self.full_checks,
            "probes": self.probes,
            "tracked_sanitized": len(self._sanitized),
        }

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """Checkpoint payload (see :mod:`repro.checkpoint`).

        The shadow table and sanitize tracking must round-trip exactly:
        a restored checked run has to keep enforcing from the same
        vantage point -- and report the same counters -- as one that was
        never interrupted.
        """
        return {
            "batch": self.batch,
            "full_checks": self.full_checks,
            "probes": self.probes,
            "shadow": [int(s) for s in self._shadow],
            "pending": set(self._pending),
            "sanitized": dict(self._sanitized),
            "fresh": set(self._fresh),
            "trail": list(self._trail),
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.batch = state["batch"]
        self.full_checks = state["full_checks"]
        self.probes = state["probes"]
        self._shadow = [PageStatus(v) for v in state["shadow"]]
        self._pending = set(state["pending"])
        self._sanitized = dict(state["sanitized"])
        self._fresh = set(state["fresh"])
        self._trail = deque(state["trail"], maxlen=self._trail.maxlen)
