"""SIM09: multiprocessing only in ``analysis/parallel.py``.

Fanning work over processes is easy to get *running* and hard to get
*deterministic*: results merged in completion order, per-task seeds
derived from the salted built-in ``hash``, shared mutable state pickled
at surprising times -- each one silently breaks the repo's contract
that the same seed yields byte-identical artifacts, serial or parallel.

:mod:`repro.analysis.parallel` is the one module that owns that
contract (canonical task order, SHA-256 seed derivation, order-
independent merge, :class:`~repro.analysis.parallel.GridTaskError`
naming the failing cell).  Every other module expresses parallelism by
building :class:`~repro.analysis.parallel.GridTask` grids and calling
:func:`~repro.analysis.parallel.run_grid` -- never by importing
``multiprocessing`` or ``concurrent.futures`` itself, which is exactly
what this rule forbids.  (``threading`` is not banned: nothing in the
simulator uses it, but it poses no pickling/ordering trap and the
stdlib occasionally needs it.)
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.lint import FileContext, Finding, LintRule

#: top-level module names whose import means "I am doing process
#: fan-out myself" -- the thing run_grid exists to centralize.
FORBIDDEN_MODULES = ("multiprocessing", "concurrent")


class ParallelOnlyRule(LintRule):
    rule_id = "SIM09"
    severity = "error"
    description = (
        "process fan-out outside analysis/parallel.py "
        "(multiprocessing/concurrent.futures import)"
    )
    hint = (
        "build GridTask grids and call repro.analysis.parallel.run_grid; "
        "only analysis/parallel.py may import multiprocessing or "
        "concurrent.futures (it owns the determinism contract)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # in-package files only, except the one sanctioned module
        return ctx.rel_parts != ctx.path.parts and ctx.rel_parts != (
            "analysis",
            "parallel.py",
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                names = [node.module]
            else:
                continue
            for name in names:
                if name.split(".")[0] in FORBIDDEN_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"{self.description}: imports {name!r}",
                    )
                    break
