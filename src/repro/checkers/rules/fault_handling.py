"""SIM06: no silently swallowed flash errors.

Fault tolerance lives or dies on *accounted* failure handling: every
flash-level exception an FTL path absorbs (:class:`FlashError` or one of
its recoverable subclasses) must leave a trace -- re-raise, bump a
``stats`` counter, or at least inspect the bound exception.  An
``except UncorrectableError: pass`` hides a data-loss event from the
robustness scorecard and from the torture harness's determinism checks,
and is exactly the bug class the grown-bad/retry machinery exists to
avoid.

A handler is flagged when it catches one of the flash error names and
its body contains none of:

* a ``raise`` (re-raise or translate),
* an attribute chain through ``stats`` (failure accounting),
* a use of the bound exception name (``except FlashError as exc: ...``).

``PowerLossInjected`` is deliberately not in the list: it is not a
:class:`FlashError` and catching it at all (outside the torture harness)
is a bug this rule cannot see -- the type system handles it instead.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.lint import FileContext, Finding, LintRule, attr_tail

#: flash exception names whose handlers must account for the failure.
FLASH_ERROR_NAMES = frozenset(
    {
        "FlashError",
        "UncorrectableError",
        "ProgramFailError",
        "EraseFailError",
        "WearOutError",
    }
)


def _caught_names(handler: ast.ExceptHandler) -> set[str]:
    """Exception class names a handler catches (bare except: empty)."""
    node = handler.type
    if node is None:
        return set()
    parts = node.elts if isinstance(node, ast.Tuple) else [node]
    names: set[str] = set()
    for part in parts:
        tail = attr_tail(part)
        if tail:
            names.add(tail[-1])
    return names


def _accounts_for_failure(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Attribute) and node.attr == "stats":
            return True
        if (
            handler.name is not None
            and isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id == handler.name
        ):
            return True
    return False


class SwallowedFlashErrorRule(LintRule):
    rule_id = "SIM06"
    severity = "error"
    description = (
        "flash error caught and swallowed without accounting "
        "(no raise, no stats update, no use of the bound exception)"
    )
    hint = (
        "re-raise, bump a stats counter (e.g. self.stats.read_failures), "
        "or inspect the bound exception in the handler body"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _caught_names(node) & FLASH_ERROR_NAMES
            if not caught or _accounts_for_failure(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"handler for {', '.join(sorted(caught))} swallows the "
                "failure without accounting",
            )
