"""SIM12: FTL state mutations must be visible through the observer seam.

The runtime sanitizer, VerTrace profiler, and recovery cross-checker
shadow the device by replaying :class:`~repro.ftl.observer.FtlObserver`
events.  A ``PageMappedFtl`` method that flips page status or rewires
the L2P without an observer event desynchronizes every shadow -- the
auditors then either report phantom-recoverable pages or, worse, miss
real ones.  SIM05 already covers the sanitize chip commands; this rule
covers the *mapping-state* mutations:

=============================  =======================================
mutation on ``self.status``     required event (direct or transitive)
=============================  =======================================
``set_written(...)``            ``on_program``
``set_invalid(...)``            ``on_invalidate`` or ``on_sanitize``
``set_erased_block(...)``       ``on_erase``
-----------------------------  ---------------------------------------
mutation on ``self.l2p``
-----------------------------  ---------------------------------------
``map(...)``                    ``on_program`` or ``on_invalidate``
``unmap(...)``                  ``on_invalidate`` or ``on_sanitize``
=============================  =======================================

"Transitive" means the notification may live in a helper the mutating
method calls on ``self`` (``_invalidate`` pairs ``l2p.unmap`` +
``status.set_invalid`` + ``on_invalidate`` for everyone); the rule
closes over same-class and inherited method calls before flagging.
Only classes whose hierarchy reaches ``PageMappedFtl`` are checked --
rebuild/audit code (e.g. power-loss recovery) legitimately constructs
mapping state without a live observer and is resynced explicitly.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.lint import (
    Finding,
    ProjectRule,
    attr_chain,
    calls_in,
)

#: root class of the checked hierarchy.
FTL_BASE = "PageMappedFtl"

#: ``self.status.<method>`` -> events that account for the mutation.
STATUS_MUTATORS: dict[str, tuple[str, ...]] = {
    "set_written": ("on_program",),
    "set_invalid": ("on_invalidate", "on_sanitize"),
    "set_erased_block": ("on_erase",),
}

#: ``self.l2p.<method>`` -> events that account for the mutation.
L2P_MUTATORS: dict[str, tuple[str, ...]] = {
    "map": ("on_program", "on_invalidate"),
    "unmap": ("on_invalidate", "on_sanitize"),
}


def _direct_events(func: ast.AST) -> set[str]:
    """Observer events this function emits directly."""
    events: set[str] = set()
    for call in calls_in(func):
        chain = attr_chain(call.func)
        if chain is None:
            continue
        # self.observer.on_x(...) or observer.on_x(...)
        if len(chain) >= 2 and chain[-2] == "observer":
            events.add(chain[-1])
        # notify_optional(self.observer, "on_x", ...)
        if chain[-1] == "notify_optional" and len(call.args) >= 2:
            method = call.args[1]
            if isinstance(method, ast.Constant) and isinstance(
                method.value, str
            ):
                events.add(method.value)
    return events


def _self_calls(func: ast.AST) -> set[str]:
    """Names of methods this function calls on ``self``."""
    out: set[str] = set()
    for call in calls_in(func):
        chain = attr_chain(call.func)
        if chain is not None and len(chain) == 2 and chain[0] == "self":
            out.add(chain[1])
    return out


def _mutations(func: ast.AST) -> list[tuple[ast.Call, str, tuple[str, ...]]]:
    """(call node, mutator label, acceptable events) per mutation."""
    out = []
    for call in calls_in(func):
        chain = attr_chain(call.func)
        if chain is None or len(chain) != 3 or chain[0] != "self":
            continue
        receiver, method = chain[1], chain[2]
        if receiver == "status" and method in STATUS_MUTATORS:
            out.append((call, f"status.{method}", STATUS_MUTATORS[method]))
        elif receiver == "l2p" and method in L2P_MUTATORS:
            out.append((call, f"l2p.{method}", L2P_MUTATORS[method]))
    return out


class ObserverCompletenessRule(ProjectRule):
    rule_id = "SIM12"
    severity = "error"
    description = (
        "FTL page-status/L2P mutation without a matching observer event"
    )
    hint = (
        "emit the event in the mutating method or a self-helper it "
        "calls: set_written->on_program, set_invalid->on_invalidate, "
        "set_erased_block->on_erase, l2p.map->on_program, "
        "l2p.unmap->on_invalidate"
    )

    def check_project(self, project) -> Iterator[Finding]:
        for cls in project.subclasses_of(FTL_BASE):
            table = project.resolved_methods(cls)
            # events reachable from each method through self-calls
            reach_cache: dict[str, set[str]] = {}

            def reachable(name: str, stack: frozenset[str]) -> set[str]:
                if name in reach_cache:
                    return reach_cache[name]
                func = table.get(name)
                if func is None or name in stack:
                    return set()
                events = set(_direct_events(func))
                for callee in _self_calls(func):
                    events |= reachable(callee, stack | {name})
                reach_cache[name] = events
                return events

            module = project.modules.get(cls.module)
            if module is None:
                continue
            display = module.ctx.display_path
            for name, func in sorted(cls.methods.items()):
                for call, label, accepted in _mutations(func):
                    events = reachable(name, frozenset())
                    if not events.intersection(accepted):
                        wanted = " or ".join(accepted)
                        yield self.project_finding(
                            display,
                            call.lineno,
                            f"{cls.name}.{name} mutates self.{label} "
                            f"without notifying the observer ({wanted})",
                            col=call.col_offset + 1,
                        )
