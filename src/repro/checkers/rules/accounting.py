"""SIM02: chip operations must be accounted in timing *and* stats.

Every FTL call site that issues a flash command with a latency cost --
``plock``, ``block_lock``, ``erase_block``, ``scrub_wordline`` -- must,
in the same function, schedule the cost on the timing model
(``self.timing.*``) and bump a device counter (``self.stats.*``).  A
lock that is issued but not accounted silently skews the Figure-14
IOPS/WAF numbers; this is the classic refactor casualty the rule
guards against.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.lint import (
    FileContext,
    Finding,
    LintRule,
    attr_chain,
    attr_tail,
    calls_in,
    functions_of,
)

#: chip command methods with a latency/stats cost.
CHIP_OPS = frozenset({"plock", "block_lock", "erase_block", "scrub_wordline"})


def _is_chip_op_call(call: ast.Call) -> bool:
    """A call of one of the chip commands on something chip-like.

    ``self.timing.plock(...)`` / ``self.timing.block_lock(...)`` are the
    accounting calls themselves, not chip commands -- the ``timing``
    receiver excludes them.
    """
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in CHIP_OPS:
        return False
    tail = attr_tail(func)
    return "timing" not in tail[:-1]


def _accounts_timing(call: ast.Call) -> bool:
    chain = attr_chain(call.func)
    return chain is not None and len(chain) >= 3 and chain[:2] == ("self", "timing")


def _touches_stats(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            chain = attr_chain(node)
            if chain is not None and len(chain) >= 3 and chain[:2] == ("self", "stats"):
                return True
    return False


class LockAccountingRule(LintRule):
    rule_id = "SIM02"
    severity = "error"
    description = (
        "chip plock/block_lock/erase_block/scrub_wordline call site "
        "without a paired self.timing.* and self.stats.* update"
    )
    hint = (
        "schedule the operation on the timing model (self.timing.plock/"
        "block_lock/erase/scrub) and bump the matching DeviceStats "
        "counter in the same function"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package_dir("ftl")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in functions_of(ctx.tree):
            chip_calls = [c for c in calls_in(func) if _is_chip_op_call(c)]
            if not chip_calls:
                continue
            has_timing = any(_accounts_timing(c) for c in calls_in(func))
            has_stats = _touches_stats(func)
            if has_timing and has_stats:
                continue
            missing = []
            if not has_timing:
                missing.append("self.timing.*")
            if not has_stats:
                missing.append("self.stats.*")
            for call in chip_calls:
                assert isinstance(call.func, ast.Attribute)
                yield self.finding(
                    ctx,
                    call,
                    f"chip operation {call.func.attr!r} in "
                    f"{func.name!r} lacks {' and '.join(missing)} "
                    "accounting",
                )
