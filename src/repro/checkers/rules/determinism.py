"""SIM03: every random draw must come from a seeded generator.

Reproduction runs must be bit-identical across hosts and re-runs; the
paper's figures are regenerated from fixed seeds.  Module-level
randomness -- ``random.random()``, ``np.random.normal()``, an
argument-less ``random.Random()`` or ``np.random.default_rng()`` --
draws from global, time-seeded state and silently breaks that.  The
fix is always the same: accept or derive a seed and use an instance
(``random.Random(seed)`` / ``np.random.default_rng(seed)``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.lint import FileContext, Finding, LintRule, attr_chain

#: stdlib ``random`` module functions that draw from the global RNG.
STDLIB_GLOBAL_FNS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``numpy.random`` attributes that are legal to reference: the
#: generator type (annotations) and the seeded constructor.
NUMPY_ALLOWED = frozenset({"Generator", "default_rng", "SeedSequence"})


def _has_seed_argument(call: ast.Call) -> bool:
    return bool(call.args) or bool(call.keywords)


class UnseededRandomnessRule(LintRule):
    rule_id = "SIM03"
    severity = "error"
    description = "unseeded (module-level) randomness"
    hint = (
        "use an instance seeded from configuration: random.Random(seed) "
        "or np.random.default_rng(seed)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Attribute):
                yield from self._check_numpy_attr(ctx, node)

    # ------------------------------------------------------------------
    def _check_call(self, ctx: FileContext, call: ast.Call) -> Iterator[Finding]:
        chain = attr_chain(call.func)
        if chain is None:
            return
        if chain == ("random", "Random") and not _has_seed_argument(call):
            yield self.finding(
                ctx, call, "random.Random() constructed without a seed"
            )
        elif len(chain) == 2 and chain[0] == "random" and chain[1] in STDLIB_GLOBAL_FNS:
            yield self.finding(
                ctx,
                call,
                f"call to module-level random.{chain[1]}() "
                "(global, time-seeded RNG)",
            )
        elif chain[-1] == "default_rng" and not _has_seed_argument(call):
            yield self.finding(
                ctx, call, "default_rng() constructed without a seed"
            )

    def _check_numpy_attr(
        self, ctx: FileContext, node: ast.Attribute
    ) -> Iterator[Finding]:
        chain = attr_chain(node)
        if (
            chain is not None
            and len(chain) == 3
            and chain[0] in ("np", "numpy")
            and chain[1] == "random"
            and chain[2] not in NUMPY_ALLOWED
        ):
            yield self.finding(
                ctx,
                node,
                f"module-level numpy randomness np.random.{chain[2]} "
                "(global RNG state)",
            )
