"""SIM04: no float-literal equality in the flash reliability math.

The ``flash/`` package models Vth distributions, RBER curves, and ECC
margins in floating point.  Comparing such a quantity to a float
literal with ``==``/``!=`` is almost always a latent bug: the value is
the product of a computation and lands *near*, not *on*, the literal.
Use an ordered comparison against the threshold, ``math.isclose``, or
an integer representation instead.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.lint import FileContext, Finding, LintRule


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # unary minus on a float literal (-1.0)
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_float_literal(node.operand)
    )


class FloatEqualityRule(LintRule):
    rule_id = "SIM04"
    severity = "error"
    description = "float-literal ==/!= comparison in flash/ reliability math"
    hint = (
        "compare with an ordered operator (<=, >=), math.isclose, or "
        "restructure around an integer quantity"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package_dir("flash")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx,
                        node,
                        f"float literal compared with {symbol!r}",
                    )
