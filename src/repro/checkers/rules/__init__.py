"""The domain rule catalogue (SIM01..SIM16).

Each rule lives in its own module and encodes one simulator invariant:

* ``SIM01`` (:mod:`.encapsulation`) -- the ``StatusTable`` private
  arrays are only touched inside ``ftl/page_status.py``;
* ``SIM02`` (:mod:`.accounting`) -- chip lock/erase/scrub call sites in
  the FTL pair a ``self.timing.*`` and a ``self.stats.*`` update;
* ``SIM03`` (:mod:`.determinism`) -- no unseeded module-level
  randomness anywhere in the simulator;
* ``SIM04`` (:mod:`.float_eq`) -- no float-literal ``==``/``!=`` in the
  ``flash/`` reliability math;
* ``SIM05`` (:mod:`.observers`) -- every sanitize call site notifies
  the observer via ``on_sanitize``;
* ``SIM06`` (:mod:`.fault_handling`) -- no flash error is caught and
  swallowed without accounting (raise, stats, or exception use);
* ``SIM07`` (:mod:`.sim_clock`) -- no wall clock (``time``/``datetime``)
  or module-level ``random.*`` inside the ``sim/`` event engine;
* ``SIM08`` (:mod:`.no_print`) -- no ``print()`` calls in library code
  (``cli.py`` is the one module that talks to stdout);
* ``SIM09`` (:mod:`.parallel_only`) -- no ``multiprocessing`` /
  ``concurrent.futures`` imports outside ``analysis/parallel.py``
  (process fan-out goes through ``run_grid``'s determinism contract);
* ``SIM15`` (:mod:`.serialization`) -- no ``pickle``/``marshal``/
  ``shelve`` imports outside ``checkpoint/`` (durable state goes
  through the versioned, checksummed checkpoint codec);
* ``SIM16`` (:mod:`.artifacts`) -- no ad-hoc ``json.dump``/``dumps``
  outside the telemetry exporters and the checkpoint codec (run
  evidence must stay canonical and re-verifiable; existing report
  emitters are baselined).

The whole-program families (SIM10..SIM14) run over the
:class:`~repro.checkers.project.ProjectContext` built from every linted
file:

* ``SIM10`` (:mod:`.taint`) -- determinism taint: wall clock, entropy,
  process identity, and set iteration order must not flow into
  ``RunResult``, telemetry events, or JSON artifacts;
* ``SIM11`` (:mod:`.lockstep`) -- ``# lockstep:``-tagged paired code
  regions must stay AST-equivalent after normalization;
* ``SIM12`` (:mod:`.observer_complete`) -- ``PageMappedFtl`` methods
  that mutate page status or the L2P must emit the matching observer
  event (directly or through a self-helper);
* ``SIM13`` (:mod:`.units`) -- ``_ns``/``_us``/``_ms``/``_s`` suffix
  dimensional analysis over arithmetic, comparisons, and bindings;
* ``SIM14`` (:mod:`.layering`) -- the import-layer stack
  ``flash < ftl < ssd < sim < telemetry < analysis`` admits no upward
  (and therefore no cyclic) imports.

Suppress a rule on one line with ``# lint: disable=SIM0x`` or for a
whole file with ``# lint: disable-file=SIM0x`` (add a justification
after ``--``).
"""

from repro.checkers.rules.accounting import LockAccountingRule
from repro.checkers.rules.artifacts import ArtifactSerializationRule
from repro.checkers.rules.determinism import UnseededRandomnessRule
from repro.checkers.rules.encapsulation import StatusTableEncapsulationRule
from repro.checkers.rules.fault_handling import SwallowedFlashErrorRule
from repro.checkers.rules.float_eq import FloatEqualityRule
from repro.checkers.rules.layering import ImportLayeringRule
from repro.checkers.rules.lockstep import LockstepEquivalenceRule
from repro.checkers.rules.no_print import NoPrintRule
from repro.checkers.rules.observer_complete import ObserverCompletenessRule
from repro.checkers.rules.observers import SanitizeObserverRule
from repro.checkers.rules.parallel_only import ParallelOnlyRule
from repro.checkers.rules.serialization import SerializationBoundaryRule
from repro.checkers.rules.sim_clock import SimWallClockRule
from repro.checkers.rules.taint import DeterminismTaintRule
from repro.checkers.rules.units import TimeUnitConsistencyRule

#: registration order == report order for same-location findings.
ALL_RULES = (
    StatusTableEncapsulationRule,
    LockAccountingRule,
    UnseededRandomnessRule,
    FloatEqualityRule,
    SanitizeObserverRule,
    SwallowedFlashErrorRule,
    SimWallClockRule,
    NoPrintRule,
    ParallelOnlyRule,
    DeterminismTaintRule,
    LockstepEquivalenceRule,
    ObserverCompletenessRule,
    TimeUnitConsistencyRule,
    ImportLayeringRule,
    SerializationBoundaryRule,
    ArtifactSerializationRule,
)

RULES_BY_ID = {cls.rule_id: cls for cls in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "ArtifactSerializationRule",
    "DeterminismTaintRule",
    "FloatEqualityRule",
    "ImportLayeringRule",
    "LockAccountingRule",
    "LockstepEquivalenceRule",
    "NoPrintRule",
    "ObserverCompletenessRule",
    "ParallelOnlyRule",
    "SanitizeObserverRule",
    "SerializationBoundaryRule",
    "SimWallClockRule",
    "StatusTableEncapsulationRule",
    "SwallowedFlashErrorRule",
    "TimeUnitConsistencyRule",
    "UnseededRandomnessRule",
]
