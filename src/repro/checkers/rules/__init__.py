"""The domain rule catalogue (SIM01..SIM09).

Each rule lives in its own module and encodes one simulator invariant:

* ``SIM01`` (:mod:`.encapsulation`) -- the ``StatusTable`` private
  arrays are only touched inside ``ftl/page_status.py``;
* ``SIM02`` (:mod:`.accounting`) -- chip lock/erase/scrub call sites in
  the FTL pair a ``self.timing.*`` and a ``self.stats.*`` update;
* ``SIM03`` (:mod:`.determinism`) -- no unseeded module-level
  randomness anywhere in the simulator;
* ``SIM04`` (:mod:`.float_eq`) -- no float-literal ``==``/``!=`` in the
  ``flash/`` reliability math;
* ``SIM05`` (:mod:`.observers`) -- every sanitize call site notifies
  the observer via ``on_sanitize``;
* ``SIM06`` (:mod:`.fault_handling`) -- no flash error is caught and
  swallowed without accounting (raise, stats, or exception use);
* ``SIM07`` (:mod:`.sim_clock`) -- no wall clock (``time``/``datetime``)
  or module-level ``random.*`` inside the ``sim/`` event engine;
* ``SIM08`` (:mod:`.no_print`) -- no ``print()`` calls in library code
  (``cli.py`` is the one module that talks to stdout);
* ``SIM09`` (:mod:`.parallel_only`) -- no ``multiprocessing`` /
  ``concurrent.futures`` imports outside ``analysis/parallel.py``
  (process fan-out goes through ``run_grid``'s determinism contract).

Suppress a rule on one line with ``# lint: disable=SIM0x``.
"""

from repro.checkers.rules.accounting import LockAccountingRule
from repro.checkers.rules.determinism import UnseededRandomnessRule
from repro.checkers.rules.encapsulation import StatusTableEncapsulationRule
from repro.checkers.rules.fault_handling import SwallowedFlashErrorRule
from repro.checkers.rules.float_eq import FloatEqualityRule
from repro.checkers.rules.no_print import NoPrintRule
from repro.checkers.rules.observers import SanitizeObserverRule
from repro.checkers.rules.parallel_only import ParallelOnlyRule
from repro.checkers.rules.sim_clock import SimWallClockRule

#: registration order == report order for same-location findings.
ALL_RULES = (
    StatusTableEncapsulationRule,
    LockAccountingRule,
    UnseededRandomnessRule,
    FloatEqualityRule,
    SanitizeObserverRule,
    SwallowedFlashErrorRule,
    SimWallClockRule,
    NoPrintRule,
    ParallelOnlyRule,
)

RULES_BY_ID = {cls.rule_id: cls for cls in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "FloatEqualityRule",
    "LockAccountingRule",
    "NoPrintRule",
    "ParallelOnlyRule",
    "SanitizeObserverRule",
    "SimWallClockRule",
    "StatusTableEncapsulationRule",
    "SwallowedFlashErrorRule",
    "UnseededRandomnessRule",
]
