"""SIM14: import-layering contract across the simulator packages.

The packages form a strict stack -- each layer may import only from
layers *below* it::

    flash  <  ftl  <  ssd  <  sim  <  telemetry  <  analysis  <  audit  <  fleet

``flash`` is pure device physics; ``ftl`` builds mapping policy on it;
``ssd`` composes an FTL with timing/config into a device; ``sim`` drives
devices through the event engine; ``telemetry`` observes everything
beneath it; ``analysis`` consumes finished runs; ``audit`` replays
finished traces into sanitization certificates (so it may drive runs via
``analysis`` and probe devices, while ``fleet`` folds its certificates
into campaign reports); ``fleet`` composes
whole campaigns of devices over the analysis grid runner.  An *upward* import
(``ftl`` importing ``sim``, say) inverts the dependency stack, and --
because the contract is a total order -- any import cycle between named
layers necessarily contains an upward edge, so this one rule also keeps
the layer graph acyclic.

Packages outside the stack (``core``, ``host``, ``security``,
``workloads``, ``checkers``, ``faults``, top-level modules) are
cross-cutting and exempt.  Imports under ``if TYPE_CHECKING:`` are
allowed: they never execute, so they cannot create a runtime cycle, and
annotations legitimately point upward (an observer protocol typed
against the engine that drives it).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.checkers.lint import Finding, ProjectRule

#: the layer stack, lowest first.  Index == layer height.
LAYER_ORDER = (
    "flash", "ftl", "ssd", "sim", "telemetry", "analysis", "audit", "fleet",
)
LAYERS = {name: i for i, name in enumerate(LAYER_ORDER)}


class ImportLayeringRule(ProjectRule):
    rule_id = "SIM14"
    severity = "error"
    description = (
        "upward import between simulator layers "
        f"({' < '.join(LAYER_ORDER)})"
    )
    hint = (
        "depend downward only: move the shared code below both layers, "
        "invert the dependency through an observer/callback seam, or "
        "import under `if TYPE_CHECKING:` when only annotations need it"
    )

    def check_project(self, project) -> Iterator[Finding]:
        for module in project.iter_modules():
            src_pkg = module.top_package
            if src_pkg not in LAYERS:
                continue
            src_level = LAYERS[src_pkg]
            for edge in module.imports:
                dst_pkg = edge.top_package
                if dst_pkg is None or dst_pkg not in LAYERS:
                    continue
                if dst_pkg == src_pkg or edge.type_only:
                    continue
                dst_level = LAYERS[dst_pkg]
                if dst_level > src_level:
                    yield self.project_finding(
                        module.ctx.display_path,
                        edge.lineno,
                        f"{src_pkg!r} (layer {src_level}) imports "
                        f"{edge.module!r} from higher layer {dst_pkg!r} "
                        f"(layer {dst_level})",
                        col=edge.col,
                    )
