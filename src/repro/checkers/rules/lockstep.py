"""SIM11: AST-normalized equivalence of paired "lockstep" regions.

The hot paths duplicate small blocks of accounting code on purpose --
``RecordingTiming.read`` inlines ``TimingModel.read`` plus an op
capture, the engine inlines ``_start_next`` into ``_on_done`` -- because
a function call per flash op is measurable.  PR 5 marked those copies
"KEEP IN LOCKSTEP"; this rule makes the marker machine-checked, so the
vectorized-core and fleet-sharding refactors on the roadmap cannot
silently drift one copy (which would corrupt the byte-identity perf
gate rather than fail a test).

Sites declare themselves with ``# lockstep: begin/end <group>`` marker
comments (see :mod:`repro.checkers.project`); site-specific lines are
carved out with justified ``skip-begin``/``skip-end`` sub-regions.
Each group's sites are normalized by
:func:`repro.checkers.astnorm.normalize_region` -- copy propagation of
pure single-assignment locals, dead-binding elimination, alpha-renaming
-- and any canonical-form mismatch is an error.

Also flagged: malformed marker structure, groups with a single site
(only when a whole tree was scanned -- a lone-file lint cannot see the
sibling), and files that say "KEEP IN LOCKSTEP" in prose without any
machine-checkable region.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.checkers.astnorm import normalize_region, region_diff
from repro.checkers.lint import Finding, ProjectRule
from repro.checkers.project import (
    LOCKSTEP_PROSE,
    extract_region_statements,
)


class LockstepEquivalenceRule(ProjectRule):
    rule_id = "SIM11"
    severity = "error"
    description = "lockstep-tagged code regions have drifted apart"
    hint = (
        "edit every `# lockstep: begin <group>` site of the group the "
        "same way; wrap genuinely site-specific lines in "
        "`# lockstep: skip-begin -- reason` / `# lockstep: skip-end`"
    )

    def check_project(self, project) -> Iterator[Finding]:
        for path, line, message in project.lockstep_errors:
            yield self.project_finding(path, line, message)

        for group in sorted(project.lockstep_sites):
            sites = project.lockstep_sites[group]
            if len(sites) < 2:
                if project.tree_scan:
                    site = sites[0]
                    yield self.project_finding(
                        site.path,
                        site.begin_line,
                        f"lockstep group {group!r} has only one site; "
                        "either add the paired site or drop the marker",
                    )
                continue

            norms = []  # (canonical dump, site)
            failed = False
            for site in sites:
                module = project.by_path.get(site.path)
                if module is None:
                    continue
                stmts, errors = extract_region_statements(
                    module.ctx.tree, site
                )
                for line, message in errors:
                    failed = True
                    yield self.project_finding(site.path, line, message)
                if not stmts:
                    failed = True
                    yield self.project_finding(
                        site.path,
                        site.begin_line,
                        f"lockstep region {group!r} contains no statements",
                    )
                    continue
                norms.append((normalize_region(stmts), site))
            if failed or len(norms) < 2:
                continue
            reference, ref_site = norms[0]
            for canon, site in norms[1:]:
                if canon != reference:
                    yield self.project_finding(
                        site.path,
                        site.begin_line,
                        f"lockstep group {group!r} drifted from its "
                        f"sibling at {ref_site.path}:{ref_site.begin_line}: "
                        f"first divergence {region_diff(reference, canon)}",
                    )

        # prose marker without machine checking: the contract exists but
        # nothing enforces it
        for module in project.iter_modules():
            if module.lockstep_prose_line is None:
                continue
            if any(
                site.path == module.ctx.display_path
                for sites in project.lockstep_sites.values()
                for site in sites
            ):
                continue
            yield self.project_finding(
                module.ctx.display_path,
                module.lockstep_prose_line,
                f'"{LOCKSTEP_PROSE}" prose comment without a '
                "machine-checkable `# lockstep: begin <group>` region",
            )
