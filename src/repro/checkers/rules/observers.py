"""SIM05: sanitize call sites must notify the observer.

The VerTrace profiler, the sanitization auditor, and the runtime
invariant sanitizer all reconstruct the security state of the device
from the :class:`~repro.ftl.observer.FtlObserver` event stream.  An
FTL function that issues a sanitizing chip command (``plock``,
``block_lock``, ``scrub_wordline``) without an
``self.observer.on_sanitize(...)`` call leaves those tools blind: the
page *is* sanitized on the chip but every auditor still counts it as
recoverable.  (Erase-path notification is ``on_erase`` and is wired in
the shared ``_erase_block_now``; this rule covers the lock/scrub
commands that have no other event.)
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.lint import (
    FileContext,
    Finding,
    LintRule,
    attr_chain,
    attr_tail,
    calls_in,
    functions_of,
)

#: chip commands that sanitize data in place (no on_erase follows).
SANITIZE_OPS = frozenset({"plock", "block_lock", "scrub_wordline"})


def _is_sanitize_call(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in SANITIZE_OPS:
        return False
    tail = attr_tail(func)
    return "timing" not in tail[:-1]


def _notifies_observer(func: ast.AST) -> bool:
    for call in calls_in(func):
        chain = attr_chain(call.func)
        if chain is not None and chain[-2:] == ("observer", "on_sanitize"):
            return True
    return False


class SanitizeObserverRule(LintRule):
    rule_id = "SIM05"
    severity = "error"
    description = (
        "sanitizing chip command issued without notifying the observer "
        "(self.observer.on_sanitize)"
    )
    hint = (
        "call self.observer.on_sanitize(gppa, method) for every page the "
        "command sanitizes, in the same function"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package_dir("ftl")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in functions_of(ctx.tree):
            sanitize_calls = [c for c in calls_in(func) if _is_sanitize_call(c)]
            if not sanitize_calls or _notifies_observer(func):
                continue
            for call in sanitize_calls:
                assert isinstance(call.func, ast.Attribute)
                yield self.finding(
                    ctx,
                    call,
                    f"sanitizing command {call.func.attr!r} in "
                    f"{func.name!r} without self.observer.on_sanitize",
                )
