"""SIM16: run evidence goes through sanctioned serializers only.

The audit layer's value proposition is that every artifact can be
re-derived and re-verified byte for byte: JSONL event streams lead with
a disclosure header (the :mod:`repro.telemetry.export` writers),
certificates and checkpoints chain sha256 checksums over canonical
sorted-key JSON (:func:`repro.checkpoint.codec.canonical_dumps`).  An
ad-hoc ``json.dump(...)`` bypasses both: no sorted-keys contract, no
checksum, no header -- and its bytes silently depend on dict
construction order and default separators, which is exactly how a
"deterministic" artifact drifts between Python versions.

This rule flags direct ``json.dump``/``json.dumps`` call sites (the
writing side only -- reading stays free) outside the two sanctioned
writer modules.  Existing report emitters are grandfathered through the
lint baseline; *new* evidence paths must serialize through
``canonical_dumps`` or a telemetry exporter.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.lint import FileContext, Finding, LintRule

#: modules allowed to call ``json.dump(s)`` directly: the telemetry
#: exporters (headered JSONL / Chrome traces) and the checkpoint codec
#: (canonical sorted-key JSON with embedded checksums).
SANCTIONED = (
    ("telemetry", "export.py"),
    ("checkpoint",),
)


class ArtifactSerializationRule(LintRule):
    rule_id = "SIM16"
    severity = "error"
    description = (
        "ad-hoc json.dump/json.dumps outside the sanctioned "
        "artifact writers"
    )
    hint = (
        "serialize run evidence through "
        "repro.checkpoint.codec.canonical_dumps (sorted keys, "
        "checksummable) or a repro.telemetry.export writer "
        "(disclosure header included); ad-hoc json bytes are not "
        "re-verifiable"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.rel_parts == ctx.path.parts:  # outside the package
            return False
        return not any(
            ctx.rel_parts[: len(prefix)] == prefix for prefix in SANCTIONED
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "json":
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name in ("dump", "dumps")
                ]
                if bad:
                    yield self.finding(
                        ctx,
                        node,
                        f"{self.description}: imports json.{bad[0]} "
                        "directly",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("dump", "dumps")
                and isinstance(func.value, ast.Name)
                and func.value.id == "json"
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{self.description}: json.{func.attr}(...)",
                )
