"""SIM10: nondeterministic values must not reach result artifacts.

Everything downstream of a run -- the bench regression gate, the
serial-vs-parallel byte-identity check, the golden telemetry files --
assumes a run's artifacts are a pure function of (workload, config,
seed).  A wall-clock read, ``os.urandom`` byte, ``id()``, or unordered
``set`` iteration that flows into a :class:`RunResult`, a telemetry
event, or a JSON artifact breaks that silently: the gate starts to
flicker instead of gate.

The per-function taint environment comes from
:mod:`repro.checkers.dataflow` (sources, propagation, and the
``sorted()`` sanitizer are documented there).  This rule only *reports*
at sinks:

* ``RunResult(...)`` construction (the canonical result record);
* telemetry emission, ``<...>.bus.instant(...)`` /
  ``<...>.bus.complete(...)`` (and direct ``bus.*`` calls);
* ``json.dump(...)`` / ``json.dumps(...)`` (merged artifacts).

Intentional wall-clock measurement (the bench harness measures real
time on purpose) is suppressed at the sink line with a justified
``# lint: disable=SIM10 -- ...`` comment.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.dataflow import FunctionTaint
from repro.checkers.lint import (
    FileContext,
    Finding,
    LintRule,
    attr_chain,
    attr_tail,
    calls_in,
    functions_of,
)

#: constructor names treated as result-record sinks.
_RESULT_TYPES = frozenset({"RunResult"})

#: telemetry emission methods (on a ``bus`` receiver).
_BUS_EMITS = frozenset({"instant", "complete", "counter"})

#: json serialization entry points.
_JSON_SINKS = frozenset({("json", "dump"), ("json", "dumps")})


def _sink_label(call: ast.Call) -> str | None:
    """Human label when this call is a sink, else ``None``."""
    chain = attr_chain(call.func)
    tail = attr_tail(call.func)
    if chain and chain[-1] in _RESULT_TYPES:
        return f"{chain[-1]}(...) result record"
    if tail and tail[-1] in _BUS_EMITS and "bus" in tail[:-1]:
        return f"telemetry bus.{tail[-1]}(...)"
    if chain and len(chain) == 2 and chain[0] == "bus" and (
        chain[1] in _BUS_EMITS
    ):
        return f"telemetry bus.{chain[1]}(...)"
    if chain and chain[-2:] in _JSON_SINKS:
        return f"{'.'.join(chain[-2:])}(...) artifact"
    return None


class DeterminismTaintRule(LintRule):
    rule_id = "SIM10"
    severity = "error"
    description = (
        "nondeterministic value (wall clock, entropy, process identity, "
        "or set iteration order) flows into a result artifact"
    )
    hint = (
        "derive artifacts only from (workload, config, seed): sort sets "
        "before iterating, take time from the sim clock, or justify "
        "with `# lint: disable=SIM10 -- why` if measuring wall time is "
        "the point"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # functions_of also yields nested functions, whose calls would
        # otherwise be visited twice (once under the enclosing walk)
        reported: set[tuple[int, int]] = set()
        for func in functions_of(ctx.tree):
            taint_env: FunctionTaint | None = None
            for call in calls_in(func):
                label = _sink_label(call)
                if label is None:
                    continue
                if (call.lineno, call.col_offset) in reported:
                    continue
                if taint_env is None:
                    taint_env = FunctionTaint(func)
                args = list(call.args) + [kw.value for kw in call.keywords]
                for arg in args:
                    taint = taint_env.taint_of(arg)
                    if not taint:
                        continue
                    kinds = ", ".join(
                        f"{kind} (from line {line})"
                        for kind, line in sorted(taint.kinds.items())
                    )
                    reported.add((call.lineno, call.col_offset))
                    yield self.finding(
                        ctx,
                        call,
                        f"{label} receives {kinds} via "
                        f"{ast.unparse(arg)!r} in {func.name!r}",
                    )
                    break  # one finding per sink call is enough
