"""SIM13: time-unit suffix dimensional analysis.

The codebase encodes time units in identifier suffixes -- ``now_us``,
``elapsed_us``, ``wall_s``, ``t_prog_us`` -- because the simulator core
runs in microseconds while benchmark wall time is seconds.  Mixing them
compiles, runs, and produces numbers that are wrong by a factor of a
million, which in this repo means a silently corrupted IOPS figure, not
a crash.  This rule type-checks the suffix convention:

* ``a_us + b_ms``, ``a_us - b_s``, ``a_us < b_ms``: mixed-unit
  arithmetic/comparison between suffixed operands of different units;
* ``x_ms = expr_us``: assignment whose target suffix disagrees with the
  inferred unit of the value;
* ``f(duration_us=value_ms)``: keyword argument whose name disagrees
  with the value's unit;
* ``def foo_us(...) -> ...: return expr_ms``: function-name suffix vs
  returned unit.

Inference is deliberately shallow: a bare ``Name``/``Attribute`` has
the unit its suffix says; multiplying or dividing by anything drops to
"unknown" (that is what a unit *conversion* looks like -- ``us / 1e6``
is seconds); adding/subtracting a plain constant keeps the unit
(offsets); everything unknown stays silent.  Rate-style names
(``..._per_s``, ``events_per_sec``) are unitless by convention.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.lint import FileContext, Finding, LintRule, functions_of

#: recognized unit suffixes, longest first so ``_ns`` wins over ``_s``.
_SUFFIXES = ("_ns", "_us", "_ms", "_s")


def unit_of_name(name: str) -> str | None:
    """Unit carried by an identifier suffix (``None`` = unitless)."""
    lower = name.lower()
    if "_per_" in lower or lower.endswith(("per_s", "per_sec")):
        return None  # rates are their own dimension
    for suffix in _SUFFIXES:
        if lower.endswith(suffix):
            return suffix[1:]
    return None


def unit_of_expr(node: ast.expr) -> str | None:
    """Shallow unit inference (see module docstring)."""
    if isinstance(node, ast.Name):
        return unit_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of_name(node.attr)
    if isinstance(node, ast.Call):
        # max(a_us, b_us) and friends preserve a unanimous unit
        func = node.func
        fname = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if fname in {"max", "min", "abs", "sum", "float", "int", "round"}:
            units = {unit_of_expr(a) for a in node.args}
            units.discard(None)
            if len(units) == 1:
                return units.pop()
        return None
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, (ast.Add, ast.Sub)):
            left = unit_of_expr(node.left)
            right = unit_of_expr(node.right)
            if left and right:
                return left if left == right else None
            # adding a raw constant keeps the unit (offset)
            return left or right
        # Mult/Div/... against anything is a conversion or a new
        # dimension: unit unknown
        return None
    if isinstance(node, ast.UnaryOp):
        return unit_of_expr(node.operand)
    if isinstance(node, ast.IfExp):
        body = unit_of_expr(node.body)
        orelse = unit_of_expr(node.orelse)
        return body if body == orelse else None
    return None


def _operand_units(node: ast.expr) -> str | None:
    """Unit for mixed-operand checks: only trust direct suffixes."""
    if isinstance(node, ast.Name):
        return unit_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of_name(node.attr)
    return None


class TimeUnitConsistencyRule(LintRule):
    rule_id = "SIM13"
    severity = "error"
    description = "mixed time units in arithmetic, comparison, or binding"
    hint = (
        "convert explicitly at the boundary (e.g. `wall_us / 1e6` into a "
        "`_s` name); the suffix is the type"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left = _operand_units(node.left)
                right = _operand_units(node.right)
                if left and right and left != right:
                    yield self.finding(
                        ctx,
                        node,
                        f"arithmetic mixes units: "
                        f"{ast.unparse(node.left)} [{left}] "
                        f"{'+' if isinstance(node.op, ast.Add) else '-'} "
                        f"{ast.unparse(node.right)} [{right}]",
                    )
            elif isinstance(node, ast.Compare):
                units = [_operand_units(node.left)] + [
                    _operand_units(c) for c in node.comparators
                ]
                present = [u for u in units if u]
                if len(set(present)) > 1:
                    yield self.finding(
                        ctx,
                        node,
                        f"comparison mixes units "
                        f"({', '.join(sorted(set(present)))}): "
                        f"{ast.unparse(node)}",
                    )
            elif isinstance(node, ast.Assign):
                value_unit = unit_of_expr(node.value)
                if value_unit is None:
                    continue
                for target in node.targets:
                    target_unit = _operand_units(target)
                    if target_unit and target_unit != value_unit:
                        yield self.finding(
                            ctx,
                            node,
                            f"assigns a [{value_unit}] value to "
                            f"{ast.unparse(target)} [{target_unit}]",
                        )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg is None:
                        continue
                    arg_unit = unit_of_name(kw.arg)
                    value_unit = unit_of_expr(kw.value)
                    if arg_unit and value_unit and arg_unit != value_unit:
                        yield self.finding(
                            ctx,
                            kw.value,
                            f"keyword {kw.arg}= [{arg_unit}] receives a "
                            f"[{value_unit}] value: {ast.unparse(kw.value)}",
                        )

        for func in functions_of(ctx.tree):
            fn_unit = unit_of_name(func.name)
            if not fn_unit:
                continue
            for sub in _own_returns(func):
                if sub.value is None:
                    continue
                ret_unit = unit_of_expr(sub.value)
                if ret_unit and ret_unit != fn_unit:
                    yield self.finding(
                        ctx,
                        sub,
                        f"{func.name!r} [{fn_unit}] returns a "
                        f"[{ret_unit}] value: {ast.unparse(sub.value)}",
                    )


def _own_returns(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Return]:
    """Return statements of this function, excluding nested functions."""

    def visit(body: list[ast.stmt]) -> Iterator[ast.Return]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Return):
                yield stmt
            for name in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, name, None)
                if isinstance(sub, list):
                    yield from visit(sub)
            for handler in getattr(stmt, "handlers", []):
                yield from visit(handler.body)

    yield from visit(func.body)
