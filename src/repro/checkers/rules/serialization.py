"""SIM15: serialization decisions live in ``repro/checkpoint/`` only.

Durable state is a format contract: whatever writes it must still be
readable after a refactor, on the other Python version, and after a
torn write.  ``pickle`` and its relatives fail all three -- they
serialize *implementation* (class paths, attribute layouts), execute
arbitrary code on load, and offer no way to validate a partial read --
so the repo funnels every durable-state decision through
:mod:`repro.checkpoint`: a versioned, checksummed, tagged-JSON codec
with explicit ``state_dict`` contracts per subsystem.

This rule bans importing the pickle family anywhere outside
``checkpoint/`` (where the one sanctioned codec lives, should it ever
need to interoperate).  JSON via the checkpoint codec -- or plain
``json`` for *ephemeral, schema-stable* artifacts like reports -- is
the sanctioned path.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.lint import FileContext, Finding, LintRule

#: top-level module names that smuggle unversioned, code-executing
#: serialization formats into durable state.
FORBIDDEN_MODULES = ("pickle", "cPickle", "marshal", "shelve", "dill")


class SerializationBoundaryRule(LintRule):
    rule_id = "SIM15"
    severity = "error"
    description = (
        "unversioned serialization outside checkpoint/ "
        "(pickle/marshal/shelve import)"
    )
    hint = (
        "durable state goes through repro.checkpoint (versioned, "
        "checksummed, tagged-JSON state_dict contracts); only the "
        "checkpoint package may touch the pickle family"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # in-package files only, except the sanctioned checkpoint package
        return (
            ctx.rel_parts != ctx.path.parts
            and ctx.rel_parts[:1] != ("checkpoint",)
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                names = [node.module]
            else:
                continue
            for name in names:
                if name.split(".")[0] in FORBIDDEN_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"{self.description}: imports {name!r}",
                    )
                    break
