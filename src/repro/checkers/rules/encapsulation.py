"""SIM01: StatusTable private state is owned by ``page_status.py``.

The per-page status array and the per-block ``_live``/``_secured``/
``_invalid`` counters must only ever be mutated through the
``StatusTable`` transition methods (``set_written``/``set_invalid``/
``set_erased_block``): they enforce the FREE -> VALID/SECURED ->
INVALID -> FREE state machine and keep the counters consistent.  Any
direct access from another module bypasses those checks and is exactly
the kind of silent rot the runtime sanitizer exists to catch -- so the
lint bans it outright.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.lint import FileContext, Finding, LintRule

#: the StatusTable-private attribute names under guard.
GUARDED_ATTRS = frozenset({"_status", "_live", "_secured", "_invalid"})

#: the only module allowed to touch them.
OWNER_FILENAME = "page_status.py"


class StatusTableEncapsulationRule(LintRule):
    rule_id = "SIM01"
    severity = "error"
    description = (
        "direct access to StatusTable private state "
        "(_status/_live/_secured/_invalid) outside page_status.py"
    )
    hint = (
        "go through StatusTable's transition methods (set_written, "
        "set_invalid, set_erased_block) or read accessors (get, "
        "live_count, secured_count, invalid_count)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.filename != OWNER_FILENAME

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in GUARDED_ATTRS:
                yield self.finding(
                    ctx,
                    node,
                    f"direct access to StatusTable private attribute "
                    f"{node.attr!r} outside {OWNER_FILENAME}",
                )
