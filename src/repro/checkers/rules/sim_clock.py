"""SIM07: the event engine must not read the wall clock (or global RNG).

The discrete-event engine's determinism contract is that simulated time
advances *only* through the event heap: same seed, same report,
byte-identical.  One ``time.time()`` in an event handler (say, for a
"how long did this take" shortcut) or one module-level ``random.*``
draw silently couples the simulation to the host machine, and the
same-seed guarantee -- which the cross-check against the open-loop
model and every regression test depend on -- is gone.

The rule bans, inside ``repro/sim/``, ``repro/fleet/`` (whose merged
campaign reports carry the same byte-identity contract),
``repro/audit/`` (whose certificates must be byte-deterministic), and
``repro/checkpoint/`` (whose manifests, section checksums, and resumed
campaigns -- the aging studies ride on them -- must be reproducible
bit-for-bit):

* importing the ``time`` or ``datetime`` modules (or names from them);
* calling any ``time.*`` / ``datetime.*`` function;
* module-level ``random.*`` draws (seeded ``random.Random(seed)``
  instances remain fine, as everywhere else -- SIM03 already enforces
  the seeding part; SIM07 rejects the module-level form outright even
  when seeded, because ``random.seed()`` mutates global state shared
  with every other component).

Wall-clock measurement of the engine belongs *outside* the package --
see ``repro.analysis.bench_engine``, which times runs from the caller's
side.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.lint import FileContext, Finding, LintRule, attr_chain
from repro.checkers.rules.determinism import STDLIB_GLOBAL_FNS

#: modules whose very import signals wall-clock coupling.
CLOCK_MODULES = frozenset({"time", "datetime"})


class SimWallClockRule(LintRule):
    rule_id = "SIM07"
    severity = "error"
    description = "wall clock / global RNG inside the event engine"
    hint = (
        "advance time via the event heap (SimClock) and draw randomness "
        "from a seeded random.Random held by the arrival process; "
        "wall-clock benchmarking belongs in repro.analysis.bench_engine"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # fleet campaigns and audit certificates inherit the same
        # contract: reports and certificates must be byte-identical
        # across serial/parallel/resumed runs, which one wall-clock read
        # or global RNG draw would break.
        return (
            ctx.in_package_dir("sim")
            or ctx.in_package_dir("fleet")
            or ctx.in_package_dir("audit")
            or ctx.in_package_dir("checkpoint")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    # ------------------------------------------------------------------
    def _check_import(
        self, ctx: FileContext, node: ast.Import
    ) -> Iterator[Finding]:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in CLOCK_MODULES:
                yield self.finding(
                    ctx,
                    node,
                    f"import of {alias.name!r} inside repro.sim "
                    "(wall-clock coupling)",
                )

    def _check_import_from(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        root = (node.module or "").split(".")[0]
        if root in CLOCK_MODULES:
            names = ", ".join(alias.name for alias in node.names)
            yield self.finding(
                ctx,
                node,
                f"import of {names} from {node.module!r} inside repro.sim "
                "(wall-clock coupling)",
            )

    def _check_call(self, ctx: FileContext, call: ast.Call) -> Iterator[Finding]:
        chain = attr_chain(call.func)
        if chain is None or len(chain) < 2:
            return
        if chain[0] in CLOCK_MODULES:
            dotted = ".".join(chain)
            yield self.finding(
                ctx,
                call,
                f"call to {dotted}() inside repro.sim (simulated time must "
                "come from the event heap)",
            )
        elif chain[0] == "random" and chain[-1] in (
            STDLIB_GLOBAL_FNS | {"seed"}
        ):
            dotted = ".".join(chain)
            yield self.finding(
                ctx,
                call,
                f"module-level {dotted}() inside repro.sim (use a seeded "
                "random.Random instance)",
            )
