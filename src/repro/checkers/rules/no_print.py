"""SIM08: no ``print()`` in library code (``cli.py`` is the console).

The simulator is a library first: experiments import it, tests assert
on its return values, and the telemetry layer exists precisely so that
runtime observation flows through structured events instead of stray
stdout.  A ``print()`` buried in the FTL or the engine bypasses all of
that -- it cannot be captured, sampled, or turned off, and it corrupts
the byte-deterministic CLI output the golden tests diff.

The rule bans ``print`` *calls* in every module of the ``repro``
package except ``cli.py`` (the one place whose job is writing to the
console).  Passing ``print`` as a value -- e.g. the ``echo=print``
default of :func:`repro.checkers.lint.run_lint` -- stays legal: the
decision to write to stdout then rests with the caller, which is the
point.

Emit through the proper channel instead:

* simulator state changes -> the :class:`~repro.ftl.observer.FtlObserver`
  seam and :mod:`repro.telemetry` events;
* user-facing reports -> return strings (``format_*`` helpers) and let
  ``cli.py`` print them;
* diagnostics for humans -> an ``echo`` callable parameter defaulting
  to ``print``, so tests can capture and libraries can silence it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checkers.lint import FileContext, Finding, LintRule


class NoPrintRule(LintRule):
    rule_id = "SIM08"
    severity = "error"
    description = "print() in library code (only cli.py talks to stdout)"
    hint = (
        "return a formatted string, publish a telemetry event, or take an "
        "echo callable defaulting to print; only repro/cli.py calls print()"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # in-package files only (rel_parts differs from raw parts exactly
        # when a "repro" package root was stripped), excluding the CLI
        return ctx.rel_parts != ctx.path.parts and ctx.filename != "cli.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(ctx, node)
