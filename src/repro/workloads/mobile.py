"""Mobile workload -- Table 2 row 4.

Characteristics: read:write 1:50 (heavily write-dominated); create and
delete pictures; write requests of 0.5-8 MiB (32-512 pages).  Mirrors a
camera-roll pattern collected from an Android phone: the user shoots
large media files sequentially and the gallery app (or the user) expires
the oldest ones when space runs low.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.host.trace import TraceOp, append, create, delete, read
from repro.workloads.base import WorkloadGenerator, WorkloadProfile


class MobileWorkload(WorkloadGenerator):
    """Camera-roll pattern: large interleaved creates, expiry deletes.

    Pictures are shot in bursts (a camera burst, or camera + background
    sync writing concurrently), so consecutive chunks of different files
    interleave on flash -- which is what makes GC copy the surviving
    file's pages when the other one is deleted, giving Mobile's
    uni-version files their non-zero VAF (Table 1).
    """

    profile = WorkloadProfile(
        name="Mobile",
        reads_per_write=0.02,
        write_pattern="create/delete pictures",
        write_size_pages=(32, 512),
    )

    #: pictures written concurrently in one burst.
    burst_files = 3
    #: chunk size (pages) in which a burst's files interleave; 32 pages
    #: = 0.5 MiB, the smallest write request Table 2 lists for Mobile.
    chunk_pages = 32
    #: append requests emitted by the most recent burst.
    _burst_appends = 0

    def setup(self) -> Iterator[TraceOp]:
        target = int(self.capacity_pages * self.fill_fraction)
        while self._used < target:
            yield from self._shoot_burst()

    def steady(self, total_write_pages: int) -> Iterator[TraceOp]:
        max_burst = self.burst_files * min(
            self.profile.write_size_pages[1], max(1, self.capacity_pages // 8)
        )
        written = 0
        while written < total_write_pages:
            # expire until the worst-case burst fits below the high water
            while self._names and (
                self._used > self.capacity_pages * self.low_water
                or self._used + max_burst > self.capacity_pages * self.high_water
            ):
                yield from self._expire_picture()
            written += yield from self._shoot_burst()
            yield from self._reads(self._burst_appends)

    # ------------------------------------------------------------------
    def _shoot_burst(self) -> Iterator[TraceOp]:
        """Create a burst of pictures with chunk-interleaved appends."""
        n = self.rng.randint(1, self.burst_files)
        chunk = min(self.chunk_pages, max(1, self.capacity_pages // 8))
        names: list[str] = []
        remaining: list[int] = []
        for _ in range(n):
            name = self._new_name("img")
            self._track_create(name)
            names.append(name)
            # picture sizes are whole chunks so every append request
            # stays within Table 2's 0.5-8 MiB range
            size = self._write_size()
            remaining.append(max(chunk, size - size % chunk))
            yield create(name, insec=self._pick_insec())
        pages = 0
        appends = 0
        while any(remaining):
            for i, name in enumerate(names):
                if remaining[i] <= 0:
                    continue
                step = min(chunk, remaining[i])
                remaining[i] -= step
                self._track_grow(name, step)
                yield append(name, step)
                pages += step
                appends += 1
        self._burst_appends = appends
        return pages

    def _expire_picture(self) -> Iterator[TraceOp]:
        """Delete the oldest picture, or sometimes a random one."""
        if self.rng.random() < 0.7:
            name = self._oldest()
        else:
            name = self._random_file()
        if name is None:
            return
        self._track_delete(name)
        yield delete(name)

    def _reads(self, writes: int = 1) -> Iterator[TraceOp]:
        for _ in range(self._reads_due(writes)):
            name = self._random_file()
            if name is None or self._sizes[name] == 0:
                continue
            yield read(name, 0, self._sizes[name])
