"""Workload generator framework reproducing Table 2's I/O characteristics.

The paper replays four file-level traces (three Filebench-generated, one
collected from a Galaxy S2).  We regenerate equivalent synthetic traces:
each generator emits a setup phase that fills the device to a target
utilization (the paper pre-fills 75 % of capacity) followed by a steady
state whose

* read:write request ratio,
* file write pattern (create/append/delete vs. overwrite), and
* write request size distribution

match the corresponding Table 2 row.  Generators are pure and
deterministic (seeded ``random.Random``); they track their own usage
accounting so the emitted trace never overflows the file system.

The ``secure_fraction`` knob marks a fraction of created files
``O_INSEC`` so that roughly the complementary fraction of written data is
security-sensitive -- the Figure 14(c) sweep.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass

from repro.host.trace import TraceOp


@dataclass(frozen=True)
class WorkloadProfile:
    """Table 2 row: the workload's declared characteristics."""

    name: str
    reads_per_write: float
    write_pattern: str
    write_size_pages: tuple[int, int]  # inclusive range, 16-KiB pages


class WorkloadGenerator:
    """Base class for the four benchmark generators."""

    profile: WorkloadProfile

    def __init__(
        self,
        capacity_pages: int,
        seed: int = 0,
        secure_fraction: float = 1.0,
        fill_fraction: float = 0.75,
        high_water: float = 0.88,
        low_water: float = 0.80,
    ) -> None:
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        if not 0.0 <= secure_fraction <= 1.0:
            raise ValueError("secure_fraction must be in [0, 1]")
        if not 0.0 < fill_fraction < high_water <= 1.0:
            raise ValueError("need 0 < fill_fraction < high_water <= 1")
        self.capacity_pages = capacity_pages
        self.rng = random.Random(seed)
        self.secure_fraction = secure_fraction
        self.fill_fraction = fill_fraction
        self.high_water = high_water
        self.low_water = low_water
        self._sizes: dict[str, int] = {}
        self._order: deque[str] = deque()  # creation order (lazy deletion)
        self._names: list[str] = []        # O(1) random choice, swap-remove
        self._name_pos: dict[str, int] = {}
        self._used = 0
        self._serial = 0
        self._read_debt = 0.0

    # ------------------------------------------------------------------
    # bookkeeping helpers shared by the concrete generators
    # ------------------------------------------------------------------
    @property
    def used_pages(self) -> int:
        return self._used

    def _new_name(self, prefix: str) -> str:
        self._serial += 1
        return f"{prefix}-{self._serial:08d}"

    def _pick_insec(self) -> bool:
        return self.rng.random() >= self.secure_fraction

    def _write_size(self) -> int:
        lo, hi = self.profile.write_size_pages
        # cap request sizes on tiny (test-scale) devices
        hi = min(hi, max(1, self.capacity_pages // 8))
        lo = min(lo, hi)
        return self.rng.randint(lo, hi)

    def _track_create(self, name: str) -> None:
        self._sizes[name] = 0
        self._order.append(name)
        self._name_pos[name] = len(self._names)
        self._names.append(name)

    def _track_grow(self, name: str, npages: int) -> None:
        self._sizes[name] += npages
        self._used += npages

    def _track_delete(self, name: str) -> int:
        pages = self._sizes.pop(name)
        self._used -= pages
        # swap-remove from the random-choice list
        pos = self._name_pos.pop(name)
        last = self._names.pop()
        if last != name:
            self._names[pos] = last
            self._name_pos[last] = pos
        return pages

    def _oldest(self) -> str | None:
        while self._order and self._order[0] not in self._sizes:
            self._order.popleft()  # lazily drop deleted entries
        return self._order[0] if self._order else None

    def _random_file(self) -> str | None:
        if not self._names:
            return None
        return self.rng.choice(self._names)

    def _reads_due(self, writes: int = 1) -> int:
        """Reads owed to keep the request mix at the profile's ratio.

        ``writes`` is how many write requests were emitted since the last
        call (generators that batch appends pass the batch size).
        """
        self._read_debt += self.profile.reads_per_write * writes
        due = int(self._read_debt)
        self._read_debt -= due
        return due

    # ------------------------------------------------------------------
    # interface
    # ------------------------------------------------------------------
    def setup(self) -> Iterator[TraceOp]:
        """Initial fill to ``fill_fraction`` of capacity."""
        raise NotImplementedError

    def steady(self, total_write_pages: int) -> Iterator[TraceOp]:
        """Steady-state trace until ~``total_write_pages`` are written."""
        raise NotImplementedError

    def ops(self, write_multiplier: float = 4.0) -> Iterator[TraceOp]:
        """Full trace: setup + steady state.

        ``write_multiplier`` follows the paper's protocol: run until the
        steady-state written volume reaches that multiple of capacity
        (the paper writes 64 GiB against a 16-GiB device).
        """
        yield from self.setup()
        yield from self.steady(int(self.capacity_pages * write_multiplier))
