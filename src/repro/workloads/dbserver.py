"""DBServer workload -- Table 2 row 2.

Characteristics: read:write 1:10 (write-dominated); overwrites of data
files and log files; write requests of 16-256 KiB (1-16 pages).

Structure: a handful of large table files absorb skewed in-place updates
(hot 20 % of tables receive 80 % of updates, and within a table a hot
region receives most writes -- the classic OLTP pattern that produces the
paper's heavily multi-versioned files with VAF up to ~7.8); a redo log is
overwritten circularly; a set of cold static files created at setup is
never touched again and populates the uni-version class (whose VAF stays
near zero, Table 1's DBServer UV row).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.host.trace import TraceOp, append, create, read, write
from repro.workloads.base import WorkloadGenerator, WorkloadProfile


class DBServerWorkload(WorkloadGenerator):
    """OLTP-style in-place-update workload at 1:10 read:write."""

    profile = WorkloadProfile(
        name="DBServer",
        reads_per_write=0.1,
        write_pattern="overwrite data files and log files",
        write_size_pages=(1, 16),
    )

    n_tables = 4
    #: hot tables (receive ``hot_update_fraction`` of all updates).
    n_hot_tables = 2
    #: fraction of setup capacity given to cold, never-updated files
    #: (a DB server's bulk is cold segments; the update stream hammers a
    #: few small hot tables, which is what drives VAF to ~3-8, Table 1).
    cold_fraction = 0.85
    #: fraction of updates hitting the hot subset of tables.
    hot_update_fraction = 0.9

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._tables: list[str] = []
        self._log: str | None = None
        self._log_head = 0

    # ------------------------------------------------------------------
    def setup(self) -> Iterator[TraceOp]:
        """Create tables, log, and cold files with interleaved fills.

        Interleaving the fill chunks mixes cold and hot data in the same
        physical blocks -- when GC later collects a hot block it must
        relocate the cold (uni-version) pages it contains, which is where
        DBServer's small-but-nonzero UV VAF comes from (Table 1).
        """
        budget = int(self.capacity_pages * self.fill_fraction)
        cold_budget = int(budget * self.cold_fraction)
        log_budget = max(4, budget // 20)
        table_budget = max(1, (budget - cold_budget - log_budget) // self.n_tables)

        fill_plan: list[tuple[str, int]] = []
        for _ in range(self.n_tables):
            name = self._new_name("table")
            self._tables.append(name)
            self._track_create(name)
            yield create(name, insec=self._pick_insec())
            fill_plan.append((name, table_budget))

        self._log = self._new_name("redo-log")
        self._track_create(self._log)
        yield create(self._log, insec=self._pick_insec())
        fill_plan.append((self._log, log_budget))

        # most cold files are written contiguously (their blocks stay pure
        # and GC never touches them -> VAF ~ 0); one cold file is mixed
        # into the hot fill and picks up GC copies, giving the small
        # nonzero UV tail of Table 1's DBServer row.
        # one *small* cold file is mixed into the hot fill (it will pick
        # up GC copies, the UV tail of Table 1); the bulk cold files are
        # written contiguously so their blocks stay pure and untouched.
        mixed_cold = self._new_name("cold")
        self._track_create(mixed_cold)
        yield create(mixed_cold, insec=self._pick_insec())
        fill_plan.append((mixed_cold, table_budget))
        bulk_budget = max(1, cold_budget - table_budget)
        n_cold = max(2, self.n_tables * 2)
        cold_size = max(1, bulk_budget // n_cold)
        for _ in range(n_cold):
            name = self._new_name("cold")
            self._track_create(name)
            yield create(name, insec=self._pick_insec())
            self._track_grow(name, cold_size)
            yield append(name, cold_size)

        remaining = {name: pages for name, pages in fill_plan}
        names = [name for name, _ in fill_plan]
        while names:
            for name in list(names):
                chunk = min(remaining[name], self._write_size())
                self._track_grow(name, chunk)
                yield append(name, chunk)
                remaining[name] -= chunk
                if remaining[name] <= 0:
                    names.remove(name)

    def steady(self, total_write_pages: int) -> Iterator[TraceOp]:
        written = 0
        while written < total_write_pages:
            if self.rng.random() < 0.85:
                written += yield from self._update_table()
            else:
                written += yield from self._append_log()
            yield from self._reads()

    # ------------------------------------------------------------------
    def _fill_file(self, name: str, pages: int) -> Iterator[TraceOp]:
        remaining = pages
        while remaining > 0:
            chunk = min(remaining, self._write_size())
            self._track_grow(name, chunk)
            yield append(name, chunk)
            remaining -= chunk

    def _pick_table(self) -> str:
        hot_count = max(1, self.n_hot_tables)
        if self.rng.random() < self.hot_update_fraction:
            return self._tables[self.rng.randrange(hot_count)]
        return self._tables[self.rng.randrange(len(self._tables))]

    def _update_table(self) -> Iterator[TraceOp]:
        """In-place overwrite of a (skewed) extent of one table."""
        name = self._pick_table()
        size_pages = self._sizes[name]
        if size_pages == 0:
            return 0
        length = min(size_pages, self._write_size())
        # hot head of the table takes most updates
        if self.rng.random() < 0.7:
            window = max(length, size_pages // 5)
        else:
            window = size_pages
        offset = self.rng.randrange(0, max(1, window - length + 1))
        yield write(name, offset, length)
        return length

    def _append_log(self) -> Iterator[TraceOp]:
        """Circularly overwrite the redo log."""
        assert self._log is not None
        size_pages = self._sizes[self._log]
        length = min(size_pages, self._write_size())
        if length == 0:
            return 0
        if self._log_head + length > size_pages:
            self._log_head = 0
        yield write(self._log, self._log_head, length)
        self._log_head += length
        return length

    def _reads(self) -> Iterator[TraceOp]:
        for _ in range(self._reads_due()):
            name = self._random_file()
            if name is None or self._sizes[name] == 0:
                continue
            length = min(self._sizes[name], self._write_size())
            offset = self.rng.randrange(0, self._sizes[name] - length + 1)
            yield read(name, offset, length)
