"""MailServer workload -- Table 2 row 1.

Characteristics: read:write 1:1; create/append/delete e-mails; write
requests of 16-32 KiB (1-2 pages).  The file population is a large churn
of small files: new messages arrive constantly, old messages are expired
oldest-first, and a mailbox occasionally grows by appended messages.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.host.trace import TraceOp, append, create, delete, read
from repro.workloads.base import WorkloadGenerator, WorkloadProfile


class MailServerWorkload(WorkloadGenerator):
    """Small-file churn: create / append / delete at 1:1 read:write."""

    profile = WorkloadProfile(
        name="MailServer",
        reads_per_write=1.0,
        write_pattern="create/append/delete e-mails",
        write_size_pages=(1, 2),
    )

    #: average mail size in write requests (1-2 pages each).
    mail_writes = 2

    def setup(self) -> Iterator[TraceOp]:
        target = int(self.capacity_pages * self.fill_fraction)
        while self._used < target:
            yield from self._create_mail()

    def steady(self, total_write_pages: int) -> Iterator[TraceOp]:
        written = 0
        while written < total_write_pages:
            if self._used > self.capacity_pages * self.high_water:
                yield from self._expire_oldest()
                continue
            roll = self.rng.random()
            if roll < 0.55:
                written += yield from self._create_mail()
            elif roll < 0.80:
                name = self._random_file()
                if name is None:
                    continue
                size = self._write_size()
                self._track_grow(name, size)
                yield append(name, size)
                written += size
                yield from self._reads()
            else:
                yield from self._expire_oldest()

    # ------------------------------------------------------------------
    def _create_mail(self) -> Iterator[TraceOp]:
        """Create one message file from 1-2 appended write requests."""
        name = self._new_name("mail")
        self._track_create(name)
        yield create(name, insec=self._pick_insec())
        pages = 0
        for _ in range(self.rng.randint(1, self.mail_writes)):
            size = self._write_size()
            self._track_grow(name, size)
            yield append(name, size)
            pages += size
            yield from self._reads()
        return pages

    def _expire_oldest(self) -> Iterator[TraceOp]:
        name = self._oldest()
        if name is None:
            return
        self._track_delete(name)
        yield delete(name)

    def _reads(self) -> Iterator[TraceOp]:
        for _ in range(self._reads_due()):
            name = self._random_file()
            if name is None or self._sizes[name] == 0:
                continue
            npages = min(self._sizes[name], self.rng.randint(1, 2))
            yield read(name, 0, npages)
