"""Synthetic workload generators matching Table 2.

``WORKLOADS`` maps benchmark names to generator classes; every generator
emits the same file-level trace for a given (capacity, seed), so the
Figure-14 comparison replays identical traffic on every SSD variant.
"""

from repro.workloads.base import WorkloadGenerator, WorkloadProfile
from repro.workloads.dbserver import DBServerWorkload
from repro.workloads.fileserver import FileServerWorkload
from repro.workloads.mailserver import MailServerWorkload
from repro.workloads.mobile import MobileWorkload

WORKLOADS: dict[str, type[WorkloadGenerator]] = {
    "MailServer": MailServerWorkload,
    "DBServer": DBServerWorkload,
    "FileServer": FileServerWorkload,
    "Mobile": MobileWorkload,
}

__all__ = [
    "DBServerWorkload",
    "FileServerWorkload",
    "MailServerWorkload",
    "MobileWorkload",
    "WORKLOADS",
    "WorkloadGenerator",
    "WorkloadProfile",
]
