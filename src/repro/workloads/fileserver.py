"""FileServer workload -- Table 2 row 3.

Characteristics: read:write 3:4; create/append/delete files; write
requests of 32-128 KiB (2-8 pages).  Similar churn pattern to
MailServer but with larger files and a read-heavier mix (shared
documents are fetched often).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.host.trace import TraceOp, append, create, delete, read
from repro.workloads.base import WorkloadGenerator, WorkloadProfile


class FileServerWorkload(WorkloadGenerator):
    """Document churn: create / append / delete at 3:4 read:write."""

    profile = WorkloadProfile(
        name="FileServer",
        reads_per_write=0.75,
        write_pattern="create/append/delete files",
        write_size_pages=(2, 8),
    )

    #: write requests composing a freshly-created file.
    file_writes = 3

    def setup(self) -> Iterator[TraceOp]:
        target = int(self.capacity_pages * self.fill_fraction)
        while self._used < target:
            yield from self._create_file()

    def steady(self, total_write_pages: int) -> Iterator[TraceOp]:
        written = 0
        while written < total_write_pages:
            if self._used > self.capacity_pages * self.high_water:
                yield from self._remove_oldest()
                continue
            roll = self.rng.random()
            if roll < 0.45:
                written += yield from self._create_file()
            elif roll < 0.80:
                name = self._random_file()
                if name is None:
                    continue
                size = self._write_size()
                self._track_grow(name, size)
                yield append(name, size)
                written += size
                yield from self._reads()
            else:
                yield from self._remove_oldest()

    # ------------------------------------------------------------------
    def _create_file(self) -> Iterator[TraceOp]:
        name = self._new_name("doc")
        self._track_create(name)
        yield create(name, insec=self._pick_insec())
        pages = 0
        for _ in range(self.rng.randint(1, self.file_writes)):
            size = self._write_size()
            self._track_grow(name, size)
            yield append(name, size)
            pages += size
            yield from self._reads()
        return pages

    def _remove_oldest(self) -> Iterator[TraceOp]:
        name = self._oldest()
        if name is None:
            return
        self._track_delete(name)
        yield delete(name)

    def _reads(self) -> Iterator[TraceOp]:
        for _ in range(self._reads_due()):
            name = self._random_file()
            if name is None or self._sizes[name] == 0:
                continue
            npages = min(self._sizes[name], self._write_size())
            yield read(name, 0, npages)
