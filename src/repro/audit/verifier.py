"""The adversarial side of the audit: refute the certificate.

Three independent passes, each producing structured
:class:`AuditFinding` records rather than booleans (DESIGN 3k threat
model):

1. :func:`verify_certificate` -- recompute every section checksum, walk
   the hash chain, and re-derive the HMAC seal.  A bit flipped anywhere
   in the artifact surfaces as a ``checksum-mismatch`` /
   ``chain-mismatch`` / ``bad-signature`` finding.
2. :func:`verify_events` -- replay the lifecycle rules over the raw
   trace: simulated-time monotonicity of instants, per-category counts
   against the header's published totals, non-negative exposure
   windows, and zero lifecycle anomalies.  On a lossless trace (no
   drops, no strides) every one of these is exact, so a deleted,
   edited, or reordered record is caught; on a lossy trace the checks
   that depend on completeness degrade to an ``incomplete-evidence``
   disclosure instead of false confidence.
3. :func:`verify_device` -- the forensic cross-check: image the chips
   through :class:`~repro.security.attacker.RawChipAttacker` (the
   Section 5.1 raw-chip adversary) and attempt recovery of every page
   the ledger claims sanitized.  Method-aware expectations: pLock /
   bLock / erase must leave the page unreadable outright; scrub may
   leave only the destroyed-pattern residue; key deletion may leave
   ciphertext but never plaintext.  Any readable residue is a
   ``recoverable-sanitized-page``; a readable page the ledger never saw,
   or one whose LPA contradicts the ledger, is
   ``ledger-device-divergence``.

``AuditReport.ok`` is the one-bit outcome: no *fatal* findings.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
from dataclasses import dataclass, field

from repro.audit.certificate import (
    CERT_FORMAT,
    DEFAULT_KEY,
    KEY_ID,
    sign,
)
from repro.audit.ledger import DESTROYING_METHODS, PageLedger
from repro.checkpoint.codec import canonical_dumps, section_checksum
from repro.flash.chip import SCRUBBED_DATA
from repro.ftl.crypto_based import is_ciphertext
from repro.security.attacker import RawChipAttacker
from repro.ssd.device import SSD
from repro.telemetry import TraceEvent

#: trace categories the ledger replays; completeness checks cover these.
LEDGER_CATEGORIES = ("ftl.page", "ftl.sanitize", "ftl.flash")


@dataclass(frozen=True)
class AuditFinding:
    """One structured verification failure (or disclosure)."""

    code: str
    section: str
    detail: str
    fatal: bool = True

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "section": self.section,
            "detail": self.detail,
            "fatal": self.fatal,
        }


@dataclass
class AuditReport:
    """All findings from every pass that ran, plus what was checked."""

    findings: list[AuditFinding] = field(default_factory=list)
    checks: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(f.fatal for f in self.findings)

    def add(
        self, code: str, section: str, detail: str, fatal: bool = True
    ) -> None:
        self.findings.append(AuditFinding(code, section, detail, fatal))

    def checked(self, what: str, n: int = 1) -> None:
        self.checks[what] = self.checks.get(what, 0) + n

    def merge(self, other: AuditReport) -> None:
        self.findings.extend(other.findings)
        for what, n in other.checks.items():
            self.checked(what, n)

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "checks": dict(sorted(self.checks.items())),
            "findings": [f.to_dict() for f in self.findings],
        }


def evidence_complete(header: dict[str, object] | None) -> bool:
    """True when the trace retains every published ledger-relevant event."""
    if header is None:
        return False
    if header.get("dropped_events", 1) != 0:
        return False
    strides = header.get("sample_strides") or {}
    if isinstance(strides, dict) and any(
        int(n) > 1
        for cat, n in strides.items()
        if cat in LEDGER_CATEGORIES
    ):
        return False
    return True


# ---------------------------------------------------------------------------
# pass 1: the artifact itself
# ---------------------------------------------------------------------------
def verify_certificate(
    cert: dict[str, object], key: bytes = DEFAULT_KEY
) -> AuditReport:
    """Recompute checksums, hash chain, and seal of one certificate."""
    report = AuditReport()
    if cert.get("format") != CERT_FORMAT:
        report.add(
            "bad-format",
            "certificate",
            f"unknown certificate format {cert.get('format')!r}",
        )
        return report
    if cert.get("key_id") != KEY_ID:
        report.add(
            "bad-key-id", "certificate", f"unknown key id {cert.get('key_id')!r}"
        )
    sections = cert.get("sections")
    chain = cert.get("chain")
    if not isinstance(sections, dict) or not isinstance(chain, list):
        report.add("bad-format", "certificate", "missing sections or chain")
        return report
    chained_names = [link.get("section") for link in chain]
    if chained_names != sorted(sections):
        report.add(
            "chain-mismatch",
            "certificate",
            f"chain covers {chained_names}, sections are {sorted(sections)}",
        )
        return report
    tip = hashlib.sha256(f"{CERT_FORMAT}:{KEY_ID}".encode()).hexdigest()
    for link in chain:
        name = link["section"]
        expected = section_checksum(canonical_dumps(sections[name]))
        report.checked("certificate.sections")
        if link.get("checksum") != expected:
            report.add(
                "checksum-mismatch",
                name,
                f"section {name!r} checksum {link.get('checksum')!r} != "
                f"recomputed {expected!r}",
            )
        tip = hashlib.sha256((tip + expected).encode()).hexdigest()
        if link.get("chained") != tip:
            report.add(
                "chain-mismatch",
                name,
                f"hash chain diverges at section {name!r}",
            )
    expected_sig = sign(tip, key)
    if not hmac_mod.compare_digest(
        str(cert.get("signature", "")), expected_sig
    ):
        report.add(
            "bad-signature",
            "certificate",
            "HMAC seal does not match the recomputed chain tip",
        )
    return report


# ---------------------------------------------------------------------------
# pass 2: the raw event stream
# ---------------------------------------------------------------------------
def verify_events(
    header: dict[str, object] | None,
    events: list[TraceEvent],
    ledger: PageLedger,
) -> AuditReport:
    """Replay-level checks: ordering, counts, windows, lifecycle rules."""
    report = AuditReport()
    complete = evidence_complete(header)
    if not complete:
        report.add(
            "incomplete-evidence",
            "evidence",
            "trace lost events to ring-buffer capacity or sampling "
            "(or has no disclosure header); completeness checks degraded",
            fatal=False,
        )

    # simulated-time monotonicity of instants (publication order is
    # chronological for ph="i"; span records are stamped at start time).
    last_ts = None
    for event in events:
        if event.ph != "i":
            continue
        report.checked("events.ordered")
        if last_ts is not None and event.ts_us < last_ts:
            report.add(
                "event-order-violation",
                "events",
                f"instant {event.name!r} at t={event.ts_us} follows "
                f"t={last_ts} (simulated time ran backwards)",
            )
            break
        last_ts = event.ts_us

    # per-category counts against the header's published totals.
    if header is not None and complete:
        published = header.get("published") or {}
        seen: dict[str, int] = {}
        for event in events:
            seen[event.cat] = seen.get(event.cat, 0) + 1
        for cat in LEDGER_CATEGORIES:
            report.checked("events.counted")
            expected = int(published.get(cat, 0)) if isinstance(published, dict) else 0
            if seen.get(cat, 0) != expected:
                report.add(
                    "event-count-mismatch",
                    "events",
                    f"category {cat!r}: header published {expected} "
                    f"events, trace carries {seen.get(cat, 0)}",
                )

    # lifecycle replay results.
    for kind, n in sorted(ledger.anomalies.items()):
        report.add(
            f"lifecycle-violation:{kind}",
            "ledger",
            f"{n} {kind} event(s) during replay",
            fatal=complete,
        )
    for gen in ledger.generations:
        window = gen.exposure_us
        if window is not None:
            report.checked("events.windows")
            if window < 0:
                report.add(
                    "negative-exposure-window",
                    "ledger",
                    f"gppa {gen.gppa}: sanitize at t={gen.sanitize_ts} "
                    f"precedes invalidate at t={gen.invalidate_ts}",
                )
    return report


# ---------------------------------------------------------------------------
# pass 3: the physical device
# ---------------------------------------------------------------------------
def _acceptable_residue(method: str, payload: object) -> bool:
    """May ``payload`` legitimately remain readable after ``method``?"""
    if method in DESTROYING_METHODS:
        return False
    if method == "scrub":
        return payload == SCRUBBED_DATA
    if method == "key_delete":
        return is_ciphertext(payload)
    return False  # unknown method claims nothing


def verify_device(ledger: PageLedger, ssd: SSD, complete: bool = True) -> AuditReport:
    """Forensic cross-check of the ledger against the final chip state."""
    report = AuditReport()
    image = {
        page.gppa: page
        for page in RawChipAttacker(ssd).image_device().pages
    }
    last_gen = {gen.gppa: gen for gen in ledger.generations}
    for gppa, gen in sorted(last_gen.items()):
        recovered = image.get(gppa)
        if gen.closed:
            report.checked("device.sanitized_pages")
            if recovered is not None and not _acceptable_residue(
                str(gen.sanitize_method), recovered.payload
            ):
                report.add(
                    "recoverable-sanitized-page",
                    "device",
                    f"gppa {gppa}: ledger claims {gen.sanitize_method!r} at "
                    f"t={gen.sanitize_ts} but the raw-chip attacker still "
                    f"reads {recovered.payload!r}",
                )
        elif recovered is not None and recovered.lpa is not None:
            # open generation: a readable host payload must agree with
            # the ledger on which logical page lives here.
            report.checked("device.live_pages")
            if recovered.lpa != gen.lpa:
                report.add(
                    "ledger-device-divergence",
                    "device",
                    f"gppa {gppa}: device holds lpa {recovered.lpa}, "
                    f"ledger recorded lpa {gen.lpa}",
                )
    if complete:
        for gppa in sorted(set(image) - set(last_gen)):
            report.add(
                "ledger-device-divergence",
                "device",
                f"gppa {gppa}: readable page never appears in the ledger",
            )
    return report


# ---------------------------------------------------------------------------
def verify_all(
    cert: dict[str, object],
    header: dict[str, object] | None,
    events: list[TraceEvent],
    ledger: PageLedger,
    ssd: SSD | None = None,
    key: bytes = DEFAULT_KEY,
) -> AuditReport:
    """Run every applicable pass and cross-check cert against ledger."""
    report = verify_certificate(cert, key=key)
    report.merge(verify_events(header, events, ledger))

    # the certificate's ledger digest must match the trace we replayed:
    # a trace edited *after* issuance diverges here even if the edit is
    # internally consistent.
    sections = cert.get("sections")
    if isinstance(sections, dict):
        claimed = sections.get("ledger", {})
        if isinstance(claimed, dict):
            report.checked("certificate.ledger_digest")
            if claimed.get("digest") != ledger.digest():
                report.add(
                    "ledger-digest-mismatch",
                    "ledger",
                    "certificate ledger digest does not match the "
                    "digest recomputed from the trace",
                )
    if ssd is not None:
        report.merge(
            verify_device(ledger, ssd, complete=evidence_complete(header))
        )
    return report
