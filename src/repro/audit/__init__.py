"""Trace-replay sanitization audit (ROADMAP item 4).

The simulator already *asserts* sanitization in-process (the runtime
sanitizer, the torture campaign's leak checks); this package turns a
finished run into inspectable **evidence**:

* :mod:`repro.audit.ledger` replays the byte-deterministic telemetry
  JSONL stream into a per-page lifecycle ledger (program -> invalidate
  -> pLock/bLock/scrub/erase with simulated timestamps) and derives the
  paper's core privacy metric, the **exposure window** -- how long
  deleted secured data stayed readable.
* :mod:`repro.audit.certificate` folds the ledger, the evidence
  disclosure (ring-buffer drops, sample strides), and the run identity
  into a canonical sorted-key JSON **sanitization certificate** with a
  sha256 hash chain over its sections and an HMAC seal.
* :mod:`repro.audit.verifier` is the adversarial side: it re-derives
  every checksum, replays the lifecycle rules over the raw events, and
  -- when the live device is available -- cross-checks the ledger's
  claims against a raw-chip forensic image.  A tampered trace or a
  readable "sanitized" page fails the certificate with a structured
  finding, never silently.
* :mod:`repro.audit.run` glues the three together for ``repro audit``
  and the ``--cert-out`` flags of ``repro simulate`` / ``repro fleet``
  / ``repro torture``.
"""

from __future__ import annotations

from repro.audit.certificate import (
    CERT_FORMAT,
    build_certificate,
    certificate_text,
)
from repro.audit.ledger import PageGeneration, PageLedger, build_ledger
from repro.audit.run import (
    AuditResult,
    audit_live_run,
    audit_sim_result,
    audit_telemetry,
    audit_trace_file,
)
from repro.audit.verifier import AuditFinding, AuditReport, verify_all

__all__ = [
    "AuditFinding",
    "AuditReport",
    "AuditResult",
    "CERT_FORMAT",
    "PageGeneration",
    "PageLedger",
    "audit_live_run",
    "audit_sim_result",
    "audit_telemetry",
    "audit_trace_file",
    "build_certificate",
    "build_ledger",
    "certificate_text",
    "verify_all",
]
