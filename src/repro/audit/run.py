"""Audit orchestration: traces or live runs in, certificates out.

Two entry points, one per evidence source:

* :func:`audit_sim_result` -- in-process, right after a traced
  simulation: the event stream is still on the bus and the simulated
  device is still alive, so the certificate gets the full treatment
  including the raw-chip forensic cross-check.  This is what the
  ``--cert-out`` flags of ``repro simulate`` / ``repro torture`` and
  the fleet shard workers call.
* :func:`audit_trace_file` -- offline, from an archived JSONL trace
  (``repro audit trace.jsonl``): certificate + event-level
  verification; the device no longer exists, so the forensic pass is
  skipped and the certificate says so (``device_verified: false``).
  Pass a previously issued certificate to check the archive against it
  -- the ledger-digest cross-check catches post-issuance edits.

Certificates must be byte-deterministic (serial == ``--jobs N`` ==
kill+resume), so audits run their own large, unsampled telemetry
session (:func:`audit_telemetry`): a lossy bus would make the ledger
depend on ring-buffer capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.audit.certificate import build_certificate, DEFAULT_KEY
from repro.audit.ledger import PageLedger, build_ledger
from repro.audit.verifier import (
    AuditReport,
    evidence_complete,
    verify_all,
)
from repro.checkpoint.codec import canonical_dumps, section_checksum
from repro.sim.runner import SimResult
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSD
from repro.telemetry import Telemetry, TraceEvent
from repro.telemetry.export import read_jsonl, trace_header

#: ring capacity for audit-grade telemetry: large enough that no page
#: event is ever evicted at the scales the CLI exposes (a lossy bus
#: would poison the ledger and every certificate derived from it).
AUDIT_CAPACITY = 1 << 22


def audit_telemetry(capacity: int = AUDIT_CAPACITY) -> Telemetry:
    """A telemetry session fit for evidence: big ring, no sampling."""
    return Telemetry(capacity=capacity, sample=None)


def sanitize_latency_map(config: SSDConfig) -> dict[str, float]:
    """Per-method physical pulse latency carried into trace headers.

    Key deletion is a controller-RAM update, not a flash pulse, so it
    reads 0 -- which is honest *and* damning: the ciphertext itself
    stays readable forever (the verifier checks that separately).
    """
    return {
        "plock": config.t_plock_us,
        "block_lock": config.t_block_lock_us,
        "erase": config.t_erase_us,
        "scrub": config.t_scrub_us,
        "key_delete": 0.0,
    }


def config_fingerprint(config: SSDConfig) -> str:
    """Short deterministic fingerprint of the device configuration."""
    geometry = config.geometry
    payload = {
        "n_channels": config.n_channels,
        "chips_per_channel": config.chips_per_channel,
        "blocks_per_chip": geometry.blocks_per_chip,
        "wordlines_per_block": geometry.wordlines_per_block,
        "cell_type": int(geometry.cell_type),
        "page_size_bytes": geometry.page_size_bytes,
        "overprovision": config.overprovision,
        "gc_policy": config.gc_policy,
        "t_prog_us": config.t_prog_us,
        "t_erase_us": config.t_erase_us,
        "t_plock_us": config.t_plock_us,
        "t_block_lock_us": config.t_block_lock_us,
        "t_scrub_us": config.t_scrub_us,
    }
    return section_checksum(canonical_dumps(payload))[:12]


@dataclass
class AuditResult:
    """One audited run: ledger, certificate, and the verifier's verdict."""

    header: dict[str, object] | None
    ledger: PageLedger
    certificate: dict[str, object]
    report: AuditReport

    @property
    def ok(self) -> bool:
        return self.report.ok

    def to_dict(self) -> dict[str, object]:
        return {
            "certificate": self.certificate,
            "report": self.report.to_dict(),
        }


_RUN_META_KEYS = (
    "workload",
    "variant",
    "seed",
    "pages_per_block",
    "config_fingerprint",
    "tenant",
    "device",
)


def build_sections(
    header: dict[str, object],
    ledger: PageLedger,
    device_verified: bool,
) -> dict[str, object]:
    """The four evidence sections the certificate chains over."""
    return {
        "run": {
            key: header[key] for key in _RUN_META_KEYS if key in header
        },
        "evidence": {
            "header": dict(header),
            "complete": evidence_complete(header),
            "device_verified": device_verified,
        },
        "ledger": ledger.summary(),
        "exposure": ledger.exposure_summary(),
    }


def audit_events(
    header: dict[str, object],
    events: list[TraceEvent],
    ssd: SSD | None = None,
    certificate: dict[str, object] | None = None,
    key: bytes = DEFAULT_KEY,
) -> AuditResult:
    """Core pipeline: events -> ledger -> certificate -> verification.

    With ``certificate`` the given artifact is verified against the
    trace instead of issuing a fresh one.
    """
    pages_per_block = header.get("pages_per_block")
    if not isinstance(pages_per_block, int):
        raise ValueError(
            "trace header lacks 'pages_per_block'; the ledger cannot "
            "expand block erases without the geometry"
        )
    latency = header.get("sanitize_latency_us")
    ledger = build_ledger(
        events,
        pages_per_block,
        sanitize_latency_us=latency if isinstance(latency, dict) else None,
    )
    if certificate is None:
        certificate = build_certificate(
            build_sections(header, ledger, device_verified=ssd is not None),
            key=key,
        )
    report = verify_all(certificate, header, events, ledger, ssd=ssd, key=key)
    return AuditResult(
        header=header, ledger=ledger, certificate=certificate, report=report
    )


def audit_live_run(
    telemetry: Telemetry,
    config: SSDConfig,
    workload: str,
    variant: str,
    ssd: SSD | None = None,
    seed: int | None = None,
    key: bytes = DEFAULT_KEY,
    **extra_meta: object,
) -> AuditResult:
    """Audit any live traced run: the seam under :func:`audit_sim_result`.

    Callers that drive the device directly (the torture sweep's faulted
    replays have no :class:`~repro.sim.runner.SimResult`) pass the bare
    pieces; with ``ssd`` the raw-chip forensic cross-check runs too.
    """
    meta: dict[str, object] = {
        "workload": workload,
        "variant": variant,
        "pages_per_block": config.geometry.pages_per_block,
        "config_fingerprint": config_fingerprint(config),
        "sanitize_latency_us": sanitize_latency_map(config),
    }
    if seed is not None:
        meta["seed"] = seed
    meta.update(extra_meta)
    header = trace_header(telemetry.bus, **meta)
    return audit_events(header, telemetry.bus.events, ssd=ssd, key=key)


def audit_sim_result(
    sim: SimResult,
    telemetry: Telemetry,
    config: SSDConfig,
    seed: int | None = None,
    probe_device: bool = True,
    key: bytes = DEFAULT_KEY,
    **extra_meta: object,
) -> AuditResult:
    """Audit a just-finished traced simulation, device probe included."""
    return audit_live_run(
        telemetry,
        config,
        sim.workload,
        sim.variant,
        ssd=sim.device if probe_device else None,
        seed=seed,
        key=key,
        **extra_meta,
    )


def audit_trace_file(
    path: str | Path,
    certificate: dict[str, object] | None = None,
    pages_per_block: int | None = None,
    key: bytes = DEFAULT_KEY,
) -> AuditResult:
    """Audit an archived JSONL trace (no device; forensic pass skipped)."""
    header, events = read_jsonl(path)
    if header is None:
        if pages_per_block is None:
            raise ValueError(
                f"{path}: headerless trace; pass the device geometry "
                "(pages per block) explicitly"
            )
        header = {"pages_per_block": pages_per_block}
    elif pages_per_block is not None:
        header = {**header, "pages_per_block": pages_per_block}
    return audit_events(
        header, events, ssd=None, certificate=certificate, key=key
    )
