"""Sanitization certificates: canonical JSON, hash-chained, HMAC-sealed.

A certificate packages one run's sanitization evidence into a single
deterministic artifact (DESIGN 3k).  Layout::

    {
      "format":  "evanesco-cert/1",
      "key_id":  "evanesco-repro-audit/1",
      "sections": {
        "run":      { workload, variant, seed, config fingerprint, ... },
        "evidence": { trace-header disclosure: published counts, drops,
                      sample strides, device_verified flag },
        "ledger":   { digest, coverage counters, anomalies },
        "exposure": { count, p50_us, p99_us, max_us }
      },
      "chain": [ {section, checksum, chained}, ... ],   # sorted order
      "signature": "<hmac-sha256 hex>"
    }

Every section is serialized with the checkpoint codec's
:func:`~repro.checkpoint.codec.canonical_dumps` (sorted keys, compact,
trailing newline) and hashed with
:func:`~repro.checkpoint.codec.section_checksum`; ``chained[i]`` is
sha256 over ``chained[i-1] + checksum[i]`` seeded from the format tag,
so flipping a bit in any section breaks that section's checksum, every
later chain link, and the signature all at once.

The HMAC uses a fixed in-repo key: this is a *simulation artifact*, the
seal proves integrity (the bytes match what the audit layer emitted),
not provenance against an attacker who holds the repository.  Swapping
in a real key store only means replacing :data:`DEFAULT_KEY`.
"""

from __future__ import annotations

import hashlib
import hmac
from collections.abc import Mapping

from repro.checkpoint.codec import canonical_dumps, section_checksum

CERT_FORMAT = "evanesco-cert/1"
KEY_ID = "evanesco-repro-audit/1"

#: fixed HMAC key for repo-local certificates (see module docstring).
DEFAULT_KEY = b"evanesco-repro-audit"


def _chain(sections: Mapping[str, object]) -> tuple[list[dict[str, str]], str]:
    """Hash-chain the sections in sorted-name order; returns (links, tip)."""
    tip = hashlib.sha256(f"{CERT_FORMAT}:{KEY_ID}".encode()).hexdigest()
    links: list[dict[str, str]] = []
    for name in sorted(sections):
        checksum = section_checksum(canonical_dumps(sections[name]))
        tip = hashlib.sha256((tip + checksum).encode()).hexdigest()
        links.append({"section": name, "checksum": checksum, "chained": tip})
    return links, tip


def sign(tip: str, key: bytes = DEFAULT_KEY) -> str:
    return hmac.new(key, tip.encode(), hashlib.sha256).hexdigest()


def build_certificate(
    sections: Mapping[str, object], key: bytes = DEFAULT_KEY
) -> dict[str, object]:
    """Assemble a certificate over JSON-safe evidence sections."""
    if not sections:
        raise ValueError("a certificate needs at least one evidence section")
    links, tip = _chain(sections)
    return {
        "format": CERT_FORMAT,
        "key_id": KEY_ID,
        "sections": {name: sections[name] for name in sorted(sections)},
        "chain": links,
        "signature": sign(tip, key),
    }


def certificate_text(cert: Mapping[str, object]) -> str:
    """Canonical byte-deterministic serialization of a certificate."""
    return canonical_dumps(cert)
