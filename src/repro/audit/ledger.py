"""Per-page lifecycle ledger reconstructed from a telemetry trace.

The observer bridge publishes four page-relevant instants (DESIGN 3k):

* ``ftl.page/program``   -- ``{gppa, lpa, secure}`` opens a generation;
* ``ftl.page/invalidate`` -- ``{gppa, lpa, reason}`` marks it stale
  (for secured data this starts the **exposure window**);
* ``ftl.sanitize/sanitize`` -- ``{gppa, method}`` destroys it
  (``plock`` / ``block_lock`` / ``scrub`` / ``erase`` / ``key_delete``),
  closing the window;
* ``ftl.flash/erase`` -- ``{block}`` closes *every* still-open
  generation in the block's page range.  This is load-bearing for the
  baseline FTL, which never reports per-page sanitize at erase: the
  ledger expands the block event over ``pages_per_block`` pages, which
  is why trace headers carry the geometry.

Exposure windows add the *physical pulse duration* of the closing
method on top of the timestamp delta: instants are stamped when the FTL
issues the operation, but the data stays readable until the pulse
completes, so a pLock closes a window ~100 us after issue while a block
erase takes ~3.5 ms (the trace header carries the per-method latencies
so offline audits reproduce the run's timing model).  This is exactly
the asymmetry the paper measures: erase-based sanitization holds
deleted data readable for the whole relocate+erase, Evanesco's locks
for one ISPP pulse.

The ledger is replay, not trust: lifecycle violations (program over an
open page, sanitize of a never-programmed page on a lossless trace) are
recorded, and the verifier turns them into failures.  The ledger digest
-- sha256 over the canonical encoding of every generation -- is what the
certificate chains over, so editing one event perturbs the digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.checkpoint.codec import canonical_dumps, section_checksum
from repro.telemetry import TraceEvent
from repro.telemetry.histogram import percentile

#: sanitize methods that leave the page unreadable at the chip interface.
DESTROYING_METHODS = frozenset({"plock", "block_lock", "erase"})

#: invalidation reasons initiated by the host (a *deletion* in the
#: paper's sense); relocation reasons (gc, refresh, ...) leave equally
#: stale secured residue, so windows are measured over all of them, but
#: reports break the counts out by reason.
HOST_REASONS = frozenset({"host-trim", "host-update"})


@dataclass
class PageGeneration:
    """One program..sanitize lifetime of one physical page."""

    gppa: int
    lpa: int
    secure: bool
    program_ts: float
    invalidate_ts: float | None = None
    invalidate_reason: str | None = None
    sanitize_ts: float | None = None
    sanitize_method: str | None = None

    @property
    def closed(self) -> bool:
        return self.sanitize_method is not None

    @property
    def exposure_us(self) -> float | None:
        """Raw invalidate-to-sanitize timestamp delta (no pulse latency).

        ``None`` while either end is open.  The verifier checks this raw
        delta for negativity (simulated time cannot run backwards); the
        reported window adds the closing method's pulse duration -- see
        :meth:`PageLedger.window_of`.
        """
        if self.invalidate_ts is None or self.sanitize_ts is None:
            return None
        return self.sanitize_ts - self.invalidate_ts

    def record(self) -> list[object]:
        """Canonical JSON-safe row for the ledger digest."""
        return [
            self.gppa,
            self.lpa,
            self.secure,
            self.program_ts,
            self.invalidate_ts,
            self.invalidate_reason,
            self.sanitize_ts,
            self.sanitize_method,
        ]


@dataclass
class PageLedger:
    """Every reconstructed generation plus replay accounting."""

    pages_per_block: int
    #: per-method physical pulse latency (us) added onto the timestamp
    #: delta when reporting exposure windows; missing methods read 0.
    sanitize_latency_us: dict[str, float] = field(default_factory=dict)
    generations: list[PageGeneration] = field(default_factory=list)
    #: gppa -> index into ``generations`` of the still-open generation.
    open_by_gppa: dict[int, int] = field(default_factory=dict)
    #: lifecycle anomalies seen during replay, by kind.  On a lossless
    #: trace any non-zero count is evidence of tampering; on a lossy one
    #: (drops/strides disclosed) they are tolerated and disclosed.
    anomalies: dict[str, int] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    sanitized_by_method: dict[str, int] = field(default_factory=dict)
    invalidated_by_reason: dict[str, int] = field(default_factory=dict)

    # -- replay ---------------------------------------------------------
    def _anomaly(self, kind: str) -> None:
        self.anomalies[kind] = self.anomalies.get(kind, 0) + 1

    def _count(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def _close(self, index: int, ts: float, method: str) -> None:
        gen = self.generations[index]
        gen.sanitize_ts = ts
        gen.sanitize_method = method
        self.sanitized_by_method[method] = (
            self.sanitized_by_method.get(method, 0) + 1
        )
        del self.open_by_gppa[gen.gppa]

    def apply(self, event: TraceEvent) -> None:
        """Replay one bridge instant into the ledger."""
        args = event.args
        if event.cat == "ftl.page" and event.name == "program":
            self._count("programs")
            gppa = int(args["gppa"])  # type: ignore[arg-type]
            if gppa in self.open_by_gppa:
                # a page cannot be programmed twice without an erase
                self._anomaly("program-over-open-page")
                del self.open_by_gppa[gppa]
            self.open_by_gppa[gppa] = len(self.generations)
            self.generations.append(
                PageGeneration(
                    gppa=gppa,
                    lpa=int(args["lpa"]),  # type: ignore[arg-type]
                    secure=bool(args["secure"]),
                    program_ts=event.ts_us,
                )
            )
        elif event.cat == "ftl.page" and event.name == "invalidate":
            self._count("invalidations")
            reason = str(args.get("reason"))
            self.invalidated_by_reason[reason] = (
                self.invalidated_by_reason.get(reason, 0) + 1
            )
            index = self.open_by_gppa.get(int(args["gppa"]))  # type: ignore[arg-type]
            if index is None:
                self._anomaly("invalidate-without-program")
                return
            gen = self.generations[index]
            if gen.invalidate_ts is not None:
                self._anomaly("double-invalidate")
                return
            gen.invalidate_ts = event.ts_us
            gen.invalidate_reason = reason
        elif event.cat == "ftl.sanitize" and event.name == "sanitize":
            self._count("sanitizes")
            method = str(args.get("method"))
            index = self.open_by_gppa.get(int(args["gppa"]))  # type: ignore[arg-type]
            if index is None:
                self._anomaly("sanitize-without-program")
                return
            self._close(index, event.ts_us, method)
        elif event.cat == "ftl.flash" and event.name == "erase":
            self._count("erases")
            block = int(args["block"])  # type: ignore[arg-type]
            lo = block * self.pages_per_block
            for gppa in range(lo, lo + self.pages_per_block):
                index = self.open_by_gppa.get(gppa)
                if index is not None:
                    self._close(index, event.ts_us, "erase")

    # -- derived views --------------------------------------------------
    def open_generations(self) -> list[PageGeneration]:
        return [self.generations[i] for i in sorted(self.open_by_gppa.values())]

    def residual_secured(self) -> list[PageGeneration]:
        """Secured generations invalidated but never sanitized.

        This is exactly the stale-secured-exposure set the paper's
        attack reads off an insecure SSD; a secure variant's ledger
        should end with this empty (modulo in-flight locks at cutoff).
        """
        return [
            gen
            for gen in self.open_generations()
            if gen.secure and gen.invalidate_ts is not None
        ]

    def window_of(self, gen: PageGeneration) -> float | None:
        """Delete-to-unreadable window including the closing pulse."""
        raw = gen.exposure_us
        if raw is None:
            return None
        return raw + self.sanitize_latency_us.get(
            str(gen.sanitize_method), 0.0
        )

    def exposure_windows(self) -> list[float]:
        """Sorted delete-to-unreadable windows of secured generations."""
        return sorted(
            window
            for gen in self.generations
            if gen.secure and (window := self.window_of(gen)) is not None
        )

    def exposure_summary(self) -> dict[str, float]:
        windows = self.exposure_windows()
        return {
            "count": len(windows),
            "p50_us": percentile(windows, 50.0),
            "p99_us": percentile(windows, 99.0),
            "max_us": windows[-1] if windows else 0.0,
        }

    def digest(self) -> str:
        """sha256 over the canonical encoding of every generation."""
        rows = sorted(
            (gen.record() for gen in self.generations),
            key=lambda row: (row[0], row[3]),
        )
        return section_checksum(canonical_dumps(rows))

    def summary(self) -> dict[str, object]:
        """JSON-ready ledger section for the certificate."""
        residual = self.residual_secured()
        return {
            "digest": self.digest(),
            "generations": len(self.generations),
            "events": dict(sorted(self.counts.items())),
            "sanitized_by_method": dict(sorted(self.sanitized_by_method.items())),
            "invalidated_by_reason": dict(
                sorted(self.invalidated_by_reason.items())
            ),
            "open_at_end": len(self.open_by_gppa),
            "residual_secured": len(residual),
            "anomalies": dict(sorted(self.anomalies.items())),
        }


def build_ledger(
    events: list[TraceEvent],
    pages_per_block: int,
    sanitize_latency_us: dict[str, float] | None = None,
) -> PageLedger:
    """Replay a full event stream (publication order) into a ledger."""
    if pages_per_block < 1:
        raise ValueError("pages_per_block must be >= 1")
    ledger = PageLedger(
        pages_per_block=pages_per_block,
        sanitize_latency_us=dict(sanitize_latency_us or {}),
    )
    for event in events:
        ledger.apply(event)
    return ledger
