"""The Evanesco-enhanced flash chip -- Section 5.2.

Extends the behavioural :class:`~repro.flash.chip.FlashChip` with the two
new flash commands and the on-chip access-control read path:

* ``plock(ppn)`` programs the page's pAP flag cells (one-shot, SBPI);
* ``block_lock(pbn)`` programs the block's SSL cells above the read pass
  margin;
* every ``read_page`` first checks the bAP flag, then the pAP flag, and
  returns all-zero data when either is disabled (Figure 7's check order);
* ``erase_block`` resets both flag kinds -- the only way to unlock;
* ``raw_dump`` (the forensic attacker's view) honours the same checks,
  because the blocking logic lives *inside* the chip, below every
  interface the Section 5.1 attacker can use.

Simulation time is microseconds; lock retention physics works in days, so
reads convert via :data:`US_PER_DAY`.  At system-evaluation timescales the
conversion makes retention effects negligible, exactly as on real
hardware; the chip-level studies exercise the day-scale behaviour
directly through :mod:`repro.core.design_space`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ap_flags import PageApArray
from repro.core.flag_cells import FlagCellModel, PulseSettings, default_plock_pulse
from repro.core.ssl_lock import BlockApFlag, SslLockModel, default_block_pulse
from repro.flash import constants
from repro.flash.chip import FlashChip, ReadResult, ZERO_DATA
from repro.flash.errors import LockedBlockError, LockedPageError

US_PER_DAY = 86_400.0 * 1e6


@dataclass
class EvanescoChip(FlashChip):
    """Flash chip with pLock/bLock and AP-gated reads."""

    t_plock_us: float = constants.T_PLOCK_US
    t_block_lock_us: float = constants.T_BLOCK_LOCK_US
    flag_model: FlagCellModel = field(default_factory=FlagCellModel)
    plock_pulse: PulseSettings = field(default_factory=default_plock_pulse)
    ssl_model: SslLockModel = field(default_factory=SslLockModel)
    block_pulse: PulseSettings = field(default_factory=default_block_pulse)
    seed: int = 0
    _pap: list[PageApArray] = field(init=False)
    _bap: list[BlockApFlag] = field(init=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        self._pap = [
            PageApArray(
                pages_per_block=self.geometry.pages_per_block,
                model=self.flag_model,
                pulse=self.plock_pulse,
                seed=self.seed * 100_003 + b,
            )
            for b in range(self.geometry.blocks_per_chip)
        ]
        self._bap = [
            BlockApFlag(model=self.ssl_model, pulse=self.block_pulse)
            for _ in range(self.geometry.blocks_per_chip)
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def _day(now_us: float) -> float:
        return now_us / US_PER_DAY

    def plock(self, ppn: int, now: float = 0.0) -> float:
        """Lock one page: program its pAP flag cells; returns latency.

        The pulse also counts as one inhibited-program disturb event on
        the page's wordline (the Figure 9(b) reliability coupling).

        An injected lock failure models flag-cell majority loss: the
        pulse is issued (disturb and accounting happen) but no flag cell
        reaches the programmed state, so the k=9 majority circuit still
        reads *enabled*.  Callers verify via :meth:`page_locked`; the
        pulse is re-appliable, so retrying re-programs missed cells.
        """
        failed = self._begin_op("plock")
        block_index, page_offset = self.geometry.split_ppn(ppn)
        if not failed:
            self._pap[block_index].lock(page_offset, day=self._day(now))
        wl = self.geometry.wordline_of(page_offset)
        self.blocks[block_index].record_wl_disturb(wl)
        self.stats.plocks += 1
        self.stats.busy_time_us += self.t_plock_us
        return self.t_plock_us

    def block_lock(self, block_index: int, now: float = 0.0) -> float:
        """Lock a whole block: program its SSL cells; returns latency.

        Injected failures mirror :meth:`plock`: the pulse costs time but
        leaves the SSL cells below the disable threshold, so callers
        must verify with :meth:`block_locked`.
        """
        failed = self._begin_op("block_lock")
        self.geometry.check_block(block_index)
        if not failed:
            self._bap[block_index].lock(day=self._day(now))
        self.stats.blocks_locked += 1
        self.stats.busy_time_us += self.t_block_lock_us
        return self.t_block_lock_us

    # ------------------------------------------------------------------
    def page_locked(self, ppn: int, now: float = 0.0) -> bool:
        """Whether the chip would suppress a read of ``ppn`` right now."""
        block_index, page_offset = self.geometry.split_ppn(ppn)
        day = self._day(now)
        if self._bap[block_index].is_disabled(day):
            return True
        return self._pap[block_index].is_disabled(page_offset, day)

    def block_locked(self, block_index: int, now: float = 0.0) -> bool:
        self.geometry.check_block(block_index)
        return self._bap[block_index].is_disabled(self._day(now))

    def read_page(
        self, ppn: int, now: float = 0.0, strict: bool = False
    ) -> ReadResult:
        """AP-gated read (Figure 7): bAP checked first, then pAP.

        A locked target returns all-zero data with ``blocked=True``; with
        ``strict=True`` the locked read raises instead, which tests and
        auditors use to assert enforcement.

        The fault boundary is consulted exactly once per read, here: a
        blocked read deterministically outputs zeros (the AP check gates
        sensing), so an injected transient failure only applies when the
        data path is actually sensed.
        """
        fail = False if self.fault_hook is None else self._begin_op("read")
        block_index, page_offset = self.geometry.split_ppn(ppn)
        day = self._day(now)
        if self._bap[block_index].is_disabled(day):
            self.stats.reads += 1
            self.stats.busy_time_us += self.t_read_us
            if strict:
                raise LockedBlockError(f"block {block_index} is bLocked")
            return ReadResult(ZERO_DATA, {}, self.t_read_us, blocked=True)
        if self._pap[block_index].is_disabled(page_offset, day):
            self.stats.reads += 1
            self.stats.busy_time_us += self.t_read_us
            if strict:
                raise LockedPageError(f"ppn {ppn} is pLocked")
            return ReadResult(ZERO_DATA, {}, self.t_read_us, blocked=True)
        return self._sense_page(ppn, fail)

    def erase_block(self, block_index: int, now: float = 0.0) -> float:
        """Erase resets both pAP and bAP flags (the only unlock path)."""
        latency = super().erase_block(block_index, now)
        self._pap[block_index].erase()
        self._bap[block_index].erase()
        return latency

    # ------------------------------------------------------------------
    def raw_dump(self, now: float = 0.0) -> dict[int, object]:
        """Forensic view honouring the on-chip AP logic.

        Locked pages are *absent* from the dump: the attacker's reads of
        them return zeros no matter which interface is used.
        """
        out: dict[int, object] = {}
        day = self._day(now)
        for block in self.blocks:
            if self._bap[block.index].is_disabled(day):
                continue
            pap = self._pap[block.index]
            for offset, page in enumerate(block.pages):
                if page.is_erased or pap.is_disabled(offset, day):
                    continue
                out[self.geometry.ppn(block.index, offset)] = page.data
        return out

    def locked_page_count(self) -> int:
        """Pages with a pLock issued (plus none from bLock), for stats."""
        return sum(len(pap.locked_offsets()) for pap in self._pap)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """Base chip state plus the pAP/bAP flag arrays."""
        state = super().state_dict()
        state["pap"] = [pap.state_dict() for pap in self._pap]
        state["bap"] = [bap.state_dict() for bap in self._bap]
        return state

    def load_state_dict(self, state: dict[str, object]) -> None:
        super().load_state_dict(state)
        for pap, payload in zip(self._pap, state["pap"]):
            pap.load_state_dict(payload)
        for bap, payload in zip(self._bap, state["bap"]):
            bap.load_state_dict(payload)
