"""Empirical model of pAP flag cells -- Section 5.3.

Evanesco stores each page's access-permission (pAP) flag in ``k`` spare
SLC-mode flash cells on the page's wordline, programmed with a single
low-voltage one-shot pulse under SBPI inhibition of every other cell.
Three physical responses govern the design space of Figure 9:

* **Data disturb** (Fig. 9b): the pulse disturbs the inhibited data cells;
  too high a program voltage or too long a pulse measurably raises the
  wordline's RBER.
* **Program success** (Fig. 9c): too weak a pulse fails to program the
  flag cells -- the paper measures 47.3 % success at (Vp1, 100 us).
* **Retention flips** (Fig. 9d): a weakly-programmed flag cell can lose
  its charge and read back as *enabled* again, which would unlock
  sanitized data; k-modular redundancy with a majority vote must absorb
  the flips over the retention requirement.

This module is calibrated (see DESIGN.md) so the three responses
reproduce the anchor points the paper reports:

* per-cell program success at (Vp1, 100 us) is ~47.3 %;
* at the 5-year requirement, combination (vi) = (Vp2, 200 us) loses ~5 of
  9 flag cells while (i) = (Vp4, 150 us) loses at most ~2;
* Region I = {(Vp4, 200 us)} + all of Vp5 raises data RBER by up to ~20 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import erf, exp, log1p, log2, sqrt

import numpy as np

from repro.flash import constants

_SQRT2 = sqrt(2.0)


def _phi(z: float) -> float:
    return 0.5 * (1.0 + erf(z / _SQRT2))


@dataclass(frozen=True)
class PulseSettings:
    """One (program voltage, program latency) point of the design space."""

    vpgm: float
    latency_us: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.vpgm:.1f} V, {self.latency_us:.0f} us)"


def plock_design_space() -> list[PulseSettings]:
    """The paper's initial pLock space: Psi x T = 5 voltages x 3 latencies."""
    voltages = [
        constants.PLOCK_VPGM_BASE + i * constants.PLOCK_VPGM_STEP
        for i in range(constants.PLOCK_VPGM_COUNT)
    ]
    return [
        PulseSettings(v, t)
        for t in constants.PLOCK_LATENCIES_US
        for v in voltages
    ]


@dataclass(frozen=True)
class FlagCellModel:
    """Calibrated responses of a flag cell to a one-shot program pulse.

    The internal "program energy" ``E`` summarizes a pulse: roughly linear
    in voltage and logarithmic in duration, the standard first-order model
    of FN-tunnelling charge transfer.
    """

    #: voltage coefficient of the program energy.
    volt_coef: float = 1.1
    #: per-octave latency coefficient of the program energy.
    time_coef: float = 0.5
    #: success-curve location/scale: success = Phi((E - loc) / scale).
    success_loc: float = 0.017
    success_scale: float = 0.28
    #: minimum per-cell success rate considered manufacturable (Region II).
    success_floor: float = 0.999
    #: retention model: flip prob = Phi((ret_coef*log1p(days) - ret_base
    #: - ret_margin*E) / ret_scale).
    ret_coef: float = 0.22
    ret_base: float = 1.258
    ret_margin: float = 0.46
    ret_scale: float = 0.35
    #: data-disturb model: factor = 1 + amp / (1 + exp(-(D - loc)/scale))
    #: with D = dist_volt*(V - base) + dist_time*log2(t/100us).
    dist_volt: float = 1.4
    dist_time: float = 0.5
    dist_amp: float = 0.20
    dist_loc: float = 2.75
    dist_scale: float = 0.12
    #: data-RBER increase considered unacceptable (Region I), relative.
    disturb_ceiling: float = 1.02

    # ------------------------------------------------------------------
    def program_energy(self, pulse: PulseSettings) -> float:
        return self.volt_coef * (
            pulse.vpgm - constants.PLOCK_VPGM_BASE
        ) + self.time_coef * log2(pulse.latency_us / 100.0)

    def program_success_prob(self, pulse: PulseSettings) -> float:
        """Per-cell probability that the pulse programs the flag cell."""
        e = self.program_energy(pulse)
        return _phi((e - self.success_loc) / self.success_scale)

    def programs_reliably(self, pulse: PulseSettings) -> bool:
        """Region II predicate: can this pulse be trusted to set flags?"""
        return self.program_success_prob(pulse) >= self.success_floor

    # ------------------------------------------------------------------
    def retention_flip_prob(self, pulse: PulseSettings, days: float) -> float:
        """Per-cell probability a programmed flag cell reads enabled again."""
        if days <= 0.0:
            return 0.0
        e = self.program_energy(pulse)
        z = (
            self.ret_coef * log1p(days) - self.ret_base - self.ret_margin * e
        ) / self.ret_scale
        return _phi(z)

    def expected_retention_errors(
        self, pulse: PulseSettings, days: float, k: int = constants.PAP_REDUNDANCY_K
    ) -> float:
        """Expected flipped cells among ``k`` after ``days`` of retention."""
        return k * self.retention_flip_prob(pulse, days)

    def flag_failure_prob(
        self, pulse: PulseSettings, days: float, k: int = constants.PAP_REDUNDANCY_K
    ) -> float:
        """Probability the k-cell majority reads *enabled* after retention.

        A locked flag fails open when at least ``(k + 1) // 2`` of its
        cells flip back below the flag read level.
        """
        q = self.retention_flip_prob(pulse, days)
        need = (k + 1) // 2
        # exact binomial tail
        prob = 0.0
        for j in range(need, k + 1):
            prob += _binom(k, j) * q**j * (1.0 - q) ** (k - j)
        return prob

    # ------------------------------------------------------------------
    def data_rber_factor(self, pulse: PulseSettings) -> float:
        """Multiplicative RBER penalty on inhibited data cells (Fig. 9b)."""
        d = self.dist_volt * (
            pulse.vpgm - constants.PLOCK_VPGM_BASE
        ) + self.dist_time * log2(pulse.latency_us / 100.0)
        return 1.0 + self.dist_amp / (1.0 + exp(-(d - self.dist_loc) / self.dist_scale))

    def disturbs_data(self, pulse: PulseSettings) -> bool:
        """Region I predicate: does the pulse measurably raise data RBER?"""
        return self.data_rber_factor(pulse) > self.disturb_ceiling

    # ------------------------------------------------------------------
    def sample_programmed_cells(
        self, pulse: PulseSettings, k: int, rng: np.random.Generator
    ) -> int:
        """Number of cells (out of ``k``) actually programmed by the pulse."""
        return int(rng.binomial(k, self.program_success_prob(pulse)))

    def sample_retention_errors(
        self,
        pulse: PulseSettings,
        days: float,
        programmed_cells: int,
        rng: np.random.Generator,
    ) -> int:
        """Number of programmed cells flipped back after ``days``."""
        return int(rng.binomial(programmed_cells, self.retention_flip_prob(pulse, days)))


def _binom(n: int, k: int) -> float:
    from math import comb

    return float(comb(n, k))


def default_plock_pulse() -> PulseSettings:
    """The paper's final pLock choice: combination (ii) = (Vp4, 100 us)."""
    return PulseSettings(
        constants.PLOCK_VPGM_BASE + 3 * constants.PLOCK_VPGM_STEP,
        constants.T_PLOCK_US,
    )
