"""Monte-Carlo qualification of pAP flag designs -- Figure 9(d)'s method.

The paper qualifies each candidate (voltage, latency) combination by
programming a large population of flags and *observing* how many of the
k = 9 redundant cells flip over the retention requirement ("combination
(vi) leads to 5 retention errors in 9 flag cells, while combination (i)
leads to at most 2 errors").  This module reproduces that procedure:
it samples ``n_flags`` flags per candidate, programs them with the
calibrated per-cell success probability, ages them, and reports the
observed error distribution plus the fail-open count (flags whose
majority reads *enabled* again -- a security failure).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.flag_cells import FlagCellModel, PulseSettings
from repro.flash import constants


@dataclass(frozen=True)
class FlagQualification:
    """Observed behaviour of one candidate pulse at one horizon."""

    pulse: PulseSettings
    days: float
    k: int
    n_flags: int
    #: cells reading erased (unprogrammed + retention-flipped), per flag.
    mean_errors: float
    max_errors: int
    #: flags whose majority circuit reads *enabled* (fail-open).
    fail_open: int

    @property
    def fail_open_rate(self) -> float:
        return self.fail_open / self.n_flags

    @property
    def qualifies(self) -> bool:
        """Zero observed fail-opens over the tested population."""
        return self.fail_open == 0


def qualify_pulse(
    pulse: PulseSettings,
    days: float,
    n_flags: int = 10_000,
    k: int = constants.PAP_REDUNDANCY_K,
    model: FlagCellModel | None = None,
    seed: int = 0,
) -> FlagQualification:
    """Sample ``n_flags`` flags programmed with ``pulse``, aged ``days``."""
    if n_flags <= 0:
        raise ValueError("n_flags must be positive")
    model = model or FlagCellModel()
    rng = np.random.default_rng(seed)
    success = model.program_success_prob(pulse)
    flip = model.retention_flip_prob(pulse, days)

    programmed = rng.binomial(k, success, size=n_flags)
    flipped = rng.binomial(programmed, flip)
    reading_programmed = programmed - flipped
    errors = k - reading_programmed  # cells reading erased
    need = k // 2 + 1
    fail_open = int(np.count_nonzero(reading_programmed < need))
    return FlagQualification(
        pulse=pulse,
        days=days,
        k=k,
        n_flags=n_flags,
        mean_errors=float(np.mean(errors)),
        max_errors=int(np.max(errors)),
        fail_open=fail_open,
    )


def qualify_candidates(
    candidates: dict[str, PulseSettings],
    days: float = constants.RETENTION_5Y_DAYS,
    n_flags: int = 10_000,
    k: int = constants.PAP_REDUNDANCY_K,
    model: FlagCellModel | None = None,
    seed: int = 0,
) -> dict[str, FlagQualification]:
    """Qualify a labelled candidate set (e.g. the Fig. 9 six) at once."""
    return {
        label: qualify_pulse(
            pulse, days, n_flags=n_flags, k=k, model=model, seed=seed
        )
        for label, pulse in candidates.items()
    }
