"""Per-block pAP flag arrays with k-modular redundancy -- Section 5.3.

Each page of a block owns one pAP flag implemented as ``k`` spare-area
flash cells (k = 9 in the paper's final design) read through a majority
circuit: the flag reads *disabled* when a majority of its cells are
programmed.  There is no unlock command -- only a block erase resets the
cells to the enabled state.

Physical fidelity: when a flag is locked we sample, from the calibrated
:class:`~repro.core.flag_cells.FlagCellModel`,

* how many of the ``k`` cells the one-shot pulse actually programmed, and
* a per-cell *retention flip day* (the day the cell's charge decays below
  the flag read level), drawn by inverse-CDF so that repeated queries are
  deterministic.

``is_disabled(day)`` then evaluates the majority circuit at any later
time, which is how the Figure 9(d) qualification is checked end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.flag_cells import FlagCellModel, PulseSettings, default_plock_pulse
from repro.flash import constants
from repro.flash.errors import AddressError


@dataclass
class PapFlag:
    """State of one page's pAP flag (k redundant cells)."""

    k: int
    #: number of cells the lock pulse successfully programmed.
    programmed_cells: int = 0
    #: per-cell uniform draws; cell i flips once retention_flip_prob >= u_i.
    flip_thresholds: np.ndarray | None = None
    lock_day: float | None = None

    @property
    def locked(self) -> bool:
        return self.lock_day is not None

    def cells_reading_programmed(
        self, model: FlagCellModel, pulse: PulseSettings, day: float
    ) -> int:
        """Cells still reading as programmed ``day`` days into the mission."""
        if not self.locked:
            return 0
        elapsed = max(0.0, day - float(self.lock_day))
        q = model.retention_flip_prob(pulse, elapsed)
        flipped = int(np.count_nonzero(self.flip_thresholds <= q))
        return self.programmed_cells - flipped

    def majority_disabled(
        self, model: FlagCellModel, pulse: PulseSettings, day: float
    ) -> bool:
        """Output of the k-bit majority circuit: True == access disabled."""
        need = self.k // 2 + 1
        return self.cells_reading_programmed(model, pulse, day) >= need


@dataclass
class PageApArray:
    """pAP flags for every page of one block."""

    pages_per_block: int
    model: FlagCellModel = field(default_factory=FlagCellModel)
    pulse: PulseSettings = field(default_factory=default_plock_pulse)
    k: int = constants.PAP_REDUNDANCY_K
    seed: int = 0
    _flags: dict[int, PapFlag] = field(init=False, default_factory=dict)
    _rng: np.random.Generator = field(init=False)

    def __post_init__(self) -> None:
        if self.pages_per_block <= 0:
            raise ValueError("pages_per_block must be positive")
        if self.k < 1 or self.k % 2 == 0:
            raise ValueError("k must be a positive odd number (majority vote)")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def _check(self, page_offset: int) -> None:
        if not 0 <= page_offset < self.pages_per_block:
            raise AddressError(
                f"page offset {page_offset} out of range [0, {self.pages_per_block})"
            )

    def lock(self, page_offset: int, day: float = 0.0) -> PapFlag:
        """Execute the flag-programming half of a pLock command.

        Locking an already-locked page re-applies the pulse; cells that
        were missed the first time get another chance (idempotent from the
        security standpoint, monotonic in programmed cells).
        """
        self._check(page_offset)
        flag = self._flags.get(page_offset)
        success = self.model.program_success_prob(self.pulse)
        if flag is None:
            programmed = int(self._rng.binomial(self.k, success))
            flag = PapFlag(
                k=self.k,
                programmed_cells=programmed,
                flip_thresholds=self._rng.random(programmed),
                lock_day=day,
            )
            self._flags[page_offset] = flag
            return flag
        missed = flag.k - flag.programmed_cells
        newly = int(self._rng.binomial(missed, success))
        if newly:
            flag.programmed_cells += newly
            flag.flip_thresholds = np.concatenate(
                [flag.flip_thresholds, self._rng.random(newly)]
            )
        return flag

    def is_locked(self, page_offset: int) -> bool:
        """Whether a pLock was ever issued for the page (intent view)."""
        self._check(page_offset)
        return page_offset in self._flags

    def is_disabled(self, page_offset: int, day: float = 0.0) -> bool:
        """What the majority circuit reports at mission time ``day``."""
        self._check(page_offset)
        flag = self._flags.get(page_offset)
        if flag is None:
            return False
        return flag.majority_disabled(self.model, self.pulse, day)

    def locked_offsets(self) -> list[int]:
        return sorted(self._flags)

    def erase(self) -> None:
        """Block erase: every flag cell returns to the enabled state."""
        self._flags.clear()

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """Checkpoint payload (see :mod:`repro.checkpoint`).

        The RNG stream is captured as the bit generator's state dict so a
        restored array draws the exact same binomial/uniform sequence a
        never-interrupted run would.
        """
        return {
            "flags": {
                offset: {
                    "k": flag.k,
                    "programmed_cells": flag.programmed_cells,
                    "flip_thresholds": flag.flip_thresholds,
                    "lock_day": flag.lock_day,
                }
                for offset, flag in self._flags.items()
            },
            "rng_state": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self._flags = {
            offset: PapFlag(
                k=payload["k"],
                programmed_cells=payload["programmed_cells"],
                flip_thresholds=payload["flip_thresholds"],
                lock_day=payload["lock_day"],
            )
            for offset, payload in state["flags"].items()
        }
        self._rng.bit_generator.state = state["rng_state"]
