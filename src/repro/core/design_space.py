"""Design-space exploration for pLock and bLock -- Figures 9 and 12.

The paper's methodology, reproduced end to end:

1. start from an initial (program voltage x program latency) grid;
2. prune **Region I** -- combinations that measurably disturb the data
   cells on the wordline (pLock, Fig. 9b) or, for bLock, combinations
   that cannot program the SSL past the 3 V cutoff (Fig. 12a);
3. prune **Region II** (pLock only) -- combinations too weak to program
   the flag cells reliably (Fig. 9c);
4. label the surviving six combinations (i)..(vi) in order of decreasing
   programming strength -- this ordering reproduces all three labelled
   anchors the paper gives: pLock (i)=(Vp4,150us), (ii)=(Vp4,100us),
   (vi)=(Vp2,200us); bLock (i)=(Vb6,400us), (ii)=(Vb6,300us),
   (vi)=(Vb5,200us);
5. qualify candidates against the retention requirement (Fig. 9d /
   Fig. 12b) and select the qualifying combination with the **shortest
   latency** -- the paper's stated criterion -- which yields combination
   (ii) in both cases: tpLock = 100 us and tbLock = 300 us.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.flag_cells import FlagCellModel, PulseSettings, plock_design_space
from repro.core.ssl_lock import SslLockModel, block_design_space
from repro.flash import constants

ROMAN_LABELS = ("i", "ii", "iii", "iv", "v", "vi")

#: days grid used for the retention panels (Fig. 9d / 12b x-axis:
#: 10 .. 10^4 days, with the 1-year and 5-year requirements marked).
RETENTION_DAYS_GRID: tuple[float, ...] = (
    10.0,
    30.0,
    100.0,
    300.0,
    constants.RETENTION_1Y_DAYS,
    1000.0,
    constants.RETENTION_5Y_DAYS,
    3000.0,
    10000.0,
)


# ---------------------------------------------------------------------------
# pLock (Figure 9)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PlockDesignPoint:
    """One grid cell of the Figure 9(a) design space."""

    pulse: PulseSettings
    data_rber_factor: float
    program_success: float
    region: str  # "region-i" | "region-ii" | "candidate"
    label: str | None = None  # roman numeral for candidates


@dataclass
class PlockDesignResult:
    """Full Figure 9 exploration output."""

    model: FlagCellModel
    points: list[PlockDesignPoint]
    candidates: dict[str, PulseSettings]
    selected_label: str
    #: label -> expected retention errors (k cells) per RETENTION_DAYS_GRID.
    retention_errors: dict[str, np.ndarray] = field(default_factory=dict)
    #: label -> flag fail-open probability per RETENTION_DAYS_GRID.
    failure_probs: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def selected_pulse(self) -> PulseSettings:
        return self.candidates[self.selected_label]

    def point_for(self, pulse: PulseSettings) -> PlockDesignPoint:
        for p in self.points:
            if p.pulse == pulse:
                return p
        raise KeyError(pulse)


def explore_plock_design(
    model: FlagCellModel | None = None,
    k: int = constants.PAP_REDUNDANCY_K,
    qualify_days: float = constants.RETENTION_5Y_DAYS,
    max_failure_prob: float = 0.01,
) -> PlockDesignResult:
    """Run the full Figure 9 exploration and selection."""
    model = model or FlagCellModel()
    points: list[PlockDesignPoint] = []
    survivors: list[PulseSettings] = []
    for pulse in plock_design_space():
        factor = model.data_rber_factor(pulse)
        success = model.program_success_prob(pulse)
        if model.disturbs_data(pulse):
            region = "region-i"
        elif not model.programs_reliably(pulse):
            region = "region-ii"
        else:
            region = "candidate"
            survivors.append(pulse)
        points.append(PlockDesignPoint(pulse, factor, success, region))

    if len(survivors) != len(ROMAN_LABELS):
        raise RuntimeError(
            f"expected {len(ROMAN_LABELS)} candidates, model yields {len(survivors)}"
        )
    # label by decreasing program energy (strongest pulse first)
    survivors.sort(key=model.program_energy, reverse=True)
    candidates = dict(zip(ROMAN_LABELS, survivors))
    labelled_points = []
    label_of = {pulse: label for label, pulse in candidates.items()}
    for p in points:
        labelled_points.append(
            PlockDesignPoint(
                p.pulse, p.data_rber_factor, p.program_success, p.region,
                label_of.get(p.pulse),
            )
        )

    days = np.asarray(RETENTION_DAYS_GRID)
    retention_errors = {
        label: np.asarray(
            [model.expected_retention_errors(pulse, d, k=k) for d in days]
        )
        for label, pulse in candidates.items()
    }
    failure_probs = {
        label: np.asarray(
            [model.flag_failure_prob(pulse, d, k=k) for d in days]
        )
        for label, pulse in candidates.items()
    }

    qualifying = [
        label
        for label, pulse in candidates.items()
        if model.flag_failure_prob(pulse, qualify_days, k=k) <= max_failure_prob
    ]
    if not qualifying:
        raise RuntimeError("no candidate meets the retention requirement")
    selected = min(
        qualifying,
        key=lambda lbl: (
            candidates[lbl].latency_us,
            candidates[lbl].vpgm,
        ),
    )
    return PlockDesignResult(
        model=model,
        points=labelled_points,
        candidates=candidates,
        selected_label=selected,
        retention_errors=retention_errors,
        failure_probs=failure_probs,
    )


# ---------------------------------------------------------------------------
# bLock (Figure 12)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BlockDesignPoint:
    """One grid cell of the Figure 12(a) design space."""

    pulse: PulseSettings
    initial_vth: float
    region: str  # "region-i" | "candidate"
    label: str | None = None


@dataclass
class BlockDesignResult:
    """Full Figure 12 exploration output."""

    model: SslLockModel
    points: list[BlockDesignPoint]
    candidates: dict[str, PulseSettings]
    selected_label: str
    #: label -> center SSL Vth per RETENTION_DAYS_GRID day.
    vth_curves: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def selected_pulse(self) -> PulseSettings:
        return self.candidates[self.selected_label]


def explore_block_design(
    model: SslLockModel | None = None,
    qualify_days: float = constants.RETENTION_5Y_DAYS,
) -> BlockDesignResult:
    """Run the full Figure 12 exploration and selection."""
    model = model or SslLockModel()
    points: list[BlockDesignPoint] = []
    survivors: list[PulseSettings] = []
    for pulse in block_design_space():
        v0 = model.initial_vth(pulse)
        if model.reaches_cutoff(pulse):
            region = "candidate"
            survivors.append(pulse)
        else:
            region = "region-i"
        points.append(BlockDesignPoint(pulse, v0, region))

    if len(survivors) != len(ROMAN_LABELS):
        raise RuntimeError(
            f"expected {len(ROMAN_LABELS)} candidates, model yields {len(survivors)}"
        )
    survivors.sort(key=model.initial_vth, reverse=True)
    candidates = dict(zip(ROMAN_LABELS, survivors))
    label_of = {pulse: label for label, pulse in candidates.items()}
    points = [
        BlockDesignPoint(p.pulse, p.initial_vth, p.region, label_of.get(p.pulse))
        for p in points
    ]

    days = np.asarray(RETENTION_DAYS_GRID)
    vth_curves = {
        label: np.asarray([model.vth_after(pulse, d) for d in days])
        for label, pulse in candidates.items()
    }

    qualifying = [
        label
        for label, pulse in candidates.items()
        if model.is_blocking(pulse, qualify_days)
    ]
    if not qualifying:
        raise RuntimeError("no candidate blocks for the full retention requirement")
    selected = min(
        qualifying,
        key=lambda lbl: (
            candidates[lbl].latency_us,
            candidates[lbl].vpgm,
        ),
    )
    return BlockDesignResult(
        model=model,
        points=points,
        candidates=candidates,
        selected_label=selected,
        vth_curves=vth_curves,
    )
