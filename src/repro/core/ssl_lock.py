"""bLock: block-level sanitization via SSL-cell programming -- Section 5.4.

3D NAND uses normal flash cells as the source-select-line (SSL)
transistors of each block.  bLock one-shot-programs the SSL above the
read pass voltage margin: once the SSL's center Vth exceeds ~3 V no
bitline current can flow for *any* page of the block, so every read
returns zeros.  Only a full block erase (which also erases the SSL cells)
restores access.

The calibrated model covers the paper's two bLock figures:

* Figure 11(b): normalized RBER of a read versus the SSL's center Vth,
  crossing the ECC limit at ~3 V;
* Figure 12(b): center SSL Vth versus retention time for the candidate
  (voltage, latency) combinations -- weakly-programmed SSLs decay below
  the cutoff before the 1- or 5-year requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp, log, log1p

from repro.core.flag_cells import PulseSettings
from repro.flash import constants


def block_design_space() -> list[PulseSettings]:
    """The paper's initial bLock space: 6 voltages x 3 latencies (Fig 12a)."""
    voltages = [
        constants.BLOCK_VPGM_BASE + i * constants.BLOCK_VPGM_STEP
        for i in range(constants.BLOCK_VPGM_COUNT)
    ]
    return [
        PulseSettings(v, t)
        for t in constants.BLOCK_LATENCIES_US
        for v in voltages
    ]


@dataclass(frozen=True)
class SslLockModel:
    """Calibrated SSL programming and retention behaviour.

    ``initial_vth`` is linear in program voltage and logarithmic in pulse
    duration; the retention decay rate shrinks exponentially with how
    deeply the SSL was programmed (shallow charge detraps faster), which
    is what separates the viable Figure 12 combinations from the ones
    that drop below the 3 V cutoff within the retention requirement.
    """

    volt_coef: float = 0.85
    volt_base: float = 12.8
    time_coef: float = 0.6
    time_ref_us: float = 200.0
    #: decay rate (V per log1p(day)) = floor + amp * exp(-slope*(v0-cutoff)).
    #: The steep slope encodes that shallowly-programmed SSL charge sits in
    #: fast-detrapping states: combination (iii) = (Vb6, 200 us) programs to
    #: 4.42 V yet still decays below the 3 V cutoff before 5 years -- which
    #: is why the paper settles on the 300 us pulse despite the latency.
    decay_floor: float = 0.04
    decay_amp: float = 60.0
    decay_slope: float = 4.0
    #: SSL cells cannot decay below their neutral (erased) Vth.
    vth_floor: float = 0.5
    #: minimum as-programmed Vth for a combination to count as reaching
    #: the cutoff with engineering margin (Region I predicate).
    program_margin: float = 0.45

    # ------------------------------------------------------------------
    def initial_vth(self, pulse: PulseSettings) -> float:
        """Center SSL Vth right after the one-shot bLock pulse."""
        return self.volt_coef * (pulse.vpgm - self.volt_base) + self.time_coef * log(
            pulse.latency_us / self.time_ref_us
        )

    def decay_rate(self, initial_vth: float) -> float:
        """V per log1p(day) lost to retention, given programming depth."""
        return self.decay_floor + self.decay_amp * exp(
            -self.decay_slope * (initial_vth - constants.SSL_CUTOFF_VTH)
        )

    def vth_after(self, pulse: PulseSettings, days: float) -> float:
        """Center SSL Vth ``days`` after the bLock pulse."""
        v0 = self.initial_vth(pulse)
        if days <= 0.0:
            return v0
        return max(self.vth_floor, v0 - self.decay_rate(v0) * log1p(days))

    # ------------------------------------------------------------------
    def reaches_cutoff(self, pulse: PulseSettings) -> bool:
        """Region I predicate: pulse programs the SSL past cutoff + margin."""
        return self.initial_vth(pulse) >= constants.SSL_CUTOFF_VTH + self.program_margin

    def is_blocking(self, pulse: PulseSettings, days: float = 0.0) -> bool:
        """Whether the block still blocks reads ``days`` after bLock."""
        return self.vth_after(pulse, days) > constants.SSL_CUTOFF_VTH

    def blocking_horizon_days(
        self, pulse: PulseSettings, max_days: float = 20.0 * 365.0
    ) -> float:
        """Days until the SSL decays to the cutoff (capped at ``max_days``)."""
        v0 = self.initial_vth(pulse)
        margin = v0 - constants.SSL_CUTOFF_VTH
        if margin <= 0.0:
            return 0.0
        rate = self.decay_rate(v0)
        # v0 - rate * log1p(d) == cutoff  =>  d = expm1(margin / rate)
        horizon = exp(margin / rate) - 1.0
        return min(horizon, max_days)


def read_rber_vs_ssl_vth(center_vth: float, pe_cycles: int = 0) -> float:
    """Normalized RBER of a page read as a function of SSL center Vth.

    Reproduces Figure 11(b): as the SSL Vth approaches the pass-voltage
    margin, bitline current degrades and errors grow; the curve crosses
    the ECC limit (normalized 1.0) at ~3 V and saturates near 4.5x.
    """
    base = 0.55 + 0.20 * (pe_cycles / 1000.0)
    return base + 4.0 / (1.0 + exp(-(center_vth - 3.68) / 0.25))


def default_block_pulse() -> PulseSettings:
    """The paper's final bLock choice: combination (ii) = (Vb6, 300 us)."""
    return PulseSettings(
        constants.BLOCK_VPGM_BASE
        + (constants.BLOCK_VPGM_COUNT - 1) * constants.BLOCK_VPGM_STEP,
        constants.T_BLOCK_LOCK_US,
    )


@dataclass
class BlockApFlag:
    """Runtime bAP state of one block (used by the Evanesco chip)."""

    model: SslLockModel
    pulse: PulseSettings
    lock_day: float | None = None

    @property
    def locked(self) -> bool:
        return self.lock_day is not None

    def lock(self, day: float = 0.0) -> None:
        if self.lock_day is None:
            self.lock_day = day

    def erase(self) -> None:
        self.lock_day = None

    def is_disabled(self, day: float = 0.0) -> bool:
        if self.lock_day is None:
            return False
        elapsed = max(0.0, day - self.lock_day)
        return self.model.is_blocking(self.pulse, elapsed)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, float | None]:
        """Checkpoint payload -- only ``lock_day`` is mutable."""
        return {"lock_day": self.lock_day}

    def load_state_dict(self, state: dict[str, float | None]) -> None:
        self.lock_day = state["lock_day"]
