"""Evanesco: lock-based data sanitization (the paper's contribution).

* :class:`~repro.core.evanesco_chip.EvanescoChip` -- flash chip extended
  with the ``pLock``/``bLock`` commands and AP-gated reads;
* :class:`~repro.core.ap_flags.PageApArray` -- k-redundant pAP flag cells
  with the majority circuit;
* :class:`~repro.core.ssl_lock.SslLockModel` -- bLock's SSL-cell physics;
* :mod:`~repro.core.design_space` -- the Figure 9 / Figure 12 design-space
  exploration that selects (Vp4, 100 us) and (Vb6, 300 us).
"""

from repro.core.ap_flags import PageApArray, PapFlag
from repro.core.design_space import (
    BlockDesignResult,
    PlockDesignResult,
    explore_block_design,
    explore_plock_design,
)
from repro.core.evanesco_chip import EvanescoChip
from repro.core.flag_cells import (
    FlagCellModel,
    PulseSettings,
    default_plock_pulse,
    plock_design_space,
)
from repro.core.qualification import (
    FlagQualification,
    qualify_candidates,
    qualify_pulse,
)
from repro.core.ssl_lock import (
    BlockApFlag,
    SslLockModel,
    block_design_space,
    default_block_pulse,
    read_rber_vs_ssl_vth,
)

__all__ = [
    "BlockApFlag",
    "BlockDesignResult",
    "EvanescoChip",
    "FlagCellModel",
    "FlagQualification",
    "PageApArray",
    "PapFlag",
    "PlockDesignResult",
    "PulseSettings",
    "SslLockModel",
    "block_design_space",
    "default_block_pulse",
    "default_plock_pulse",
    "explore_block_design",
    "explore_plock_design",
    "plock_design_space",
    "qualify_candidates",
    "qualify_pulse",
    "read_rber_vs_ssl_vth",
]
