"""Reproduction of *Evanesco: Architectural Support for Efficient Data
Sanitization in Modern Flash-Based Storage Systems* (ASPLOS 2020).

The library is organized bottom-up:

* :mod:`repro.flash` -- NAND substrate: geometry, Vth/RBER physics, ECC,
  behavioural chips, and the reprogram-based sanitization baselines;
* :mod:`repro.core` -- Evanesco itself: pLock/bLock, pAP/bAP flag
  physics, the Evanesco chip, and the Figure 9/12 design exploration;
* :mod:`repro.ftl` -- the baseline FTL and the four evaluated variants
  (secSSD, secSSD_nobLock, erSSD, scrSSD);
* :mod:`repro.ssd` -- device model: topology, timing, requests, stats;
* :mod:`repro.host` -- file system, trace replay, VerTrace profiler;
* :mod:`repro.workloads` -- the four Table 2 benchmark generators;
* :mod:`repro.security` -- the Section 5.1 attacker and C1/C2 auditing;
* :mod:`repro.analysis` -- experiment runners for every table/figure.

Quickstart::

    from repro import SSD, scaled_config, write, trim
    from repro.security import RawChipAttacker

    ssd = SSD(scaled_config(), variant="secSSD")
    ssd.submit(write(lpa=0, secure=True))
    ssd.submit(trim(lpa=0))                      # secure delete
    assert not RawChipAttacker(ssd).stale_versions_of(0)
"""

from repro.core import EvanescoChip
from repro.ssd import (
    SSD,
    SSDConfig,
    make_ssd,
    paper_config,
    read,
    scaled_config,
    trim,
    write,
)

__version__ = "1.0.0"

__all__ = [
    "EvanescoChip",
    "SSD",
    "SSDConfig",
    "__version__",
    "make_ssd",
    "paper_config",
    "read",
    "scaled_config",
    "trim",
    "write",
]
