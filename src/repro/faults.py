"""Seeded, deterministic fault injection for the flash substrate.

The simulator's chips are perfect by default; this module makes them
fallible in the ways the paper's reliability machinery exists for:

* **transient uncorrectable reads** -- the read senses more raw bit
  errors than the ECC corrects (retrying re-senses and may succeed);
* **program failures** -- the pulse train status-fails, tearing the
  target page (Section 2's standard remap-and-retire response);
* **erase failures** -- the erase status-fails with data intact (the
  classic grown-bad-block trigger);
* **pLock / bLock failures** -- the lock pulse costs time but no flag
  cell reaches the programmed state, i.e. the k=9 pAP majority circuit
  (Section 4.1) or the SSL threshold (Section 4.2) still reads
  *enabled*; callers must verify and retry or escalate;
* **power loss** -- the run is cut at an arbitrary operation boundary
  (mid-program tears the page), after which only chip-resident state
  survives and :class:`~repro.ftl.recovery.PowerLossRecovery` applies.

One :class:`FaultInjector` is shared by every chip of a device and is
installed as each chip's ``fault_hook``; the chip consults it once per
command via ``on_op``.  Decisions come from a single seeded RNG plus an
explicit ``(op_index, kind)`` schedule, so every failure is replayable:
the same :class:`FaultPlan` against the same request stream injects the
same faults at the same operations, byte for byte.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum

from repro.flash.chip import FAULT_FAIL, FAULT_POWER_LOSS
from repro.telemetry.events import TraceBus


class FaultKind(Enum):
    """Injectable fault classes (values are the scorecard spellings)."""

    READ_UNCORRECTABLE = "read"
    PROGRAM_FAIL = "program"
    ERASE_FAIL = "erase"
    PLOCK_FAIL = "plock"
    BLOCK_LOCK_FAIL = "block_lock"
    POWER_LOSS = "power_loss"


#: chip-op name -> the fault kind that can fail it (power loss applies
#: to every op; scrub pulses have no modelled failure mode).
OP_FAULTS: dict[str, FaultKind | None] = {
    "read": FaultKind.READ_UNCORRECTABLE,
    "program": FaultKind.PROGRAM_FAIL,
    "erase": FaultKind.ERASE_FAIL,
    "plock": FaultKind.PLOCK_FAIL,
    "block_lock": FaultKind.BLOCK_LOCK_FAIL,
    "scrub": None,
}


@dataclass(frozen=True)
class FaultPlan:
    """Immutable description of what to inject, fully replayable.

    ``rates`` gives a per-operation failure probability per kind;
    ``schedule`` forces a specific kind at a specific global op index
    (the index counts every chip command of the device, in issue order).
    A scheduled kind only fires if the op at that index matches it --
    except :attr:`FaultKind.POWER_LOSS`, which cuts any operation.

    ``active_from`` / ``active_until`` bound the op-index window in which
    the *rates* apply (scheduled entries carry their own index and are
    unaffected).  The window is how the :mod:`repro.sim` engine injects
    faults mid-simulation: a device runs clean through warm-up, then a
    status-fail storm starts at a chosen operation and visibly lengthens
    the critical path of the requests in flight.  Ops outside the window
    consume no RNG draws, so the same plan stays byte-replayable.
    """

    seed: int = 0
    rates: tuple[tuple[FaultKind, float], ...] = ()
    schedule: tuple[tuple[int, FaultKind], ...] = ()
    active_from: int = 0
    active_until: int | None = None

    def __post_init__(self) -> None:
        for kind, rate in self.rates:
            if not isinstance(kind, FaultKind):
                raise TypeError(f"rate key {kind!r} is not a FaultKind")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind.value} not in [0, 1]: {rate}")
        for index, kind in self.schedule:
            if index < 0 or not isinstance(kind, FaultKind):
                raise ValueError(f"bad schedule entry ({index}, {kind!r})")
        if self.active_from < 0:
            raise ValueError("active_from must be non-negative")
        if self.active_until is not None and self.active_until < self.active_from:
            raise ValueError("active_until must be >= active_from")

    # ------------------------------------------------------------------
    @classmethod
    def from_rates(
        cls, rates: Mapping[FaultKind, float], seed: int = 0
    ) -> "FaultPlan":
        ordered = tuple(sorted(rates.items(), key=lambda kv: kv[0].value))
        return cls(seed=seed, rates=ordered)

    @classmethod
    def single(cls, kind: FaultKind, rate: float, seed: int = 0) -> "FaultPlan":
        """One fault kind at one per-op probability."""
        return cls(seed=seed, rates=((kind, rate),))

    @classmethod
    def power_loss_at(cls, op_index: int, seed: int = 0) -> "FaultPlan":
        """Cut power at exactly one operation boundary."""
        return cls(seed=seed, schedule=((op_index, FaultKind.POWER_LOSS),))

    # ------------------------------------------------------------------
    def rate_of(self, kind: FaultKind) -> float:
        for k, rate in self.rates:
            if k is kind:
                return rate
        return 0.0

    def in_window(self, op_index: int) -> bool:
        """Whether the probabilistic rates apply at this op index."""
        if op_index < self.active_from:
            return False
        return self.active_until is None or op_index < self.active_until

    def describe(self) -> dict[str, object]:
        """JSON-friendly summary for scorecards."""
        out: dict[str, object] = {
            "seed": self.seed,
            "rates": {k.value: r for k, r in self.rates},
            "schedule": [[i, k.value] for i, k in self.schedule],
        }
        # the activity window is reported only when it actually gates
        # anything (always-on plans keep the legacy shape)
        if self.active_from != 0 or self.active_until is not None:
            out["active_from"] = self.active_from
            out["active_until"] = self.active_until
        return out

    # ------------------------------------------------------------------
    def to_state(self) -> dict[str, object]:
        """Lossless checkpoint form (unlike :meth:`describe`, which
        flattens kinds to their string values)."""
        return {
            "seed": self.seed,
            "rates": self.rates,
            "schedule": self.schedule,
            "active_from": self.active_from,
            "active_until": self.active_until,
        }

    @classmethod
    def from_state(cls, state: dict[str, object]) -> "FaultPlan":
        return cls(
            seed=state["seed"],
            rates=state["rates"],
            schedule=state["schedule"],
            active_from=state["active_from"],
            active_until=state["active_until"],
        )


@dataclass
class FaultInjector:
    """Stateful per-device injector; installed as every chip's hook.

    Chip commands call :meth:`on_op`, which advances the global op index
    and returns a directive: ``""`` (proceed), ``"fail"`` (status-fail
    the op), or ``"power-loss"`` (raise through the chip).  Decisions
    use a fixed draw order -- one power-loss draw, then one op-kind draw,
    each only when the corresponding rate is configured -- so checked and
    unchecked runs of the same plan see identical faults.

    After a power loss fires the injector is *tripped* and inert: the
    device is "off", and the recovery that follows runs fault-free.
    """

    plan: FaultPlan
    op_index: int = 0
    tripped: bool = False
    injected: dict[FaultKind, int] = field(default_factory=dict)
    #: telemetry trace bus; when set (the SSD facade wires it up for
    #: traced runs) every injected fault emits an instant event.
    bus: TraceBus | None = field(default=None, repr=False)
    _rng: random.Random = field(init=False, repr=False)
    _schedule: dict[int, FaultKind] = field(init=False, repr=False)
    _suspend_depth: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.plan.seed)
        self._schedule = dict(self.plan.schedule)

    # ------------------------------------------------------------------
    def on_op(self, op: str) -> str:
        """Fault decision for one chip command (the chip's hook entry)."""
        if self._suspend_depth or self.tripped:
            return ""
        index = self.op_index
        self.op_index += 1
        kind = OP_FAULTS.get(op)
        in_window = self.plan.in_window(index)
        power_rate = self.plan.rate_of(FaultKind.POWER_LOSS) if in_window else 0.0
        power = power_rate > 0.0 and self._rng.random() < power_rate
        rate = (
            self.plan.rate_of(kind) if kind is not None and in_window else 0.0
        )
        fail = rate > 0.0 and self._rng.random() < rate
        scheduled = self._schedule.get(index)
        if power or scheduled is FaultKind.POWER_LOSS:
            self.tripped = True
            self._count(FaultKind.POWER_LOSS)
            self._emit(FaultKind.POWER_LOSS, op, index)
            return FAULT_POWER_LOSS
        if kind is not None and (fail or scheduled is kind):
            self._count(kind)
            self._emit(kind, op, index)
            return FAULT_FAIL
        return ""

    def _emit(self, kind: FaultKind, op: str, index: int) -> None:
        if self.bus is not None:
            self.bus.instant(
                "fault", kind.value, args={"op": op, "op_index": index}
            )

    def _count(self, kind: FaultKind) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """Checkpoint payload: plan fingerprint + cursor + RNG stream."""
        return {
            "plan": self.plan.to_state(),
            "op_index": self.op_index,
            "tripped": self.tripped,
            "injected": dict(self.injected),
            "rng_state": self._rng.getstate(),
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        if FaultPlan.from_state(state["plan"]) != self.plan:
            raise ValueError(
                "fault-plan checkpoint does not match the configured plan"
            )
        self.op_index = state["op_index"]
        self.tripped = state["tripped"]
        self.injected = dict(state["injected"])
        self._rng.setstate(state["rng_state"])

    # ------------------------------------------------------------------
    @contextmanager
    def suspended(self) -> Iterator[None]:
        """No counting, no injection, no op-index advance.

        Used by the runtime sanitizer's unreadability probes and by
        last-resort salvage reads: neither is a normal device command,
        so neither may consume a fault decision (which would make
        checked and unchecked runs diverge).
        """
        self._suspend_depth += 1
        try:
            yield
        finally:
            self._suspend_depth -= 1
