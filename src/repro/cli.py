"""Command-line interface: regenerate any reproduced table or figure.

Usage::

    python -m repro table1                 # Section 3 versioning study
    python -m repro fig6                   # OSR reliability (MLC + TLC)
    python -m repro fig9                   # pLock design space
    python -m repro fig10                  # open-interval effect
    python -m repro fig12                  # bLock design space
    python -m repro fig14                  # system IOPS/WAF comparison
    python -m repro fig14c                 # secured-fraction sweep
    python -m repro overheads              # Section 5.5 accounting

Common options: ``--blocks``, ``--wordlines`` (device scale), ``--seed``,
``--multiplier`` (steady-state writes as a multiple of capacity).

Three commands drive the closed-loop discrete-event engine (repro.sim)::

    python -m repro simulate               # tail-latency study under queueing
    python -m repro bench                  # engine benchmark -> BENCH_sim.json
    python -m repro trace                  # traced run -> Perfetto/Chrome trace

``simulate`` and ``torture`` also take ``--trace-out PATH`` to record
the run's structured event trace as a Chrome-trace-event file, and
``--cert-out PATH`` to issue a signed sanitization certificate
(``repro audit`` verifies archived traces and certificates offline;
``fleet --audit`` certifies every device in a campaign).  ``bench``,
``torture``, and ``fleet`` take ``--progress`` to stream live
shard-completion/backlog/ETA lines to stderr without touching any
artifact.

``simulate --checkpoint-every N --checkpoint-dir DIR`` writes a
crash-consistent device checkpoint every N requests; an interrupted
run continues with ``--resume`` and finishes byte-identical to an
uninterrupted one (corrupt checkpoints are quarantined and the run
falls back to the previous good generation).  ``bench --resume DIR``
and ``torture --resume DIR`` cache completed grid shards so a killed
sweep resumes instead of recomputing.

Four maintenance commands ship with the simulator itself::

    python -m repro lint                   # static domain lint (SIM01-SIM16)
    python -m repro check                  # runtime invariant sanitizer run
    python -m repro torture                # fault-injection robustness sweep
    python -m repro profile -- bench ...   # cProfile any repro command

``bench`` and ``torture`` take ``--jobs N`` to fan their experiment
grids over worker processes (the merged artifact stays byte-identical
to a serial run); ``bench --compare BASELINE.json`` gates simulated
metrics (IOPS, p99) against a committed baseline.
"""

from __future__ import annotations

import argparse

from repro.analysis import (
    format_figure14,
    format_secure_fraction,
    format_table1,
    render_table,
    run_figure14,
    run_secure_fraction_sweep,
    run_versioning_study,
    summarize_overheads,
)
from repro.core import explore_block_design, explore_plock_design
from repro.flash.geometry import CellType
from repro.flash.osr import OSR_CONDITIONS, osr_study
from repro.flash.reliability import (
    OPEN_INTERVAL_CONDITIONS,
    open_interval_penalty,
    open_interval_study,
)
from repro.ssd import scaled_config


def _config(args: argparse.Namespace):
    # endurance/wear knobs exist only on the commands that expose them;
    # getattr defaults keep every other command on the fresh-forever
    # device its committed artifacts were produced with
    return scaled_config(
        blocks_per_chip=args.blocks,
        wordlines_per_block=args.wordlines,
        pe_limit=getattr(args, "pe_limit", None),
        wear_coupling=getattr(args, "wear_coupling", False),
        wear_leveling_threshold=getattr(args, "wear_leveling", None),
        wear_aware_allocation=getattr(args, "wear_alloc", False),
    )


def cmd_table1(args: argparse.Namespace) -> None:
    config = _config(args)
    summaries = {
        workload: run_versioning_study(
            config, workload, seed=args.seed, write_multiplier=args.multiplier
        ).summary
        for workload in ("Mobile", "MailServer", "DBServer")
    }
    print(format_table1(summaries))


def cmd_fig6(args: argparse.Namespace) -> None:
    for cell_type in (CellType.MLC, CellType.TLC):
        study = osr_study(cell_type, n_wordlines=400, seed=args.seed)
        rows = [
            [
                cond,
                f"{study.box_stats(cond)['median']:.2f}",
                f"{study.fraction_exceeding_limit(cond):.1%}",
            ]
            for cond in OSR_CONDITIONS
        ]
        print(
            render_table(
                ["condition", "median RBER (norm.)", "unreadable"],
                rows,
                title=f"Figure 6: {cell_type.name} MSB pages under OSR",
            )
        )
        print()


def cmd_fig9(args: argparse.Namespace) -> None:
    result = explore_plock_design()
    rows = [
        [
            str(p.pulse),
            f"{p.data_rber_factor:.3f}",
            f"{p.program_success:.3f}",
            p.region,
            p.label or "",
        ]
        for p in result.points
    ]
    print(
        render_table(
            ["pulse", "disturb factor", "program success", "region", "label"],
            rows,
            title="Figure 9: pLock design space",
        )
    )
    print(f"selected: ({result.selected_label}) {result.selected_pulse}")


def cmd_fig10(args: argparse.Namespace) -> None:
    points = open_interval_study()
    for cond in OPEN_INTERVAL_CONDITIONS:
        print(f"{cond}: +{open_interval_penalty(points, cond):.0%} "
              "RBER at the longest open interval")


def cmd_fig12(args: argparse.Namespace) -> None:
    result = explore_block_design()
    rows = [
        [str(p.pulse), f"{p.initial_vth:.2f} V", p.region, p.label or ""]
        for p in result.points
    ]
    print(
        render_table(
            ["pulse", "initial SSL Vth", "region", "label"],
            rows,
            title="Figure 12: bLock design space",
        )
    )
    print(f"selected: ({result.selected_label}) {result.selected_pulse}")


def cmd_fig14(args: argparse.Namespace) -> None:
    results = run_figure14(
        _config(args), seed=args.seed, write_multiplier=args.multiplier
    )
    print(format_figure14(results))


def cmd_fig14c(args: argparse.Namespace) -> None:
    sweep = run_secure_fraction_sweep(
        _config(args), seed=args.seed, write_multiplier=args.multiplier
    )
    print(format_secure_fraction(sweep))


def cmd_overheads(args: argparse.Namespace) -> None:
    rows = [[key, f"{value:.4g}"] for key, value in summarize_overheads().items()]
    print(render_table(["metric", "value"], rows, title="Section 5.5 overheads"))


def cmd_scorecard(args: argparse.Namespace) -> None:
    from repro.analysis.paper_targets import evaluate, format_scorecard
    from repro.analysis.scorecard import collect_measurements

    measurements = collect_measurements(
        _config(args), seed=args.seed, write_multiplier=args.multiplier
    )
    checks = evaluate(measurements)
    print(format_scorecard(checks))
    failed = sum(1 for c in checks if not c.passed)
    print(f"\n{len(checks) - failed}/{len(checks)} targets pass")


def _print_audit(target: str, audited, device_probe: bool) -> None:
    """Human-readable audit verdict (shared by ``repro audit`` modes)."""
    header = audited.header or {}
    ledger = audited.ledger.summary()
    exposure = audited.ledger.exposure_summary()
    report = audited.report
    print(f"audit: {target}")
    print(
        f"  evidence: dropped={header.get('dropped_events', 'n/a')}"
        f" sampled_out={header.get('sampled_out', 'n/a')}"
        f" device_probe={'yes' if device_probe else 'no'}"
    )
    print(
        f"  ledger: {ledger['generations']} generations,"
        f" {ledger['open_at_end']} open at end,"
        f" residual secured {ledger['residual_secured']},"
        f" digest {str(ledger['digest'])[:12]}"
    )
    print(
        f"  exposure: n={exposure['count']}"
        f" p50={exposure['p50_us']:.0f}us"
        f" p99={exposure['p99_us']:.0f}us"
        f" max={exposure['max_us']:.0f}us"
    )
    checks = " ".join(
        f"{name}={n}" for name, n in sorted(report.checks.items())
    )
    print(f"  checks: {checks or 'none'}")
    for finding in report.findings:
        kind = "FATAL" if finding.fatal else "note"
        print(
            f"  [{kind}] {finding.code} ({finding.section}): {finding.detail}"
        )
    print(f"verdict: {'PASS' if report.ok else 'FAIL'}")


def cmd_audit(args: argparse.Namespace) -> int:
    """Sanitization audit: trace file or live run -> signed certificate."""
    import json
    from pathlib import Path

    from repro.audit import audit_trace_file, certificate_text

    if args.trace is not None:
        cert = None
        if args.cert:
            with open(args.cert) as fh:
                cert = json.load(fh)
        try:
            audited = audit_trace_file(
                args.trace,
                certificate=cert,
                pages_per_block=args.pages_per_block,
            )
        except (OSError, ValueError) as exc:
            print(f"audit: {exc}")
            return 2
        target = str(args.trace)
        device_probe = False
    else:
        from repro.analysis.tracing import run_traced_study
        from repro.audit import audit_sim_result
        from repro.audit.run import AUDIT_CAPACITY
        from repro.ftl import FTL_VARIANTS

        if args.variant not in FTL_VARIANTS:
            print(f"unknown variant {args.variant!r}; choose from "
                  f"{sorted(FTL_VARIANTS)}")
            return 2
        runs = run_traced_study(
            _config(args),
            args.workload,
            (args.variant,),
            seed=args.seed,
            write_multiplier=args.multiplier,
            capacity=AUDIT_CAPACITY,
        )
        run = runs[args.variant]
        audited = audit_sim_result(
            run.sim, run.telemetry, _config(args), seed=args.seed
        )
        target = f"{args.workload}/{args.variant} (live run)"
        device_probe = True
    _print_audit(target, audited, device_probe)
    if args.cert_out:
        Path(args.cert_out).write_text(
            certificate_text(audited.certificate)
        )
        print(f"certificate written to {args.cert_out}")
    return 0 if audited.ok else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    """Closed-loop tail-latency study on the discrete-event engine."""
    import json

    from repro.analysis.latency import (
        format_tail_latency,
        policy_for_variant,
        run_tail_latency_study,
    )
    from repro.ftl import FTL_VARIANTS
    from repro.sim.arrivals import BurstyArrivals, ClosedLoopArrivals, PoissonArrivals
    from repro.sim.policies import POLICIES, policy_by_name

    variants = tuple(args.variants or ("baseline", "erSSD", "scrSSD", "secSSD"))
    unknown = [v for v in variants if v not in FTL_VARIANTS]
    if unknown:
        print(f"unknown variant(s) {unknown}; choose from {sorted(FTL_VARIANTS)}")
        return 2
    if args.policy != "auto" and args.policy not in POLICIES:
        print(f"unknown policy {args.policy!r}; choose from "
              f"{['auto', *sorted(POLICIES)]}")
        return 2
    if args.rate is not None:
        arrivals = (
            BurstyArrivals(args.rate, seed=args.seed)
            if args.bursty
            else PoissonArrivals(args.rate, seed=args.seed)
        )
    else:
        arrivals = ClosedLoopArrivals(args.qd)
    checkpointing = bool(args.checkpoint_every or args.resume)
    if checkpointing and not args.checkpoint_dir:
        print("simulate: --checkpoint-dir is required with "
              "--checkpoint-every/--resume")
        return 2
    if checkpointing and not args.checkpoint_every:
        print("simulate: --checkpoint-every is required with --resume "
              "(it is part of the campaign's determinism contract)")
        return 2
    trace_sessions = {}
    results = {}
    for variant in variants:
        from repro.sim.runner import simulate_workload

        policy = (
            policy_for_variant(variant)
            if args.policy == "auto"
            else policy_by_name(args.policy)
        )
        telemetry = None
        if args.trace_out or args.cert_out:
            if args.cert_out:
                # audit-grade session: big ring, no sampling -- a lossy
                # stream would poison the ledger behind the certificate
                from repro.audit.run import audit_telemetry

                telemetry = audit_telemetry()
            else:
                from repro.telemetry import Telemetry

                telemetry = Telemetry()
            trace_sessions[variant] = telemetry
        if checkpointing:
            from pathlib import Path

            from repro.checkpoint import (
                CampaignMismatchError,
                CheckpointError,
                run_chunked_simulation,
            )

            try:
                result = run_chunked_simulation(
                    _config(args),
                    args.workload,
                    variant,
                    Path(args.checkpoint_dir) / variant,
                    args.checkpoint_every,
                    seed=args.seed,
                    write_multiplier=args.multiplier,
                    policy=policy,
                    arrivals=arrivals,
                    checked=True if args.checked else None,
                    check_interval=args.interval,
                    telemetry=telemetry,
                    resume=args.resume,
                    stop_after=args.stop_after,
                )
            except CheckpointError as exc:
                print(exc.render())
                return 1
            except CampaignMismatchError as exc:
                print(f"simulate: {exc}")
                return 2
            if result is None:
                print(
                    f"{variant}: stopped after {args.stop_after} "
                    f"checkpoint(s) in {args.checkpoint_dir}; "
                    "continue with --resume"
                )
                continue
            for report in result.run.extra.get("checkpoint_recovery", []):
                print(
                    f"{variant}: recovered past gen "
                    f"{report['generation']:06d} ({report['reason']}: "
                    f"{report['detail']}) -> {report['quarantined_to']}"
                )
            results[variant] = result
        else:
            results[variant] = simulate_workload(
                _config(args),
                args.workload,
                variant,
                seed=args.seed,
                write_multiplier=args.multiplier,
                policy=policy,
                arrivals=arrivals,
                checked=True if args.checked else None,
                check_interval=args.interval,
                telemetry=telemetry,
            )
    if results:
        print(format_tail_latency(results))
    if args.trace_out:
        from repro.audit.run import config_fingerprint, sanitize_latency_map
        from repro.telemetry.export import trace_header, write_chrome_trace

        config = _config(args)
        headers = {
            v: trace_header(
                tel.bus,
                workload=args.workload,
                variant=v,
                seed=args.seed,
                pages_per_block=config.geometry.pages_per_block,
                config_fingerprint=config_fingerprint(config),
                sanitize_latency_us=sanitize_latency_map(config),
            )
            for v, tel in trace_sessions.items()
        }
        write_chrome_trace(
            args.trace_out,
            {v: tel.bus.events for v, tel in trace_sessions.items()},
            headers=headers,
        )
        print(f"trace written to {args.trace_out}")
    if args.json:
        payload = {v: r.to_dict() for v, r in results.items()}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"full reports written to {args.json}")
    if args.cert_out:
        from pathlib import Path

        from repro.audit import audit_sim_result, certificate_text

        base = Path(args.cert_out)
        failed = 0
        for variant, result in results.items():
            audited = audit_sim_result(
                result, trace_sessions[variant], _config(args), seed=args.seed
            )
            path = (
                base
                if len(results) == 1
                else base.with_name(f"{base.stem}.{variant}{base.suffix}")
            )
            path.write_text(certificate_text(audited.certificate))
            status = "ok" if audited.ok else "AUDIT FAILED"
            print(f"certificate written to {path} ({status})")
            failed += 0 if audited.ok else 1
        if failed:
            return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Benchmark the event engine and emit BENCH_sim.json."""
    import json

    from repro.analysis.bench_engine import (
        compare_bench_detailed,
        format_bench,
        format_compare,
        run_bench,
        write_bench_json,
    )
    from repro.ftl import FTL_VARIANTS

    variants = tuple(args.variants or ("baseline", "secSSD"))
    unknown = [v for v in variants if v not in FTL_VARIANTS]
    if unknown:
        print(f"unknown variant(s) {unknown}; choose from {sorted(FTL_VARIANTS)}")
        return 2
    # load the baseline before anything is written: CI gates and
    # refreshes the same path (--compare BENCH_sim.json --out
    # BENCH_sim.json), which must not compare the run against itself
    baseline = None
    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
    progress = None
    if args.progress:
        from repro.analysis.progress import ProgressReporter

        progress = ProgressReporter("bench")
    payload = run_bench(
        _config(args),
        workload=args.workload,
        variants=variants,
        queue_depth=args.qd,
        policy=args.policy,
        seed=args.seed,
        write_multiplier=args.multiplier,
        repeats=args.repeats,
        jobs=args.jobs,
        resume_dir=args.resume,
        progress=progress,
    )
    print(format_bench(payload))
    if payload.get("cached_shards") or payload.get("retried_shards"):
        print(
            f"grid shards: {payload.get('cached_shards', 0)} cached, "
            f"{payload.get('retried_shards', 0)} retried"
        )
    target = write_bench_json(payload, args.out)
    print(f"benchmark artifact written to {target}")
    if baseline is not None:
        diff = compare_bench_detailed(
            payload, baseline, tolerance=args.tolerance
        )
        print(f"vs {args.compare}:")
        print(format_compare(diff, verbose=args.verbose_compare))
        if diff["regressed"]:
            return 1
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Fleet-scale campaign: many devices, many tenants, one report."""
    import json

    from repro.fleet import FleetConfig, format_fleet, run_fleet
    from repro.ftl import FTL_VARIANTS

    variants = tuple(
        args.variants or ("baseline", "erSSD", "scrSSD", "secSSD")
    )
    unknown = [v for v in variants if v not in FTL_VARIANTS]
    if unknown:
        print(f"unknown variant(s) {unknown}; choose from {sorted(FTL_VARIANTS)}")
        return 2
    cfg = FleetConfig(
        devices=args.devices,
        tenants=args.tenants,
        seed=args.seed,
        variants=variants,
        base_workload=args.workload,
        zipf_s=args.zipf,
        spread=args.spread,
        storm=args.storm,
        storm_count=args.storms,
        storm_fraction=args.storm_fraction,
        device_blocks=args.blocks,
        device_wordlines=args.wordlines,
        write_multiplier=args.multiplier,
        queue_depth=args.qd,
        devices_per_shard=args.shard,
    )
    progress = None
    if args.progress:
        from repro.analysis.progress import ProgressReporter

        progress = ProgressReporter("fleet")
    run = run_fleet(
        cfg,
        jobs=args.jobs,
        resume_dir=args.resume,
        stop_after_shards=args.stop_after_shards,
        audit=args.audit,
        trace_dir=args.trace_out,
        progress=progress,
    )
    if run is None:
        print(
            f"fleet: stopped after {args.stop_after_shards} shard(s); "
            f"re-run with --resume to continue"
        )
        return 0
    print(format_fleet(run.report))
    for path in run.trace_files:
        print(f"trace written to {path}")
    if run.cached_shards or run.retried_shards:
        print(
            f"fleet shards: {run.shards} total, {run.cached_shards} cached, "
            f"{run.retried_shards} retried"
        )
    if args.json:
        # the JSON artifact holds only the merged report: byte-identical
        # for serial, parallel, and resumed runs of the same config
        with open(args.json, "w") as fh:
            json.dump(run.report, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"fleet report written to {args.json}")
    if args.audit:
        failed = sum(
            int(s["sanitization"]["certified_devices"])
            - int(s["sanitization"]["verified_ok"])
            for s in run.report["variants"].values()  # type: ignore[union-attr]
            if "sanitization" in s
        )
        if failed:
            print(f"fleet audit: {failed} device certificate(s) failed "
                  "verification")
            return 1
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """cProfile another repro command; print a pstats hot-spot report."""
    import cProfile
    import io
    import pstats

    command = list(args.cmd)
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        print("profile: give a repro command to run, e.g. "
              "`repro profile -- bench --repeats 1`")
        return 2
    if command[0] == "profile":
        print("profile: cannot profile itself")
        return 2
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = main(command)
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    print(stream.getvalue().rstrip())
    return status


def cmd_lint(args: argparse.Namespace) -> int:
    """Static domain lint (SIM01-SIM16) over the simulator sources."""
    from repro.checkers.lint import rule_catalogue, run_lint

    if args.rules:
        print(rule_catalogue())
        return 0
    return run_lint(
        args.paths,
        show_hints=not args.no_hints,
        fmt=args.format,
        out=args.out,
        baseline_path=args.baseline,
        no_baseline=args.no_baseline,
        write_baseline=args.write_baseline,
    )


def cmd_trace(args: argparse.Namespace) -> int:
    """Traced simulation -> Chrome-trace-event file (Perfetto-loadable)."""
    from repro.analysis.tracing import (
        format_trace_summary,
        parse_sample_spec,
        run_traced_study,
        write_trace_files,
    )
    from repro.ftl import FTL_VARIANTS
    from repro.sim.arrivals import ClosedLoopArrivals
    from repro.sim.policies import POLICIES

    variants = tuple(args.variants or ("secSSD",))
    unknown = [v for v in variants if v not in FTL_VARIANTS]
    if unknown:
        print(f"unknown variant(s) {unknown}; choose from {sorted(FTL_VARIANTS)}")
        return 2
    if args.policy != "auto" and args.policy not in POLICIES:
        print(f"unknown policy {args.policy!r}; choose from "
              f"{['auto', *sorted(POLICIES)]}")
        return 2
    try:
        sample = parse_sample_spec(args.sample)
    except ValueError as exc:
        print(exc)
        return 2
    runs = run_traced_study(
        _config(args),
        args.workload,
        variants,
        seed=args.seed,
        write_multiplier=args.multiplier,
        policy=args.policy,
        arrivals=ClosedLoopArrivals(args.qd),
        capacity=args.capacity,
        sample=sample,
    )
    print(format_trace_summary(runs))
    for path in write_trace_files(runs, args.out, jsonl=args.jsonl):
        print(f"trace written to {path}")
    return 0


def cmd_torture(args: argparse.Namespace) -> int:
    """Fault-injection torture sweep with a robustness scorecard."""
    from repro.analysis.torture import (
        CHECKPOINT_MODES,
        TORTURE_VARIANTS,
        run_torture,
    )
    from repro.ftl import FTL_VARIANTS

    variants = tuple(args.variants or TORTURE_VARIANTS)
    unknown = [v for v in variants if v not in FTL_VARIANTS]
    if unknown:
        print(f"unknown variant(s) {unknown}; choose from {sorted(FTL_VARIANTS)}")
        return 2
    modes = (
        CHECKPOINT_MODES
        if args.checkpoint_modes is None
        else tuple(args.checkpoint_modes)
    )
    bad_modes = [m for m in modes if m not in CHECKPOINT_MODES]
    if bad_modes:
        print(f"unknown checkpoint mode(s) {bad_modes}; "
              f"choose from {list(CHECKPOINT_MODES)}")
        return 2
    progress = None
    if args.progress:
        from repro.analysis.progress import ProgressReporter

        progress = ProgressReporter("torture")
    card = run_torture(
        _config(args),
        variants=variants,
        seed=args.seed,
        n_requests=args.ops,
        rates=tuple(args.rates),
        window_start=args.window_start,
        window=args.window,
        jobs=args.jobs,
        checkpoint_modes=modes,
        resume_dir=args.resume,
        progress=progress,
    )
    print(card.to_json() if args.json else card.format())
    if args.trace_out:
        from repro.analysis.torture import run_rate_case
        from repro.faults import FaultKind, FaultPlan
        from repro.telemetry import Telemetry
        from repro.telemetry.export import write_chrome_trace

        # one representative faulted replay per variant, traced: the
        # highest configured rate maximizes fault instants in the view
        rate = max(args.rates) if args.rates else 1e-2
        streams = {}
        for variant in variants:
            telemetry = Telemetry()
            run_rate_case(
                _config(args),
                variant,
                FaultPlan.single(FaultKind.PROGRAM_FAIL, rate, seed=args.seed),
                FaultKind.PROGRAM_FAIL.value,
                f"rate={rate:g}",
                args.ops,
                args.seed,
                telemetry=telemetry,
            )
            streams[variant] = telemetry.bus.events
        write_chrome_trace(args.trace_out, streams)
        print(f"trace written to {args.trace_out}")
    if args.cert_out:
        from pathlib import Path

        from repro.analysis.torture import traced_rate_case
        from repro.audit import (
            audit_live_run,
            audit_telemetry,
            certificate_text,
        )
        from repro.faults import FaultKind, FaultPlan

        # one representative faulted replay per variant, audited: the
        # certificate's forensic pass proves no sanitized page survived
        # readable on the raw chips even with faults firing
        rate = max(args.rates) if args.rates else 1e-2
        base = Path(args.cert_out)
        failed = 0
        for variant in variants:
            telemetry = audit_telemetry()
            _, ssd = traced_rate_case(
                _config(args),
                variant,
                FaultPlan.single(FaultKind.PROGRAM_FAIL, rate, seed=args.seed),
                FaultKind.PROGRAM_FAIL.value,
                f"rate={rate:g}",
                args.ops,
                args.seed,
                telemetry=telemetry,
            )
            audited = audit_live_run(
                telemetry,
                _config(args),
                workload="torture",
                variant=variant,
                ssd=ssd,
                seed=args.seed,
            )
            path = (
                base
                if len(variants) == 1
                else base.with_name(f"{base.stem}.{variant}{base.suffix}")
            )
            path.write_text(certificate_text(audited.certificate))
            status = "ok" if audited.ok else "AUDIT FAILED"
            print(f"certificate written to {path} ({status})")
            failed += 0 if audited.ok else 1
        if failed:
            return 1
    return 0 if card.passed else 1


def cmd_age(args: argparse.Namespace) -> int:
    """Device-aging lifetime campaign: wear each variant to first death."""
    import json

    from repro.analysis.aging import (
        AGING_VARIANTS,
        format_lifetime,
        run_aging_campaign,
    )
    from repro.analysis.parallel import GridTaskError
    from repro.checkpoint import CampaignMismatchError, CheckpointError
    from repro.ftl import FTL_VARIANTS
    from repro.ftl.allocator import OutOfBlocksError
    from repro.telemetry import Telemetry

    variants = tuple(args.variants or AGING_VARIANTS)
    unknown = [v for v in variants if v not in FTL_VARIANTS]
    if unknown:
        print(f"unknown variant(s) {unknown}; choose from {sorted(FTL_VARIANTS)}")
        return 2
    progress = None
    if args.progress:
        from repro.analysis.progress import ProgressReporter

        progress = ProgressReporter("age")
    telemetry = Telemetry()

    def _died(exc: OutOfBlocksError) -> int:
        print(f"age: device died mid-window ({exc})")
        print(
            "age: a block pool ran dry between checkpoint boundaries, "
            "before the first-wearout stop could fire; lower "
            "--checkpoint-every (finer stop granularity) or raise "
            "--pe-limit"
        )
        return 1

    try:
        payload = run_aging_campaign(
            _config(args),
            args.workload,
            args.dir,
            args.checkpoint_every,
            variants=variants,
            seed=args.seed,
            write_multiplier=args.multiplier,
            checked=True if args.checked else None,
            jobs=args.jobs,
            stop_after=args.stop_after,
            progress=progress,
            telemetry=telemetry,
        )
    except OutOfBlocksError as exc:
        return _died(exc)
    except GridTaskError as exc:
        # jobs > 1: worker exceptions arrive wrapped with the cell name
        if isinstance(exc.__cause__, OutOfBlocksError):
            return _died(exc.__cause__)
        raise
    except CheckpointError as exc:
        print(exc.render())
        return 1
    except CampaignMismatchError as exc:
        print(f"age: {exc}")
        return 2
    if payload.get("paused"):
        print(
            f"age: stopped after {args.stop_after} checkpoint(s) per "
            f"variant in {args.dir}; re-run the same command to continue"
        )
        return 0
    print(format_lifetime(payload))
    if payload.get("cached_shards") or payload.get("retried_shards"):
        print(
            f"grid shards: {payload.get('cached_shards', 0)} cached, "
            f"{payload.get('retried_shards', 0)} retried"
        )
    if args.json:
        from pathlib import Path

        from repro.checkpoint.codec import canonical_dumps

        report = dict(payload)
        report["gauges"] = telemetry.metrics.snapshot()
        Path(args.json).write_text(canonical_dumps(report))
        print(f"lifetime report written to {args.json}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Replay workloads on every variant under the runtime sanitizer."""
    from repro.analysis.experiments import run_workload_on_variant
    from repro.checkers.sanitizer import InvariantViolation
    from repro.ftl import FTL_VARIANTS

    variants = args.variants or sorted(FTL_VARIANTS)
    unknown = [v for v in variants if v not in FTL_VARIANTS]
    if unknown:
        print(f"unknown variant(s) {unknown}; choose from {sorted(FTL_VARIANTS)}")
        return 2
    config = _config(args)
    failures = 0
    for variant in variants:
        for workload in args.workloads:
            try:
                run_workload_on_variant(
                    config,
                    workload,
                    variant,
                    seed=args.seed,
                    write_multiplier=args.multiplier,
                    checked=True,
                    check_interval=args.interval,
                )
            except InvariantViolation as exc:
                failures += 1
                print(f"FAIL {variant}/{workload}: [{exc.invariant}] {exc.detail}")
                for event in exc.trail[-5:]:
                    print(f"      {event}")
            else:
                print(f"ok   {variant}/{workload}")
    if failures:
        print(f"repro check: {failures} invariant violation(s)")
        return 1
    print(
        f"repro check: clean ({len(variants)} variants x "
        f"{len(args.workloads)} workloads)"
    )
    return 0


COMMANDS = {
    "audit": cmd_audit,
    "table1": cmd_table1,
    "fig6": cmd_fig6,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig12": cmd_fig12,
    "fig14": cmd_fig14,
    "fig14c": cmd_fig14c,
    "overheads": cmd_overheads,
    "scorecard": cmd_scorecard,
    "simulate": cmd_simulate,
    "bench": cmd_bench,
    "fleet": cmd_fleet,
    "profile": cmd_profile,
    "trace": cmd_trace,
    "lint": cmd_lint,
    "check": cmd_check,
    "torture": cmd_torture,
    "age": cmd_age,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the Evanesco reproduction.",
    )
    scale = argparse.ArgumentParser(add_help=False)
    scale.add_argument("--blocks", type=int, default=20,
                       help="blocks per chip (device scale)")
    scale.add_argument("--wordlines", type=int, default=16,
                       help="wordlines per block (device scale)")
    scale.add_argument("--seed", type=int, default=1)
    scale.add_argument("--multiplier", type=float, default=1.0,
                       help="steady-state writes as a multiple of capacity")
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="command")
    for name in sorted(COMMANDS):
        if name == "audit":
            p = sub.add_parser(
                name, parents=[scale],
                help="sanitization audit: trace or live run -> certificate",
            )
            p.add_argument("trace", nargs="?", default=None,
                           help="archived JSONL trace to audit (omit to "
                                "run and audit a live workload instead)")
            p.add_argument("--workload", default="MailServer",
                           help="live-run mode: workload trace to simulate")
            p.add_argument("--variant", default="secSSD",
                           help="live-run mode: FTL variant to audit")
            p.add_argument("--cert", default=None, metavar="CERT",
                           help="verify the trace against this previously "
                                "issued certificate instead of issuing one")
            p.add_argument("--cert-out", default=None, metavar="PATH",
                           help="write the signed sanitization certificate")
            p.add_argument("--pages-per-block", type=int, default=None,
                           help="device geometry for headerless traces")
        elif name == "lint":
            p = sub.add_parser(
                name, help="static domain lint (rules SIM01-SIM16)"
            )
            p.add_argument("paths", nargs="*", default=None,
                           help="files/dirs to lint (default: the package)")
            p.add_argument("--no-hints", action="store_true",
                           help="omit fix hints from the report")
            p.add_argument("--format", choices=("text", "json", "sarif"),
                           default="text",
                           help="report format (default: text)")
            p.add_argument("--out", default=None, metavar="FILE",
                           help="write the report to FILE instead of stdout")
            p.add_argument("--baseline", default=None, metavar="FILE",
                           help="baseline file of accepted findings "
                                "(default: ./.lint-baseline.json if present)")
            p.add_argument("--no-baseline", action="store_true",
                           help="ignore any baseline file")
            p.add_argument("--write-baseline", action="store_true",
                           help="regenerate the baseline from the current "
                                "findings and exit")
            p.add_argument("--rules", action="store_true",
                           help="list the rule catalogue and exit")
        elif name == "torture":
            p = sub.add_parser(
                name,
                help="fault-injection robustness sweep + scorecard",
            )
            # own scale options (not the shared parent: different
            # defaults, and set_defaults on shared actions would leak
            # into every other subcommand): a small device so the
            # request stream actually reaches GC/lazy-erase activity
            p.add_argument("--blocks", type=int, default=12,
                           help="blocks per chip (device scale)")
            p.add_argument("--wordlines", type=int, default=4,
                           help="wordlines per block (device scale)")
            p.add_argument("--seed", type=int, default=1)
            p.add_argument("--variants", nargs="*", default=None,
                           help="FTL variants to torture (default: all)")
            # 700 requests overwrite the default 12x4 device's capacity,
            # so the rate sweep reaches GC and lazy-erase activity
            p.add_argument("--ops", type=int, default=700,
                           help="host requests per torture case")
            p.add_argument("--pe-limit", type=int, default=None,
                           help="block P/E endurance; worn-out blocks are "
                                "scrub-retired as grown-bad (default: "
                                "unlimited)")
            p.add_argument("--rates", nargs="*", type=float,
                           default=[1e-3, 1e-2],
                           help="per-op fault probabilities for the sweep")
            p.add_argument("--window", type=int, default=200,
                           help="power-loss boundaries to sweep per variant")
            p.add_argument("--window-start", type=int, default=0,
                           help="first op index of the power-loss window")
            p.add_argument("--jobs", type=int, default=1,
                           help="worker processes for the case grid "
                                "(scorecard is identical for any count)")
            p.add_argument("--checkpoint-modes", nargs="*", default=None,
                           metavar="MODE",
                           help="checkpoint-corruption cases to include "
                                "(powercut bitflip truncate; default all; "
                                "pass no MODE to disable)")
            p.add_argument("--resume", default=None, metavar="DIR",
                           help="persist completed cases to DIR and "
                                "resume a killed sweep from there")
            p.add_argument("--json", action="store_true",
                           help="emit the machine-readable scorecard")
            p.add_argument("--trace-out", default=None, metavar="PATH",
                           help="record one traced faulted replay per "
                                "variant as a Chrome trace")
            p.add_argument("--cert-out", default=None, metavar="PATH",
                           help="audit one faulted replay per variant and "
                                "write signed sanitization certificates")
            p.add_argument("--progress", action="store_true",
                           help="stream shard-completion/ETA lines to "
                                "stderr (artifacts unchanged)")
        elif name == "age":
            p = sub.add_parser(
                name,
                help="device-aging lifetime campaign (wear to first "
                     "block death)",
            )
            # own scale options (not the shared parent: different
            # defaults): a device big enough that wear spread develops
            # before the horizon ends, at the calibrated P/E budget
            p.add_argument("--blocks", type=int, default=16,
                           help="blocks per chip (device scale)")
            p.add_argument("--wordlines", type=int, default=8,
                           help="wordlines per block (device scale)")
            p.add_argument("--seed", type=int, default=1)
            p.add_argument("--multiplier", type=float, default=1.0,
                           help="steady-state writes as a multiple of "
                                "capacity")
            p.add_argument("--workload", default="MailServer",
                           help="workload trace to replay until wear-out")
            p.add_argument("--variants", nargs="*", default=None,
                           help="FTL variants (default: the Figure-14 "
                                "four)")
            p.add_argument("--pe-limit", type=int, default=25,
                           help="block P/E endurance; erases beyond it "
                                "raise WearOutError and retire the block")
            p.add_argument("--wear-leveling", type=int, default=4,
                           metavar="DELTA",
                           help="static wear-leveling threshold "
                                "(max-min erase spread that triggers a "
                                "cold-block migration; omit to disable)")
            p.add_argument("--wear-alloc", action="store_true",
                           help="wear-aware dynamic allocation: open the "
                                "least-worn reusable block, not the "
                                "FIFO head")
            p.add_argument("--wear-coupling", action="store_true",
                           help="derive read reliability from live block "
                                "wear (off by default: keeps same-seed "
                                "artifacts of other commands identical)")
            p.add_argument("--dir", default="age-ck", metavar="DIR",
                           help="campaign root (per-variant checkpoint "
                                "stores + grid result cache); killable "
                                "and resumable by re-running the same "
                                "command (default: ./age-ck)")
            p.add_argument("--checkpoint-every", type=int, default=50,
                           metavar="N",
                           help="requests per checkpoint window; also the "
                                "first-wearout stop granularity, so keep "
                                "it small enough that retirement cannot "
                                "spiral into pool exhaustion mid-window")
            p.add_argument("--jobs", type=int, default=1,
                           help="worker processes for the variant grid "
                                "(the report is identical for any count)")
            p.add_argument("--stop-after", type=int, default=None,
                           metavar="K",
                           help="pause each variant after K new "
                                "checkpoints (deterministic interruption, "
                                "for tests and CI smoke)")
            p.add_argument("--checked", action="store_true",
                           help="attach the runtime invariant sanitizer")
            p.add_argument("--json", default=None, metavar="PATH",
                           help="write the lifetime report plus wear "
                                "gauges as JSON")
            p.add_argument("--progress", action="store_true",
                           help="stream shard-completion/ETA lines to "
                                "stderr (artifacts unchanged)")
        elif name == "simulate":
            p = sub.add_parser(
                name, parents=[scale],
                help="closed-loop tail-latency study (discrete-event engine)",
            )
            p.add_argument("--workload", default="MailServer",
                           help="workload trace to simulate")
            p.add_argument("--variants", nargs="*", default=None,
                           help="FTL variants (default: the Figure-14 four)")
            p.add_argument("--policy", default="auto",
                           help="scheduling policy, or 'auto' for each "
                                "variant's honest best")
            p.add_argument("--qd", type=int, default=32,
                           help="closed-loop queue depth")
            p.add_argument("--rate", type=float, default=None,
                           help="open Poisson arrivals at this IOPS "
                                "instead of a closed loop")
            p.add_argument("--bursty", action="store_true",
                           help="with --rate: bursty ON/OFF arrivals")
            p.add_argument("--checked", action="store_true",
                           help="attach the runtime invariant sanitizer")
            p.add_argument("--interval", type=int, default=50,
                           help="host batches between full sanitizer checks")
            p.add_argument("--pe-limit", type=int, default=None,
                           help="block P/E endurance; worn-out blocks are "
                                "scrub-retired as grown-bad (default: "
                                "unlimited)")
            p.add_argument("--json", default=None, metavar="PATH",
                           help="also write full reports as JSON")
            p.add_argument("--trace-out", default=None, metavar="PATH",
                           help="record each variant's event trace into "
                                "one Chrome-trace-event file")
            p.add_argument("--cert-out", default=None, metavar="PATH",
                           help="audit each variant's run (device probe "
                                "included) and write signed sanitization "
                                "certificates")
            p.add_argument("--checkpoint-every", type=int, default=None,
                           metavar="N",
                           help="write a crash-consistent device "
                                "checkpoint every N requests")
            p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                           help="campaign directory (one subdirectory "
                                "per variant)")
            p.add_argument("--resume", action="store_true",
                           help="resume an interrupted campaign from "
                                "--checkpoint-dir (byte-identical to an "
                                "uninterrupted run)")
            p.add_argument("--stop-after", type=int, default=None,
                           metavar="K",
                           help="exit after writing K checkpoints "
                                "(deterministic interruption, for tests "
                                "and CI smoke)")
        elif name == "trace":
            p = sub.add_parser(
                name, parents=[scale],
                help="traced simulation -> Perfetto/Chrome trace file",
            )
            p.add_argument("--workload", default="MailServer",
                           help="workload trace to simulate")
            p.add_argument("--variants", nargs="*", default=None,
                           help="FTL variants to trace (default: secSSD)")
            p.add_argument("--policy", default="auto",
                           help="scheduling policy, or 'auto' for each "
                                "variant's honest best")
            p.add_argument("--qd", type=int, default=32,
                           help="closed-loop queue depth")
            p.add_argument("--out", default="trace.json",
                           help="Chrome-trace-event output path")
            p.add_argument("--jsonl", default=None, metavar="PATH",
                           help="also write the raw event stream as "
                                "JSON lines (one file per variant)")
            p.add_argument("--capacity", type=int, default=65536,
                           help="trace ring-buffer capacity in events "
                                "(oldest dropped beyond it)")
            p.add_argument("--sample", nargs="*", default=None,
                           metavar="CAT=N",
                           help="keep every Nth event of a category, "
                                "e.g. ftl.page=8 sim.service=4")
        elif name == "bench":
            p = sub.add_parser(
                name, parents=[scale],
                help="engine throughput benchmark -> BENCH_sim.json",
            )
            p.add_argument("--workload", default="Mobile",
                           help="workload trace to benchmark")
            p.add_argument("--variants", nargs="*", default=None,
                           help="FTL variants (default: baseline secSSD)")
            p.add_argument("--policy", default="fifo",
                           help="scheduling policy for the timed runs")
            p.add_argument("--qd", type=int, default=32,
                           help="closed-loop queue depth")
            p.add_argument("--repeats", type=int, default=3,
                           help="timed repeats per variant (best kept)")
            p.add_argument("--pe-limit", type=int, default=None,
                           help="block P/E endurance; worn-out blocks are "
                                "scrub-retired as grown-bad (default: "
                                "unlimited)")
            p.add_argument("--jobs", type=int, default=1,
                           help="worker processes for the variant x repeat "
                                "grid (simulated metrics are identical for "
                                "any count)")
            p.add_argument("--out", default="BENCH_sim.json",
                           help="artifact path")
            p.add_argument("--compare", default=None, metavar="BASELINE",
                           help="fail (exit 1) if simulated metrics regress "
                                "vs this committed baseline artifact")
            p.add_argument("--tolerance", type=float, default=0.05,
                           help="allowed fractional slack for --compare "
                                "(default 0.05 = 5%%)")
            p.add_argument("--verbose-compare", action="store_true",
                           help="print every --compare metric row, not "
                                "just the verdict and regressions")
            p.add_argument("--resume", default=None, metavar="DIR",
                           help="persist completed grid shards to DIR and "
                                "resume a killed benchmark from there")
            p.add_argument("--progress", action="store_true",
                           help="stream shard-completion/ETA lines to "
                                "stderr (artifacts unchanged)")
        elif name == "fleet":
            # own scale options (not the shared parent): fleet devices
            # are deliberately tiny so hundreds fit in one campaign
            p = sub.add_parser(
                name,
                help="fleet-scale multi-device multi-tenant campaign",
            )
            p.add_argument("--devices", type=int, default=16,
                           help="devices in the fleet")
            p.add_argument("--tenants", type=int, default=2000,
                           help="tenants across the fleet")
            p.add_argument("--variants", nargs="*", default=None,
                           help="FTL variants (default: the Figure-14 four)")
            p.add_argument("--workload", default="MailServer",
                           help="base workload profile tenants inherit")
            p.add_argument("--storm", default="none",
                           choices=("none", "deletion", "churn"),
                           help="scripted fleet-wide storm kind")
            p.add_argument("--storms", type=int, default=1,
                           help="storm events per campaign")
            p.add_argument("--storm-fraction", type=float, default=0.25,
                           help="fraction of tenants each storm hits")
            p.add_argument("--zipf", type=float, default=1.1,
                           help="Zipf exponent of tenant traffic weights")
            p.add_argument("--spread", type=int, default=1,
                           help="candidate devices per tenant placement")
            p.add_argument("--blocks", type=int, default=8,
                           help="blocks per chip (per-device scale)")
            p.add_argument("--wordlines", type=int, default=4,
                           help="wordlines per block (per-device scale)")
            p.add_argument("--multiplier", type=float, default=0.6,
                           help="per-device steady writes as a multiple "
                                "of capacity (scaled by traffic share)")
            p.add_argument("--qd", type=int, default=16,
                           help="closed-loop queue depth per device")
            p.add_argument("--shard", type=int, default=8,
                           help="devices per grid shard")
            p.add_argument("--seed", type=int, default=1,
                           help="master campaign seed")
            p.add_argument("--jobs", type=int, default=1,
                           help="worker processes for the shard grid "
                                "(the report is identical for any count)")
            p.add_argument("--resume", default=None, metavar="DIR",
                           help="persist completed shards to DIR and "
                                "resume a killed campaign from there")
            p.add_argument("--stop-after-shards", type=int, default=None,
                           metavar="K",
                           help="run only the first K pending shards and "
                                "exit (deterministic interruption, for "
                                "tests and CI smoke)")
            p.add_argument("--json", default=None, metavar="PATH",
                           help="write the merged fleet report as JSON "
                                "(byte-identical for any --jobs/resume)")
            p.add_argument("--audit", action="store_true",
                           help="issue a signed sanitization certificate "
                                "per device and fold fleet exposure/"
                                "coverage gauges into the report")
            p.add_argument("--trace-out", default=None, metavar="DIR",
                           help="export per-device JSONL streams plus one "
                                "merged Chrome trace into DIR")
            p.add_argument("--progress", action="store_true",
                           help="stream shard-completion/ETA lines to "
                                "stderr (artifacts unchanged)")
        elif name == "check":
            p = sub.add_parser(
                name, parents=[scale],
                help="run workloads under the runtime invariant sanitizer",
            )
            p.add_argument("--variants", nargs="*", default=None,
                           help="FTL variants to check (default: all)")
            p.add_argument("--workloads", nargs="*", default=["Mobile"],
                           help="workload traces to replay (default: Mobile)")
            p.add_argument("--interval", type=int, default=1,
                           help="host batches between full O(device) checks")
        elif name == "profile":
            p = sub.add_parser(
                name,
                help="run another repro command under cProfile",
                description="Profile any repro command, e.g. "
                            "`repro profile -- bench --repeats 1`.",
            )
            p.add_argument("--sort", default="cumulative",
                           help="pstats sort key (cumulative, tottime, "
                                "ncalls, ...)")
            p.add_argument("--limit", type=int, default=25,
                           help="rows of the pstats report to print")
            p.add_argument("cmd", nargs=argparse.REMAINDER,
                           help="the repro command line to profile "
                                "(prefix with -- to pass options)")
        else:
            sub.add_parser(name, parents=[scale],
                           help=f"reproduce {name}")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    result = COMMANDS[args.command](args)
    return int(result or 0)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
