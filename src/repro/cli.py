"""Command-line interface: regenerate any reproduced table or figure.

Usage::

    python -m repro table1                 # Section 3 versioning study
    python -m repro fig6                   # OSR reliability (MLC + TLC)
    python -m repro fig9                   # pLock design space
    python -m repro fig10                  # open-interval effect
    python -m repro fig12                  # bLock design space
    python -m repro fig14                  # system IOPS/WAF comparison
    python -m repro fig14c                 # secured-fraction sweep
    python -m repro overheads              # Section 5.5 accounting

Common options: ``--blocks``, ``--wordlines`` (device scale), ``--seed``,
``--multiplier`` (steady-state writes as a multiple of capacity).
"""

from __future__ import annotations

import argparse

from repro.analysis import (
    format_figure14,
    format_secure_fraction,
    format_table1,
    render_table,
    run_figure14,
    run_secure_fraction_sweep,
    run_versioning_study,
    summarize_overheads,
)
from repro.core import explore_block_design, explore_plock_design
from repro.flash.geometry import CellType
from repro.flash.osr import OSR_CONDITIONS, osr_study
from repro.flash.reliability import (
    OPEN_INTERVAL_CONDITIONS,
    open_interval_penalty,
    open_interval_study,
)
from repro.ssd import scaled_config


def _config(args: argparse.Namespace):
    return scaled_config(
        blocks_per_chip=args.blocks, wordlines_per_block=args.wordlines
    )


def cmd_table1(args: argparse.Namespace) -> None:
    config = _config(args)
    summaries = {
        workload: run_versioning_study(
            config, workload, seed=args.seed, write_multiplier=args.multiplier
        ).summary
        for workload in ("Mobile", "MailServer", "DBServer")
    }
    print(format_table1(summaries))


def cmd_fig6(args: argparse.Namespace) -> None:
    for cell_type in (CellType.MLC, CellType.TLC):
        study = osr_study(cell_type, n_wordlines=400, seed=args.seed)
        rows = [
            [
                cond,
                f"{study.box_stats(cond)['median']:.2f}",
                f"{study.fraction_exceeding_limit(cond):.1%}",
            ]
            for cond in OSR_CONDITIONS
        ]
        print(
            render_table(
                ["condition", "median RBER (norm.)", "unreadable"],
                rows,
                title=f"Figure 6: {cell_type.name} MSB pages under OSR",
            )
        )
        print()


def cmd_fig9(args: argparse.Namespace) -> None:
    result = explore_plock_design()
    rows = [
        [
            str(p.pulse),
            f"{p.data_rber_factor:.3f}",
            f"{p.program_success:.3f}",
            p.region,
            p.label or "",
        ]
        for p in result.points
    ]
    print(
        render_table(
            ["pulse", "disturb factor", "program success", "region", "label"],
            rows,
            title="Figure 9: pLock design space",
        )
    )
    print(f"selected: ({result.selected_label}) {result.selected_pulse}")


def cmd_fig10(args: argparse.Namespace) -> None:
    points = open_interval_study()
    for cond in OPEN_INTERVAL_CONDITIONS:
        print(f"{cond}: +{open_interval_penalty(points, cond):.0%} "
              "RBER at the longest open interval")


def cmd_fig12(args: argparse.Namespace) -> None:
    result = explore_block_design()
    rows = [
        [str(p.pulse), f"{p.initial_vth:.2f} V", p.region, p.label or ""]
        for p in result.points
    ]
    print(
        render_table(
            ["pulse", "initial SSL Vth", "region", "label"],
            rows,
            title="Figure 12: bLock design space",
        )
    )
    print(f"selected: ({result.selected_label}) {result.selected_pulse}")


def cmd_fig14(args: argparse.Namespace) -> None:
    results = run_figure14(
        _config(args), seed=args.seed, write_multiplier=args.multiplier
    )
    print(format_figure14(results))


def cmd_fig14c(args: argparse.Namespace) -> None:
    sweep = run_secure_fraction_sweep(
        _config(args), seed=args.seed, write_multiplier=args.multiplier
    )
    print(format_secure_fraction(sweep))


def cmd_overheads(args: argparse.Namespace) -> None:
    rows = [[key, f"{value:.4g}"] for key, value in summarize_overheads().items()]
    print(render_table(["metric", "value"], rows, title="Section 5.5 overheads"))


def cmd_scorecard(args: argparse.Namespace) -> None:
    from repro.analysis.paper_targets import evaluate, format_scorecard
    from repro.analysis.scorecard import collect_measurements

    measurements = collect_measurements(
        _config(args), seed=args.seed, write_multiplier=args.multiplier
    )
    checks = evaluate(measurements)
    print(format_scorecard(checks))
    failed = sum(1 for c in checks if not c.passed)
    print(f"\n{len(checks) - failed}/{len(checks)} targets pass")


COMMANDS = {
    "table1": cmd_table1,
    "fig6": cmd_fig6,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig12": cmd_fig12,
    "fig14": cmd_fig14,
    "fig14c": cmd_fig14c,
    "overheads": cmd_overheads,
    "scorecard": cmd_scorecard,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the Evanesco reproduction.",
    )
    parser.add_argument("command", choices=sorted(COMMANDS))
    parser.add_argument("--blocks", type=int, default=20,
                        help="blocks per chip (device scale)")
    parser.add_argument("--wordlines", type=int, default=16,
                        help="wordlines per block (device scale)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--multiplier", type=float, default=1.0,
                        help="steady-state writes as a multiple of capacity")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
