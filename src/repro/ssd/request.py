"""Host block-I/O request types and flags -- Section 6.

SecureSSD extends the block-I/O interface with one new operation flag,
``REQ_OP_INSEC_WRITE``: a write carrying it is *security-insensitive* and
the FTL tracks it as a plain ``valid`` page; all other writes default to
``secured`` so that Evanesco-unaware hosts get sanitization for free
(backward compatibility, Section 6).

Requests address 16-KiB logical pages (LPAs); the host layer is
responsible for aligning byte-level file I/O to page boundaries, exactly
like the paper's custom trace replayer does.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, Flag, auto


class RequestOp(Enum):
    """Block-level operation."""

    READ = "read"
    WRITE = "write"
    TRIM = "trim"


class RequestFlags(Flag):
    """Extended block-I/O flags."""

    NONE = 0
    #: the write's data is security-insensitive (O_INSEC file).
    INSEC_WRITE = auto()


@dataclass(frozen=True, slots=True)
class IoRequest:
    """One host request over a contiguous LPA range.

    Attributes
    ----------
    op:
        Read, write, or trim.
    lpa:
        First logical page address.
    npages:
        Number of consecutive logical pages.
    flags:
        Extended flags (``INSEC_WRITE``).
    tag:
        Opaque host annotation (the file-system layer passes the file id,
        which VerTrace uses to attribute physical pages to files).
    """

    op: RequestOp
    lpa: int
    npages: int = 1
    flags: RequestFlags = RequestFlags.NONE
    tag: object = None

    def __post_init__(self) -> None:
        if self.npages <= 0:
            raise ValueError("npages must be positive")
        if self.lpa < 0:
            raise ValueError("lpa must be non-negative")

    @property
    def secure(self) -> bool:
        """Whether written data must be tracked as secured."""
        return self.op is RequestOp.WRITE and not (
            self.flags & RequestFlags.INSEC_WRITE
        )

    def lpas(self) -> range:
        return range(self.lpa, self.lpa + self.npages)


def read(lpa: int, npages: int = 1, tag: object = None) -> IoRequest:
    return IoRequest(RequestOp.READ, lpa, npages, tag=tag)


def write(
    lpa: int,
    npages: int = 1,
    secure: bool = True,
    tag: object = None,
) -> IoRequest:
    flags = RequestFlags.NONE if secure else RequestFlags.INSEC_WRITE
    return IoRequest(RequestOp.WRITE, lpa, npages, flags=flags, tag=tag)


def trim(lpa: int, npages: int = 1, tag: object = None) -> IoRequest:
    return IoRequest(RequestOp.TRIM, lpa, npages, tag=tag)
