"""Device-level statistics: IOPS, WAF, erase counts, lock counts.

These are the quantities Figure 14 and the Section 1 headline numbers are
built from:

* **IOPS** = host operations / elapsed device time;
* **WAF** (write amplification factor) = flash page programs / host page
  writes;
* erase, pLock, bLock, and scrub counts for the lifetime comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class DeviceStats:
    """Cumulative counters for one SSD run."""

    host_reads: int = 0
    host_writes: int = 0
    host_trims: int = 0
    flash_reads: int = 0
    flash_programs: int = 0
    flash_erases: int = 0
    gc_copies: int = 0
    gc_invocations: int = 0
    plocks: int = 0
    block_locks: int = 0
    scrubs: int = 0
    relocation_copies: int = 0  # sanitization-driven copies (erSSD/scrSSD)
    sanitize_erases: int = 0    # immediate erases for sanitization (erSSD)
    refreshes: int = 0          # read-disturb refresh rounds
    refresh_copies: int = 0     # pages moved by read refresh
    wear_levelings: int = 0     # static wear-leveling migration rounds
    wear_level_copies: int = 0  # pages moved by wear leveling

    # robustness counters (repro.faults fault handling)
    read_retries: int = 0        # extra read attempts after an ECC fail
    read_failures: int = 0       # reads that exhausted the retry budget
    salvage_reads: int = 0       # last-resort GC reads past the budget
    program_fails: int = 0       # page programs that status-failed (torn)
    erase_fails: int = 0         # block erases that status-failed
    lock_retries: int = 0        # extra pLock/bLock pulses after a verify miss
    lock_failures: int = 0       # locks unset after the full retry budget
    fallback_block_locks: int = 0  # pLock failures escalated to bLock
    fallback_erases: int = 0     # bLock failures escalated to erase/scrub
    grown_bad_blocks: int = 0    # blocks retired to the grown-bad table
    worn_out_blocks: int = 0     # blocks retired at their P/E limit
    #: host pages written when the first block wore out; -1 = none did.
    host_writes_at_first_wearout: int = -1

    # ------------------------------------------------------------------
    @property
    def host_ops(self) -> int:
        return self.host_reads + self.host_writes + self.host_trims

    @property
    def waf(self) -> float:
        """Write amplification: flash programs per host page write."""
        if self.host_writes == 0:
            return 0.0
        return self.flash_programs / self.host_writes

    def iops(self, elapsed_us: float) -> float:
        """Host I/O operations per second for the given elapsed time."""
        if elapsed_us <= 0.0:
            return 0.0
        return self.host_ops / (elapsed_us / 1e6)

    # ------------------------------------------------------------------
    def robustness(self) -> dict[str, int]:
        """The fault-handling counters as an ordered, JSON-ready dict."""
        return {
            "read_retries": self.read_retries,
            "read_failures": self.read_failures,
            "salvage_reads": self.salvage_reads,
            "program_fails": self.program_fails,
            "erase_fails": self.erase_fails,
            "lock_retries": self.lock_retries,
            "lock_failures": self.lock_failures,
            "fallback_block_locks": self.fallback_block_locks,
            "fallback_erases": self.fallback_erases,
            "grown_bad_blocks": self.grown_bad_blocks,
            "worn_out_blocks": self.worn_out_blocks,
        }

    def to_dict(self) -> dict[str, int]:
        """Every counter field, losslessly (no derived quantities).

        Unlike :meth:`snapshot` -- which is a report and mixes in the
        computed WAF -- this is a round-trippable serialization: the
        keys are exactly the dataclass fields, so
        ``DeviceStats.from_dict(stats.to_dict()) == stats``.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "DeviceStats":
        """Rebuild from :meth:`to_dict` output; unknown keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown DeviceStats fields: {sorted(unknown)}")
        return cls(**data)

    def snapshot(self) -> dict[str, float]:
        return {
            "host_reads": self.host_reads,
            "host_writes": self.host_writes,
            "host_trims": self.host_trims,
            "flash_reads": self.flash_reads,
            "flash_programs": self.flash_programs,
            "flash_erases": self.flash_erases,
            "gc_copies": self.gc_copies,
            "gc_invocations": self.gc_invocations,
            "plocks": self.plocks,
            "block_locks": self.block_locks,
            "scrubs": self.scrubs,
            "relocation_copies": self.relocation_copies,
            "sanitize_erases": self.sanitize_erases,
            "refreshes": self.refreshes,
            "refresh_copies": self.refresh_copies,
            "wear_levelings": self.wear_levelings,
            "wear_level_copies": self.wear_level_copies,
            "waf": self.waf,
            **self.robustness(),
        }


@dataclass
class RunResult:
    """Outcome of replaying one workload on one SSD configuration."""

    name: str
    stats: DeviceStats
    elapsed_us: float
    extra: dict[str, float] = field(default_factory=dict)
    #: per-request end-to-end latency percentiles by request class
    #: (``{"read": {"p50_us": ..., "p99_us": ...}, ...}``) -- populated
    #: by closed-loop runs through :mod:`repro.sim`; empty for open-loop
    #: replays, whose occupancy model has no per-request completion time.
    latency: dict[str, dict[str, float]] = field(default_factory=dict)
    #: busy fraction per simulated resource (``chip0`` .. ``chanN``) --
    #: populated by :mod:`repro.sim` runs.
    utilization: dict[str, float] = field(default_factory=dict)
    #: telemetry snapshot (counters/gauges/histograms + trace retention
    #: accounting) -- populated when the run carried a
    #: :class:`~repro.telemetry.Telemetry` session; empty otherwise.
    telemetry: dict[str, object] = field(default_factory=dict)

    @property
    def iops(self) -> float:
        return self.stats.iops(self.elapsed_us)

    @property
    def waf(self) -> float:
        return self.stats.waf

    @property
    def robustness(self) -> dict[str, int]:
        """Retry/fallback/grown-bad counters (fault-injection runs)."""
        return self.stats.robustness()

    def normalized_iops(self, baseline: "RunResult") -> float:
        if baseline.iops == 0.0:
            raise ValueError("baseline has zero IOPS")
        return self.iops / baseline.iops

    def normalized_waf(self, baseline: "RunResult") -> float:
        if baseline.waf == 0.0:
            raise ValueError("baseline has zero WAF")
        return self.waf / baseline.waf
