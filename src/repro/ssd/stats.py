"""Device-level statistics: IOPS, WAF, erase counts, lock counts.

These are the quantities Figure 14 and the Section 1 headline numbers are
built from:

* **IOPS** = host operations / elapsed device time;
* **WAF** (write amplification factor) = flash page programs / host page
  writes;
* erase, pLock, bLock, and scrub counts for the lifetime comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DeviceStats:
    """Cumulative counters for one SSD run."""

    host_reads: int = 0
    host_writes: int = 0
    host_trims: int = 0
    flash_reads: int = 0
    flash_programs: int = 0
    flash_erases: int = 0
    gc_copies: int = 0
    gc_invocations: int = 0
    plocks: int = 0
    block_locks: int = 0
    scrubs: int = 0
    relocation_copies: int = 0  # sanitization-driven copies (erSSD/scrSSD)
    sanitize_erases: int = 0    # immediate erases for sanitization (erSSD)
    refreshes: int = 0          # read-disturb refresh rounds
    refresh_copies: int = 0     # pages moved by read refresh

    # ------------------------------------------------------------------
    @property
    def host_ops(self) -> int:
        return self.host_reads + self.host_writes + self.host_trims

    @property
    def waf(self) -> float:
        """Write amplification: flash programs per host page write."""
        if self.host_writes == 0:
            return 0.0
        return self.flash_programs / self.host_writes

    def iops(self, elapsed_us: float) -> float:
        """Host I/O operations per second for the given elapsed time."""
        if elapsed_us <= 0.0:
            return 0.0
        return self.host_ops / (elapsed_us / 1e6)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        return {
            "host_reads": self.host_reads,
            "host_writes": self.host_writes,
            "host_trims": self.host_trims,
            "flash_reads": self.flash_reads,
            "flash_programs": self.flash_programs,
            "flash_erases": self.flash_erases,
            "gc_copies": self.gc_copies,
            "gc_invocations": self.gc_invocations,
            "plocks": self.plocks,
            "block_locks": self.block_locks,
            "scrubs": self.scrubs,
            "relocation_copies": self.relocation_copies,
            "sanitize_erases": self.sanitize_erases,
            "refreshes": self.refreshes,
            "refresh_copies": self.refresh_copies,
            "waf": self.waf,
        }


@dataclass
class RunResult:
    """Outcome of replaying one workload on one SSD configuration."""

    name: str
    stats: DeviceStats
    elapsed_us: float
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def iops(self) -> float:
        return self.stats.iops(self.elapsed_us)

    @property
    def waf(self) -> float:
        return self.stats.waf

    def normalized_iops(self, baseline: "RunResult") -> float:
        if baseline.iops == 0.0:
            raise ValueError("baseline has zero IOPS")
        return self.iops / baseline.iops

    def normalized_waf(self, baseline: "RunResult") -> float:
        if baseline.waf == 0.0:
            raise ValueError("baseline has zero WAF")
        return self.waf / baseline.waf
