"""Per-request device-work accounting (sanitization tail analysis).

Average IOPS hides the paper's most user-visible difference between
sanitization techniques: *tail behaviour*.  On erSSD a single secured
overwrite can trigger a whole-block relocation storm; on secSSD it adds
one 100-us pLock.  The work log records, per host request, how much
device busy-time the request added across all chips and channels --
i.e., the amount of flash work the request caused, including any GC or
sanitization it triggered -- and reports percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ssd.request import RequestOp
from repro.telemetry.histogram import percentile as _nearest_rank  # lint: disable=SIM14 -- pure math helper, shared to keep one percentile definition


@dataclass
class WorkLog:
    """Per-request work samples, grouped by request type."""

    samples: dict[RequestOp, list[float]] = field(
        default_factory=lambda: {op: [] for op in RequestOp}
    )

    def record(self, op: RequestOp, work_us: float) -> None:
        self.samples[op].append(work_us)

    def count(self, op: RequestOp | None = None) -> int:
        if op is not None:
            return len(self.samples[op])
        return sum(len(v) for v in self.samples.values())

    # ------------------------------------------------------------------
    def percentile(self, q: float, op: RequestOp | None = None) -> float:
        """q-th percentile (0-100) of per-request work in microseconds.

        Nearest-rank, via the one shared implementation in
        :mod:`repro.telemetry.histogram`.
        """
        return _nearest_rank(sorted(self._select(op)), q)

    def mean(self, op: RequestOp | None = None) -> float:
        data = self._select(op)
        if not data:
            return 0.0
        return sum(data) / len(data)

    def max(self, op: RequestOp | None = None) -> float:
        data = self._select(op)
        return max(data, default=0.0)

    def summary(self, op: RequestOp | None = None) -> dict[str, float]:
        return {
            "count": float(self.count(op)),
            "mean_us": self.mean(op),
            "p50_us": self.percentile(50, op),
            "p99_us": self.percentile(99, op),
            "max_us": self.max(op),
        }

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, list[float]]:
        """Checkpoint payload, keyed by the op's string value."""
        return {op.value: list(values) for op, values in self.samples.items()}

    def load_state_dict(self, state: dict[str, list[float]]) -> None:
        self.samples = {op: list(state.get(op.value, [])) for op in RequestOp}

    # ------------------------------------------------------------------
    def _select(self, op: RequestOp | None) -> list[float]:
        if op is not None:
            return self.samples[op]
        merged: list[float] = []
        for values in self.samples.values():
            merged.extend(values)
        return merged
