"""SSD device model: topology, timing, requests, and run statistics."""

from repro.ssd.config import SSDConfig, paper_config, scaled_config
from repro.ssd.device import SSD, make_ssd
from repro.ssd.request import (
    IoRequest,
    RequestFlags,
    RequestOp,
    read,
    trim,
    write,
)
from repro.ssd.stats import DeviceStats, RunResult
from repro.ssd.timing import TimingModel

__all__ = [
    "DeviceStats",
    "IoRequest",
    "RequestFlags",
    "RequestOp",
    "RunResult",
    "SSD",
    "SSDConfig",
    "TimingModel",
    "make_ssd",
    "paper_config",
    "read",
    "scaled_config",
    "trim",
    "write",
]
