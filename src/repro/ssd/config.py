"""SSD configuration -- the Section 7 device and scaled test variants.

The paper's SecureSSD: two channels, four 3D TLC chips per channel; each
chip 428 blocks of 576 16-KiB pages (192 wordlines x 3), 32 GiB total,
with timing tREAD=80us / tPROG=700us / tBERS=3.5ms / tpLock=100us /
tbLock=300us.

:func:`paper_config` reproduces that device.  :func:`scaled_config`
shrinks capacity while keeping the topology, page size, and in-block
structure identical, which preserves GC and lock dynamics at a fraction
of the simulation cost -- the same trick the paper itself uses ("we limit
its SSD capacity to 32 GiB for fast evaluation").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flash import constants
from repro.flash.geometry import CellType, Geometry


@dataclass(frozen=True)
class SSDConfig:
    """Full device description."""

    n_channels: int = 2
    chips_per_channel: int = 4
    geometry: Geometry = field(default_factory=Geometry)
    #: fraction of physical capacity hidden from the host (overprovision).
    overprovision: float = 0.125
    #: GC starts when a chip's free+pending blocks drop to this count.
    gc_threshold_blocks: int = 3
    #: GC stops once it has reclaimed up to this many free blocks.
    gc_target_blocks: int = 5
    #: victim-selection policy (see repro.ftl.gc_policies.GC_POLICIES).
    gc_policy: str = "greedy"
    #: route GC relocations to a separate open block per chip (hot/cold
    #: stream separation); False matches the paper's single-stream FTL.
    separate_gc_stream: bool = False
    #: host reads of one block before its data is refreshed (relocated)
    #: to cap read disturbance; None disables read refresh.  Real TLC
    #: parts refresh around 100K reads; scale with the device.
    read_refresh_threshold: int | None = None
    #: read attempts (first try + retries) before a read surfaces
    #: UncorrectableError to the caller.
    read_retry_limit: int = 4
    #: extra pLock/bLock pulses the lock manager re-issues (the pulses
    #: are monotonic: a retry re-programs missed flag cells) before it
    #: escalates down the fallback chain.
    lock_retry_limit: int = 2
    #: program status-fails in one block before it is condemned and
    #: retired to the grown-bad table at its next collection; 0 disables
    #: program-failure retirement.
    program_fail_retire_threshold: int = 2
    #: per-block P/E endurance limit: an erase at this count raises
    #: ``WearOutError`` and the FTL scrubs + retires the block (the
    #: grown-bad flow).  None models an ideal, never-wearing device --
    #: the historical default every existing artifact was produced with.
    pe_limit: int | None = None
    #: couple live block wear into the read path: a read's expected RBER
    #: is derived from the owning block's erase count through the shared
    #: StressBucketCache, and reads past the ECC limit fail.  Off by
    #: default so same-seed artifacts stay byte-identical.
    wear_coupling: bool = False
    #: static wear-leveling trigger: when a chip's (max - min) erase-count
    #: delta reaches this, the coldest full block's live data is migrated
    #: so the low-wear block re-enters circulation.  None disables it.
    wear_leveling_threshold: int | None = None
    #: dynamic wear-aware allocation: open the least-worn reusable block
    #: instead of the FIFO head.  Off by default (FIFO is the paper's
    #: FlashBench FTL and the historical byte-identity baseline).
    wear_aware_allocation: bool = False
    t_read_us: float = constants.T_READ_US
    t_prog_us: float = constants.T_PROG_US
    t_erase_us: float = constants.T_BERS_US
    t_plock_us: float = constants.T_PLOCK_US
    t_block_lock_us: float = constants.T_BLOCK_LOCK_US
    #: one scrub pulse (reprogram-overwrite of a programmed wordline);
    #: a single ISPP burst like a pLock pulse, hence the shared default
    #: (see the accounting contract in repro/ssd/timing.py).
    t_scrub_us: float = constants.T_PLOCK_US
    t_xfer_us: float = constants.T_XFER_US

    def __post_init__(self) -> None:
        for name in (
            "t_read_us",
            "t_prog_us",
            "t_erase_us",
            "t_plock_us",
            "t_block_lock_us",
            "t_scrub_us",
            "t_xfer_us",
        ):
            value = getattr(self, name)
            if not value > 0.0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if not 0.0 < self.overprovision < 1.0:
            raise ValueError("overprovision must be in (0, 1)")
        if self.gc_threshold_blocks < 1:
            raise ValueError("gc_threshold_blocks must be >= 1")
        if self.gc_target_blocks < self.gc_threshold_blocks:
            raise ValueError("gc_target_blocks must be >= gc_threshold_blocks")
        if self.read_retry_limit < 1:
            raise ValueError("read_retry_limit must be >= 1")
        if self.lock_retry_limit < 0:
            raise ValueError("lock_retry_limit must be >= 0")
        if self.program_fail_retire_threshold < 0:
            raise ValueError("program_fail_retire_threshold must be >= 0")
        if self.pe_limit is not None and self.pe_limit < 1:
            raise ValueError("pe_limit must be >= 1 (or None for no limit)")
        if (
            self.wear_leveling_threshold is not None
            and self.wear_leveling_threshold < 1
        ):
            raise ValueError(
                "wear_leveling_threshold must be >= 1 (or None to disable)"
            )
        min_blocks = self.gc_target_blocks + 2
        if self.geometry.blocks_per_chip <= min_blocks:
            raise ValueError(
                f"need more than {min_blocks} blocks per chip for GC headroom"
            )
        from repro.ftl.gc_policies import GC_POLICIES

        if self.gc_policy not in GC_POLICIES:
            raise ValueError(
                f"unknown gc_policy {self.gc_policy!r}; "
                f"choose from {sorted(GC_POLICIES)}"
            )

    # ------------------------------------------------------------------
    @property
    def n_chips(self) -> int:
        return self.n_channels * self.chips_per_channel

    @property
    def physical_pages(self) -> int:
        return self.n_chips * self.geometry.pages_per_chip

    @property
    def logical_pages(self) -> int:
        """Host-visible pages after overprovisioning."""
        return int(self.physical_pages * (1.0 - self.overprovision))

    @property
    def logical_bytes(self) -> int:
        return self.logical_pages * self.geometry.page_size_bytes

    @property
    def physical_bytes(self) -> int:
        return self.physical_pages * self.geometry.page_size_bytes


def paper_config() -> SSDConfig:
    """The exact Section-7 SecureSSD configuration (32 GiB)."""
    return SSDConfig(
        n_channels=2,
        chips_per_channel=4,
        geometry=Geometry(
            blocks_per_chip=428,
            wordlines_per_block=192,
            cell_type=CellType.TLC,
            page_size_bytes=16 * 1024,
        ),
    )


def scaled_config(
    blocks_per_chip: int = 56,
    wordlines_per_block: int = 32,
    n_channels: int = 2,
    chips_per_channel: int = 4,
    pe_limit: int | None = None,
    wear_coupling: bool = False,
    wear_leveling_threshold: int | None = None,
    wear_aware_allocation: bool = False,
) -> SSDConfig:
    """A capacity-scaled device with the paper's topology and timing.

    Default: 2x4 chips x 56 blocks x 96 pages x 16 KiB = ~656 MiB, small
    enough for fast trace replay yet large enough for steady-state GC.
    The endurance/wear knobs default off, matching the fresh-forever
    device every pre-aging artifact was produced with.
    """
    return SSDConfig(
        n_channels=n_channels,
        chips_per_channel=chips_per_channel,
        geometry=Geometry(
            blocks_per_chip=blocks_per_chip,
            wordlines_per_block=wordlines_per_block,
            cell_type=CellType.TLC,
            page_size_bytes=16 * 1024,
        ),
        pe_limit=pe_limit,
        wear_coupling=wear_coupling,
        wear_leveling_threshold=wear_leveling_threshold,
        wear_aware_allocation=wear_aware_allocation,
    )
