"""SSD device facade: configuration + FTL variant + trace replay.

The device is what the host stack and the benchmarks talk to.  It wires
an :class:`~repro.ssd.config.SSDConfig` to one of the FTL variants,
replays request streams, and reports the Figure-14 metrics
(:class:`~repro.ssd.stats.RunResult`).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.faults import FaultPlan
from repro.ftl import FTL_VARIANTS
from repro.ftl.base import PageMappedFtl
from repro.ftl.observer import FtlObserver
from repro.ssd.config import SSDConfig
from repro.ssd.request import IoRequest
from repro.ssd.stats import RunResult
from repro.ssd.worklog import WorkLog
from repro.telemetry import Telemetry  # lint: disable=SIM14 -- cross-cutting observability seam, zero-cost when disabled
from repro.telemetry.bridge import TelemetryObserver  # lint: disable=SIM14 -- bridge adapts the observer seam; no behavioural dependency


class SSD:
    """One simulated SSD instance."""

    def __init__(
        self,
        config: SSDConfig,
        variant: str = "baseline",
        observer: FtlObserver | None = None,
        seed: int = 0,
        ftl_class: type[PageMappedFtl] | None = None,
        checked: bool | None = None,
        check_interval: int | None = None,
        faults: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        """Build a device running ``variant``'s FTL.

        ``ftl_class`` overrides the registry lookup -- used by ablation
        studies that subclass an FTL with tweaked policy constants.

        ``checked=True`` attaches the runtime invariant sanitizer
        (:mod:`repro.checkers.sanitizer`) to the FTL; ``None`` defers to
        the process-wide default (``REPRO_CHECKED`` /
        :func:`repro.checkers.sanitizer.set_default_checked`).
        ``check_interval`` sets how many host batches pass between full
        O(device) verification passes.

        ``faults`` attaches a seeded :class:`~repro.faults.FaultInjector`
        built from the plan to every chip of the device (see
        :mod:`repro.faults`); ``None`` keeps the chips perfect.

        ``telemetry`` attaches a :class:`~repro.telemetry.Telemetry`
        session: a :class:`~repro.telemetry.bridge.TelemetryObserver`
        is chained in front of ``observer`` (so the sanitizer, when
        ``checked``, still audits the same stream), the trace clock
        defaults to the FTL's occupancy clock, the fault injector gains
        an event tap, and :meth:`result` snapshots the metrics registry
        into ``RunResult.telemetry``.  ``None`` (the default) keeps the
        untraced hot path unchanged.
        """
        if ftl_class is None:
            if variant not in FTL_VARIANTS:
                raise ValueError(
                    f"unknown variant {variant!r}; choose from {sorted(FTL_VARIANTS)}"
                )
            ftl_class = FTL_VARIANTS[variant]
            self.variant = variant
        else:
            self.variant = ftl_class.name
        self.config = config
        #: the run's telemetry session, or None for an untraced run.
        self.telemetry: Telemetry | None = None
        if telemetry is not None and telemetry.enabled:
            self.telemetry = telemetry
            # chain the bridge in front of the caller's observer; the
            # FTL's sanitizer (when checked) wraps in front of both.
            observer = TelemetryObserver(telemetry, inner=observer)
        self.ftl: PageMappedFtl = ftl_class(
            config,
            observer=observer,
            seed=seed,
            checked=checked,
            check_interval=check_interval,
            faults=faults,
            telemetry=self.telemetry,
        )
        if self.telemetry is not None:
            if self.telemetry.bus.clock is None:
                # default trace clock: the open-loop occupancy model's
                # elapsed time (the sim engine overrides this with the
                # event-heap clock when it drives the run).
                self.telemetry.bus.clock = lambda: self.ftl.timing.elapsed_us
            if self.ftl.fault_injector is not None:
                self.ftl.fault_injector.bus = self.telemetry.bus
        #: per-request device-work log (sanitization-tail analysis).
        self.work_log = WorkLog()

    # ------------------------------------------------------------------
    @property
    def logical_pages(self) -> int:
        return self.config.logical_pages

    @property
    def stats(self):
        return self.ftl.stats

    @property
    def elapsed_us(self) -> float:
        return self.ftl.elapsed_us()

    def instrument_timing(self, timing) -> None:
        """Swap the FTL's timing model for an instrumented replacement.

        The :mod:`repro.sim` engine installs a recording
        :class:`~repro.ssd.timing.TimingModel` subclass so that every
        flash operation a request triggers is captured for event-driven
        service simulation.  The swap must happen before any request is
        replayed (both models start from an all-idle device) and the
        replacement must describe the same topology.
        """
        current = self.ftl.timing
        if current.total_work_us > 0.0:
            raise RuntimeError(
                "cannot instrument timing after requests were replayed"
            )
        if (timing.n_channels, timing.chips_per_channel) != (
            current.n_channels,
            current.chips_per_channel,
        ):
            raise ValueError("replacement timing model has a different topology")
        self.ftl.timing = timing

    def submit(self, request: IoRequest) -> None:
        before = self._busy_total()
        self.ftl.submit(request)
        work_us = self._busy_total() - before
        self.work_log.record(request.op, work_us)
        if self.telemetry is not None:
            self.telemetry.metrics.histogram(
                f"request_work_us.{request.op.value}"
            ).observe(work_us)

    def _busy_total(self) -> float:
        return self.ftl.timing.total_work_us

    def replay(self, requests: Iterable[IoRequest]) -> RunResult:
        """Replay a request stream and return the run metrics."""
        for request in requests:
            self.ftl.submit(request)
        return self.result()

    def result(self) -> RunResult:
        return RunResult(
            name=self.variant,
            stats=self.ftl.stats,
            elapsed_us=self.ftl.elapsed_us(),
            extra={
                "logical_time": float(self.ftl.logical_time),
                "chip_utilization_max": max(
                    self.ftl.timing.utilization(), default=0.0
                ),
            },
            telemetry=(
                self.telemetry.snapshot() if self.telemetry is not None else {}
            ),
        )

    # ------------------------------------------------------------------
    def raw_dump(self) -> dict[int, object]:
        """Forensic attacker view of all programmed, unlocked data."""
        return self.ftl.raw_device_dump()


def make_ssd(
    config: SSDConfig,
    variant: str,
    observer: FtlObserver | None = None,
    seed: int = 0,
    checked: bool | None = None,
    faults: FaultPlan | None = None,
    telemetry: Telemetry | None = None,
) -> SSD:
    """Convenience constructor used by benchmarks and examples."""
    return SSD(
        config,
        variant=variant,
        observer=observer,
        seed=seed,
        checked=checked,
        faults=faults,
        telemetry=telemetry,
    )
