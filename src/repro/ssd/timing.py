"""Open-loop timing model for a multi-channel, multi-chip SSD.

The paper evaluates IOPS on FlashBench, an emulation platform where the
per-operation latencies (tREAD/tPROG/tBERS/tpLock/tbLock) and the
channel/chip topology determine throughput.  We reproduce that with a
resource-occupancy model:

* each **chip** can run one cell operation at a time (read sense,
  program, erase, pLock, bLock);
* each **channel** can transfer one page at a time (reads transfer after
  the sense; programs transfer before the cell operation);
* host requests arrive open-loop (the benchmark queue is always full,
  which is how IOPS is measured), so device throughput is limited purely
  by resource occupancy;
* elapsed time for a replay is the completion time of the last operation,
  and IOPS = host operations / elapsed seconds.

This captures exactly the effects the paper reports: erSSD's relocation
storms serialize on chips; pLock costs hide behind other chips' work
except when a workload (DBServer) concentrates small updates; bLock
replaces trains of pLocks on the same chip.

**Accounting contract** (the closed-loop engine in :mod:`repro.sim`
cross-checks against it, so it is normative):

* ``total_work_us`` is the sum of *raw operation durations* scheduled on
  any resource -- cell-op time on chips plus transfer time on channels --
  with no queueing or idle gaps.  It splits exactly into
  ``cell_work_us`` (sense/program/erase/lock/scrub occupancy on chips)
  and ``xfer_work_us`` (page movement occupancy on channels):
  ``total_work_us == cell_work_us + xfer_work_us`` always holds.
* ``elapsed_us`` is the completion time of the last scheduled operation,
  i.e. the open-loop makespan.  Under a saturating closed-loop workload
  the :class:`repro.sim.engine.QueueingEngine` must reproduce this
  makespan (and therefore IOPS) within a small tolerance -- that is the
  open-loop vs closed-loop agreement contract of DESIGN.md section 3e.
* ``t_scrub_us`` is the duration of one *scrub pulse*: a reprogram-style
  overwrite of an already-programmed wordline, used by scrSSD's
  sanitization pass and by grown-bad-block retirement.  One scrub pulse
  is a single ISPP program burst just like a pLock pulse, so it defaults
  to ``tpLock`` (Section 7 evaluates both at 100 us); it is configurable
  separately through :class:`repro.ssd.config.SSDConfig.t_scrub_us`
  because real scrub pulses may use a coarser step voltage.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.flash import constants


@dataclass
class TimingModel:
    """Per-chip and per-channel busy-until bookkeeping."""

    n_channels: int
    chips_per_channel: int
    t_read_us: float = constants.T_READ_US
    t_prog_us: float = constants.T_PROG_US
    t_erase_us: float = constants.T_BERS_US
    t_plock_us: float = constants.T_PLOCK_US
    t_block_lock_us: float = constants.T_BLOCK_LOCK_US
    t_scrub_us: float = constants.T_PLOCK_US  # one-shot scrub pulse (Sec. 7)
    t_xfer_us: float = constants.T_XFER_US
    chip_busy: list[float] = field(init=False)
    channel_busy: list[float] = field(init=False)
    #: total device work scheduled (pure operation durations, no idle);
    #: always equals ``cell_work_us + xfer_work_us``.
    total_work_us: float = field(init=False, default=0.0)
    #: chip occupancy scheduled (sense/program/erase/lock/scrub time).
    cell_work_us: float = field(init=False, default=0.0)
    #: channel occupancy scheduled (page transfer time).
    xfer_work_us: float = field(init=False, default=0.0)
    #: nesting depth of :meth:`sanitize_region` -- positive while the
    #: FTL is doing sanitization-driven work (relocations, sanitize
    #: erases, lock fallbacks), so instrumented timing models can
    #: attribute the flash ops they capture.
    _sanitize_depth: int = field(init=False, default=0)

    #: timing fields every instance must hold positive (validation).
    TIMING_FIELDS = (
        "t_read_us",
        "t_prog_us",
        "t_erase_us",
        "t_plock_us",
        "t_block_lock_us",
        "t_scrub_us",
        "t_xfer_us",
    )

    def __post_init__(self) -> None:
        if self.n_channels <= 0 or self.chips_per_channel <= 0:
            raise ValueError("topology dimensions must be positive")
        for name in self.TIMING_FIELDS:
            value = getattr(self, name)
            if not value > 0.0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        self.chip_busy = [0.0] * self.n_chips
        self.channel_busy = [0.0] * self.n_channels

    # ------------------------------------------------------------------
    @property
    def n_chips(self) -> int:
        return self.n_channels * self.chips_per_channel

    def channel_of(self, chip_id: int) -> int:
        self._check_chip(chip_id)
        return chip_id // self.chips_per_channel

    def _check_chip(self, chip_id: int) -> None:
        if not 0 <= chip_id < self.n_chips:
            raise ValueError(f"chip {chip_id} out of range [0, {self.n_chips})")

    # ------------------------------------------------------------------
    @property
    def in_sanitize(self) -> bool:
        """True while the FTL is inside a sanitization scope."""
        return self._sanitize_depth > 0

    @contextmanager
    def sanitize_region(self):
        """Mark a region of FTL work as sanitization-driven.

        The FTL brackets relocate-and-erase passes, scrub passes, and
        lock-fallback paths with this scope; the plain model ignores it
        (timing is unchanged), but :class:`repro.sim.ops.RecordingTiming`
        tags the flash ops captured inside so the closed-loop engine can
        account queued sanitization work separately from host I/O and
        plain GC.  Re-entrant (scopes nest).
        """
        self._sanitize_depth += 1
        try:
            yield
        finally:
            self._sanitize_depth -= 1

    # ------------------------------------------------------------------
    # The scheduling methods below run once per captured flash op
    # (hundreds of thousands per benchmark run), so they inline the
    # bounds check and the work accounting instead of paying extra
    # function calls per op.  The accounting order is fixed (cell, then
    # xfer, then total) -- float addition is order-sensitive and the
    # totals feed byte-identity contracts.
    #
    # KEEP IN LOCKSTEP with the inlined copies in
    # :class:`repro.sim.ops.RecordingTiming`; the `# lockstep:` regions
    # below make SIM11 verify the pairing on every lint run.

    def read(self, chip_id: int) -> float:
        """Schedule a page read: chip sense, then channel transfer out."""
        # lockstep: begin timing-read
        chip_busy = self.chip_busy
        if not 0 <= chip_id < len(chip_busy):
            self._check_chip(chip_id)
        ch = chip_id // self.chips_per_channel
        sense_end = chip_busy[chip_id] + self.t_read_us
        chip_busy[chip_id] = sense_end
        chan_free = self.channel_busy[ch]
        xfer_start = sense_end if sense_end > chan_free else chan_free
        end = xfer_start + self.t_xfer_us
        self.channel_busy[ch] = end
        self.cell_work_us += self.t_read_us
        self.xfer_work_us += self.t_xfer_us
        self.total_work_us += self.t_read_us + self.t_xfer_us
        return end
        # lockstep: end timing-read

    def program(self, chip_id: int) -> float:
        """Schedule a page program: channel transfer in, then cell op."""
        # lockstep: begin timing-program
        chip_busy = self.chip_busy
        if not 0 <= chip_id < len(chip_busy):
            self._check_chip(chip_id)
        ch = chip_id // self.chips_per_channel
        # busy times are monotone from 0.0, so the channel is its own
        # max against zero
        xfer_end = self.channel_busy[ch] + self.t_xfer_us
        self.channel_busy[ch] = xfer_end
        chip_free = chip_busy[chip_id]
        start = chip_free if chip_free > xfer_end else xfer_end
        end = start + self.t_prog_us
        chip_busy[chip_id] = end
        self.cell_work_us += self.t_prog_us
        self.xfer_work_us += self.t_xfer_us
        self.total_work_us += self.t_prog_us + self.t_xfer_us
        return end
        # lockstep: end timing-program

    def copy(self, src_chip: int, dst_chip: int) -> float:
        """Schedule a page copy (GC move): read on src, program on dst."""
        self.read(src_chip)
        return self.program(dst_chip)

    def _cell_only(self, chip_id: int, duration_us: float) -> float:
        """Schedule a cell-only op (no channel transfer)."""
        chip_busy = self.chip_busy
        if not 0 <= chip_id < len(chip_busy):
            self._check_chip(chip_id)
        chip_busy[chip_id] += duration_us
        self.cell_work_us += duration_us
        self.total_work_us += duration_us
        return chip_busy[chip_id]

    def erase(self, chip_id: int) -> float:
        return self._cell_only(chip_id, self.t_erase_us)

    def plock(self, chip_id: int) -> float:
        return self._cell_only(chip_id, self.t_plock_us)

    def block_lock(self, chip_id: int) -> float:
        return self._cell_only(chip_id, self.t_block_lock_us)

    def scrub(self, chip_id: int) -> float:
        return self._cell_only(chip_id, self.t_scrub_us)

    # ------------------------------------------------------------------
    @property
    def elapsed_us(self) -> float:
        """Completion time of the last scheduled operation."""
        return max(max(self.chip_busy, default=0.0), max(self.channel_busy, default=0.0))

    def utilization(self) -> list[float]:
        """Per-chip busy fraction relative to the overall elapsed time."""
        total = self.elapsed_us
        if total <= 0.0:
            return [0.0] * self.n_chips
        return [b / total for b in self.chip_busy]

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """Checkpoint payload: busy arrays + work accumulators, plus the
        per-op durations for validation only (a restore target whose
        timings differ was built from different parameters -- e.g. a
        cryptSSD checkpoint loaded into a baseline device)."""
        return {
            "chip_busy": list(self.chip_busy),
            "channel_busy": list(self.channel_busy),
            "total_work_us": self.total_work_us,
            "cell_work_us": self.cell_work_us,
            "xfer_work_us": self.xfer_work_us,
            "timings": {name: getattr(self, name) for name in self.TIMING_FIELDS},
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        if len(state["chip_busy"]) != len(self.chip_busy) or len(
            state["channel_busy"]
        ) != len(self.channel_busy):
            raise ValueError("timing checkpoint does not match topology")
        for name in self.TIMING_FIELDS:
            if state["timings"][name] != getattr(self, name):
                raise ValueError(
                    f"timing checkpoint {name}={state['timings'][name]!r} does"
                    f" not match the configured {getattr(self, name)!r}"
                )
        self.chip_busy = list(state["chip_busy"])
        self.channel_busy = list(state["channel_busy"])
        self.total_work_us = state["total_work_us"]
        self.cell_work_us = state["cell_work_us"]
        self.xfer_work_us = state["xfer_work_us"]
