"""File-level trace records and the trace replayer.

Workload generators emit :class:`TraceOp` streams (create / write /
append / read / delete on named files); the replayer applies them to a
:class:`~repro.host.filesystem.FileSystem`, which turns them into block
I/O against the SSD under test.  Keeping the trace file-level (rather
than block-level) mirrors the paper's methodology: the same file-level
activity is replayed against every SSD variant, and each variant's FTL
behaviour determines the physical outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable
from enum import Enum

from repro.host.fileapi import OpenFlags
from repro.host.filesystem import FileSystem


class TraceKind(Enum):
    CREATE = "create"
    WRITE = "write"     # in-place write at offset
    APPEND = "append"
    READ = "read"
    DELETE = "delete"


@dataclass(frozen=True)
class TraceOp:
    """One file-level operation."""

    kind: TraceKind
    name: str
    offset_pages: int = 0
    npages: int = 0
    insec: bool = False

    def __post_init__(self) -> None:
        if self.npages < 0 or self.offset_pages < 0:
            raise ValueError("offset/npages must be non-negative")


def create(name: str, insec: bool = False) -> TraceOp:
    return TraceOp(TraceKind.CREATE, name, insec=insec)


def write(name: str, offset_pages: int, npages: int) -> TraceOp:
    return TraceOp(TraceKind.WRITE, name, offset_pages, npages)


def append(name: str, npages: int) -> TraceOp:
    return TraceOp(TraceKind.APPEND, name, 0, npages)


def read(name: str, offset_pages: int = 0, npages: int = 0) -> TraceOp:
    return TraceOp(TraceKind.READ, name, offset_pages, npages)


def delete(name: str) -> TraceOp:
    return TraceOp(TraceKind.DELETE, name)


@dataclass
class ReplayReport:
    """Counters from one trace replay."""

    ops: int = 0
    creates: int = 0
    writes: int = 0
    reads: int = 0
    deletes: int = 0
    pages_written: int = 0
    pages_read: int = 0


class TraceReplayer:
    """Applies a TraceOp stream to a file system."""

    def __init__(self, fs: FileSystem) -> None:
        self.fs = fs

    def replay(self, ops: Iterable[TraceOp]) -> ReplayReport:
        report = ReplayReport()
        for op in ops:
            self.apply(op)
            report.ops += 1
            if op.kind is TraceKind.CREATE:
                report.creates += 1
            elif op.kind in (TraceKind.WRITE, TraceKind.APPEND):
                report.writes += 1
                report.pages_written += op.npages
            elif op.kind is TraceKind.READ:
                report.reads += 1
                report.pages_read += op.npages
            elif op.kind is TraceKind.DELETE:
                report.deletes += 1
        return report

    def apply(self, op: TraceOp) -> None:
        if op.kind is TraceKind.CREATE:
            flags = OpenFlags.O_INSEC if op.insec else OpenFlags.NONE
            self.fs.create(op.name, flags)
        elif op.kind is TraceKind.WRITE:
            self.fs.write(op.name, op.offset_pages, op.npages)
        elif op.kind is TraceKind.APPEND:
            self.fs.append(op.name, op.npages)
        elif op.kind is TraceKind.READ:
            self.fs.read(op.name, op.offset_pages, op.npages or None)
        elif op.kind is TraceKind.DELETE:
            self.fs.delete(op.name)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown op kind {op.kind!r}")
