"""Host stack: file API, file system, trace replay, VerTrace profiler."""

from repro.host.fileapi import (
    FileInfo,
    FileSystemError,
    OpenFlags,
    OutOfSpaceError,
)
from repro.host.filesystem import FileSystem
from repro.host.trace import (
    ReplayReport,
    TraceKind,
    TraceOp,
    TraceReplayer,
    append,
    create,
    delete,
    read,
    write,
)
from repro.host.tracefile import load_trace, save_trace
from repro.host.vertrace import FileVersionState, TimeplotSample, VerTrace

__all__ = [
    "FileInfo",
    "FileSystem",
    "FileSystemError",
    "FileVersionState",
    "OpenFlags",
    "OutOfSpaceError",
    "ReplayReport",
    "TimeplotSample",
    "TraceKind",
    "TraceOp",
    "TraceReplayer",
    "VerTrace",
    "append",
    "create",
    "delete",
    "load_trace",
    "read",
    "save_trace",
    "write",
]
