"""VerTrace: the data-versioning profiler of Section 3.

VerTrace annotates every physical page with the file it belongs to and
watches the FTL's page lifecycle to answer the paper's two questions:

* **How many stale versions of a file exist?**  Captured by the version
  amplification factor ``VAF(f) = max_t N_invalid(f,t) / max_t
  N_valid(f,t)``.
* **For how long?**  Captured by ``Tinsecure(f)``, the total logical time
  during which the file has at least one invalid (recoverable) physical
  page, normalized to the writes needed to fill the device once.

Logical time advances by one tick per 4-KiB host write (Section 3's
clock).  Files are classified *uni-version* (UV) until the host
overwrites or deletes them, which reclassifies them *multi-version*
(MV).  Pages destroyed by sanitization (lock/scrub/erase) stop counting
as invalid -- on a sanitizing SSD the profiler therefore reports the
post-sanitization exposure, which is how the C1/C2 guarantees are
checked end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FileVersionState:
    """Live profiling state for one file."""

    fid: int
    valid: set[int] = field(default_factory=set)
    invalid: set[int] = field(default_factory=set)
    max_valid: int = 0
    max_invalid: int = 0
    multi_version: bool = False
    insecure_since: int | None = None
    insecure_ticks: int = 0

    def observe_extrema(self) -> None:
        if len(self.valid) > self.max_valid:
            self.max_valid = len(self.valid)
        if len(self.invalid) > self.max_invalid:
            self.max_invalid = len(self.invalid)

    def vaf(self) -> float:
        """Version amplification factor (0 when the file never had data)."""
        if self.max_valid == 0:
            return 0.0
        return self.max_invalid / self.max_valid


@dataclass(frozen=True)
class TimeplotSample:
    """One (logical time, valid count, invalid count) sample (Figure 4)."""

    tick: int
    valid: int
    invalid: int


class VerTrace:
    """FTL observer building per-file versioning metrics.

    Parameters
    ----------
    capacity_ticks:
        Logical ticks needed to fill the device once (logical pages x
        page size / 4 KiB); used to normalize ``Tinsecure``.
    timeplot_files:
        Optional set of file ids whose (valid, invalid) trajectories are
        recorded for Figure-4-style plots.
    """

    def __init__(
        self,
        capacity_ticks: int,
        pages_per_block: int,
        timeplot_files: set[int] | None = None,
        track_all: bool = False,
    ) -> None:
        if capacity_ticks <= 0:
            raise ValueError("capacity_ticks must be positive")
        if pages_per_block <= 0:
            raise ValueError("pages_per_block must be positive")
        self.capacity_ticks = capacity_ticks
        self.pages_per_block = pages_per_block
        self.track_all = track_all
        self.now = 0
        self._files: dict[int, FileVersionState] = {}
        self._owner: dict[int, int] = {}  # gppa -> fid
        #: files touched since the last tick; their extrema/timeplots are
        #: sampled at tick boundaries so that intra-request transients
        #: (e.g. invalidate-then-lock within one write) do not register.
        self._dirty: set[int] = set()
        self._timeplot_files = set(timeplot_files or ())
        self._timeplots: dict[int, list[TimeplotSample]] = {
            fid: [] for fid in self._timeplot_files
        }

    # ------------------------------------------------------------------
    @classmethod
    def for_config(
        cls,
        config,
        timeplot_files: set[int] | None = None,
        track_all: bool = False,
    ) -> "VerTrace":
        """Build a profiler sized for an :class:`~repro.ssd.config.SSDConfig`."""
        from repro.flash.constants import LOGICAL_TIME_WRITE_BYTES

        ticks = config.logical_pages * (
            config.geometry.page_size_bytes // LOGICAL_TIME_WRITE_BYTES
        )
        return cls(
            capacity_ticks=ticks,
            pages_per_block=config.geometry.pages_per_block,
            timeplot_files=timeplot_files,
            track_all=track_all,
        )

    # ------------------------------------------------------------------
    # FtlObserver interface
    # ------------------------------------------------------------------
    def on_program(self, gppa: int, lpa: int, tag: object, secure: bool) -> None:
        if not isinstance(tag, int):
            return  # untagged traffic (e.g. scrub pads) is not file data
        state = self._state(tag)
        state.valid.add(gppa)
        self._owner[gppa] = tag
        self._dirty.add(state.fid)

    def on_invalidate(self, gppa: int, lpa: int, reason: str) -> None:
        fid = self._owner.get(gppa)
        if fid is None:
            return
        state = self._files[fid]
        state.valid.discard(gppa)
        state.invalid.add(gppa)
        if reason in ("host-update", "host-trim"):
            state.multi_version = True
        if state.insecure_since is None and state.invalid:
            state.insecure_since = self.now
        self._dirty.add(fid)

    def on_sanitize(self, gppa: int, method: str) -> None:
        self._drop_invalid(gppa)

    def on_erase(self, global_block: int) -> None:
        """Erase physically destroys every page of the block."""
        base = global_block * self.pages_per_block
        for gppa in range(base, base + self.pages_per_block):
            self._drop_invalid(gppa)

    def on_logical_tick(self, ticks: int) -> None:
        self._flush_dirty()
        self.now += ticks

    # ------------------------------------------------------------------
    def _flush_dirty(self) -> None:
        """Sample extrema/timeplots of files touched since the last tick."""
        for fid in self._dirty:
            state = self._files[fid]
            state.observe_extrema()
            self._sample(state)
        self._dirty.clear()

    def _drop_invalid(self, gppa: int) -> None:
        fid = self._owner.pop(gppa, None)
        if fid is None:
            return
        state = self._files[fid]
        state.valid.discard(gppa)
        state.invalid.discard(gppa)
        if not state.invalid and state.insecure_since is not None:
            state.insecure_ticks += self.now - state.insecure_since
            state.insecure_since = None
        self._dirty.add(fid)

    def _state(self, fid: int) -> FileVersionState:
        state = self._files.get(fid)
        if state is None:
            state = FileVersionState(fid)
            self._files[fid] = state
        return state

    def _sample(self, state: FileVersionState) -> None:
        if self.track_all or state.fid in self._timeplot_files:
            self._timeplots.setdefault(state.fid, []).append(
                TimeplotSample(self.now, len(state.valid), len(state.invalid))
            )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush pending samples and open insecure intervals."""
        self._flush_dirty()
        for state in self._files.values():
            if state.insecure_since is not None:
                state.insecure_ticks += self.now - state.insecure_since
                state.insecure_since = None

    def track_timeplot(self, fid: int) -> None:
        self._timeplot_files.add(fid)
        self._timeplots.setdefault(fid, [])

    def timeplot(self, fid: int) -> list[TimeplotSample]:
        return self._timeplots[fid]

    def file_state(self, fid: int) -> FileVersionState:
        return self._files[fid]

    def files(self) -> list[FileVersionState]:
        """All profiled files (both classes)."""
        return list(self._files.values())

    def vaf(self, fid: int) -> float:
        return self._files[fid].vaf()

    def t_insecure(self, fid: int) -> float:
        """Normalized insecure time (1.0 == one full device of writes)."""
        state = self._files[fid]
        open_ticks = (
            self.now - state.insecure_since
            if state.insecure_since is not None
            else 0
        )
        return (state.insecure_ticks + open_ticks) / self.capacity_ticks

    def summarize(self) -> dict[str, dict[str, float]]:
        """Table-1 aggregates: avg/max VAF and Tinsecure per file class."""
        out: dict[str, dict[str, float]] = {}
        for cls_name, is_mv in (("uv", False), ("mv", True)):
            files = [
                s
                for s in self._files.values()
                if s.multi_version == is_mv and s.max_valid > 0
            ]
            if not files:
                out[cls_name] = {
                    "count": 0.0,
                    "vaf_avg": 0.0,
                    "vaf_max": 0.0,
                    "tinsec_avg": 0.0,
                    "tinsec_max": 0.0,
                }
                continue
            vafs = [s.vaf() for s in files]
            tins = [self.t_insecure(s.fid) for s in files]
            out[cls_name] = {
                "count": float(len(files)),
                "vaf_avg": sum(vafs) / len(vafs),
                "vaf_max": max(vafs),
                "tinsec_avg": sum(tins) / len(tins),
                "tinsec_max": max(tins),
            }
        return out
