"""Trace persistence: save/load file-level traces as JSON lines.

Lets a generated workload trace be captured once and replayed later (or
shipped alongside results), the way the paper replays its fixed Mobile
trace against every SSD variant.  One JSON object per line::

    {"kind": "append", "name": "img-0001", "offset": 0, "npages": 32,
     "insec": false}

Round-tripping preserves the trace exactly.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.host.trace import TraceKind, TraceOp


def op_to_dict(op: TraceOp) -> dict:
    return {
        "kind": op.kind.value,
        "name": op.name,
        "offset": op.offset_pages,
        "npages": op.npages,
        "insec": op.insec,
    }


def op_from_dict(record: dict) -> TraceOp:
    try:
        kind = TraceKind(record["kind"])
    except (KeyError, ValueError) as exc:
        raise ValueError(f"bad trace record: {record!r}") from exc
    return TraceOp(
        kind=kind,
        name=record["name"],
        offset_pages=int(record.get("offset", 0)),
        npages=int(record.get("npages", 0)),
        insec=bool(record.get("insec", False)),
    )


def save_trace(path: str | Path, ops: Iterable[TraceOp]) -> int:
    """Write a trace to ``path``; returns the number of ops written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for op in ops:
            fh.write(json.dumps(op_to_dict(op)))
            fh.write("\n")
            count += 1
    return count


def load_trace(path: str | Path) -> Iterator[TraceOp]:
    """Stream a trace back from ``path`` (lazily, line by line)."""
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSON") from exc
            yield op_from_dict(record)
