"""Minimal ext4-like file model over the SSD's logical page space.

The paper's host stack is ext4 over a block device; what matters for
every experiment is the *mapping discipline*:

* a file is a set of logical pages (we model page-granular extents);
* an in-place file write re-writes the **same LPAs** (ext4 is not
  copy-on-write), which makes the FTL invalidate the old physical copies
  -- the data-versioning problem of Section 3;
* deleting a file unlinks it and sends **trim** for its LPAs (Section
  2.2), so the FTL learns the pages are dead without erasing anything;
* appends allocate fresh LPAs.

Writes are submitted as one block-I/O request per physically-contiguous
LPA run, tagged with the file id (VerTrace's annotation) and flagged
``REQ_OP_INSEC_WRITE`` for ``O_INSEC`` files.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from repro.host.fileapi import FileInfo, FileSystemError, OpenFlags, OutOfSpaceError
from repro.ssd.device import SSD
from repro.ssd.request import IoRequest, RequestFlags, RequestOp


class FileSystem:
    """Page-granular file layer driving one SSD."""

    def __init__(self, ssd: SSD) -> None:
        self.ssd = ssd
        self._capacity = ssd.logical_pages
        self._free: list[int] = list(range(self._capacity))
        heapq.heapify(self._free)
        self._files: dict[int, FileInfo] = {}
        self._by_name: dict[str, int] = {}
        self._next_fid = 1

    # ------------------------------------------------------------------
    @property
    def capacity_pages(self) -> int:
        return self._capacity

    @property
    def used_pages(self) -> int:
        return self._capacity - len(self._free)

    @property
    def free_pages(self) -> int:
        return len(self._free)

    def files(self) -> list[FileInfo]:
        return [f for f in self._files.values() if not f.deleted]

    def lookup(self, name: str) -> FileInfo:
        fid = self._by_name.get(name)
        if fid is None:
            raise FileSystemError(f"no such file: {name!r}")
        return self._files[fid]

    def exists(self, name: str) -> bool:
        return name in self._by_name

    def file_by_id(self, fid: int) -> FileInfo:
        return self._files[fid]

    # ------------------------------------------------------------------
    def create(self, name: str, flags: OpenFlags = OpenFlags.NONE) -> FileInfo:
        """Create an empty file; fails if the name exists."""
        if name in self._by_name:
            raise FileSystemError(f"file exists: {name!r}")
        info = FileInfo(
            fid=self._next_fid,
            name=name,
            flags=flags,
            created_tick=self.ssd.ftl.logical_time,
        )
        self._next_fid += 1
        self._files[info.fid] = info
        self._by_name[name] = info.fid
        return info

    def write(self, name: str, offset_pages: int, npages: int) -> None:
        """Write ``npages`` at ``offset_pages``, extending if needed.

        Pages inside the current size are overwritten in place (same
        LPAs); pages beyond it get freshly-allocated LPAs.
        """
        if npages <= 0:
            raise ValueError("npages must be positive")
        info = self.lookup(name)
        if offset_pages < 0 or offset_pages > len(info.lpas):
            raise FileSystemError(
                f"sparse write at offset {offset_pages} beyond EOF is unsupported"
            )
        end = offset_pages + npages
        while len(info.lpas) < end:
            info.lpas.append(self._allocate_lpa())
        lpas = info.lpas[offset_pages:end]
        self._submit_runs(RequestOp.WRITE, lpas, info)

    def append(self, name: str, npages: int) -> None:
        """Append fresh pages at EOF."""
        info = self.lookup(name)
        self.write(name, len(info.lpas), npages)

    def read(self, name: str, offset_pages: int = 0, npages: int | None = None) -> None:
        """Read a page range (defaults to the whole file)."""
        info = self.lookup(name)
        if npages is None:
            npages = len(info.lpas) - offset_pages
        if npages <= 0:
            return
        lpas = info.lpas[offset_pages : offset_pages + npages]
        self._submit_runs(RequestOp.READ, lpas, info)

    def delete(self, name: str) -> None:
        """Unlink the file and trim all of its LPAs (Section 2.2)."""
        info = self.lookup(name)
        self._submit_runs(RequestOp.TRIM, info.lpas, info)
        for lpa in info.lpas:
            heapq.heappush(self._free, lpa)
        info.lpas = []
        info.deleted = True
        del self._by_name[name]

    def overwrite_whole(self, name: str) -> None:
        """Rewrite every page of the file in place (update burst)."""
        info = self.lookup(name)
        if info.lpas:
            self.write(name, 0, len(info.lpas))

    # ------------------------------------------------------------------
    def _allocate_lpa(self) -> int:
        if not self._free:
            raise OutOfSpaceError("file system is full")
        return heapq.heappop(self._free)

    def _submit_runs(self, op: RequestOp, lpas: list[int], info: FileInfo) -> None:
        """Submit one request per contiguous LPA run."""
        flags = (
            RequestFlags.NONE if info.secure else RequestFlags.INSEC_WRITE
        )
        for start, count in _contiguous_runs(lpas):
            self.ssd.submit(
                IoRequest(op, start, count, flags=flags, tag=info.fid)
            )


def _contiguous_runs(lpas: list[int]) -> Iterator[tuple[int, int]]:
    """Group a list of LPAs into (start, length) runs."""
    if not lpas:
        return
    start = prev = lpas[0]
    count = 1
    for lpa in lpas[1:]:
        if lpa == prev + 1:
            prev = lpa
            count += 1
            continue
        yield start, count
        start = prev = lpa
        count = 1
    yield start, count
