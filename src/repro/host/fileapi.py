"""Host file-API extensions -- Section 6.

SecureSSD lets applications opt a file *out* of secure handling with a
new open-mode flag ``O_INSEC`` ("the file data can have multiple versions
in the SSD and deletion is not secure"); the file system then tags the
file's block-I/O writes with ``REQ_OP_INSEC_WRITE``.  The default --
no flag -- is secure, so Evanesco-unaware software is protected without
modification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Flag, auto


class OpenFlags(Flag):
    """Open-mode flags relevant to the sanitization contract."""

    NONE = 0
    #: security-insensitive file: multiple stale versions are acceptable.
    O_INSEC = auto()


@dataclass
class FileInfo:
    """File-system metadata for one file."""

    fid: int
    name: str
    flags: OpenFlags = OpenFlags.NONE
    #: LPA of each page of the file, indexed by page offset within file.
    lpas: list[int] = field(default_factory=list)
    created_tick: int = 0
    deleted: bool = False

    @property
    def secure(self) -> bool:
        return not (self.flags & OpenFlags.O_INSEC)

    @property
    def size_pages(self) -> int:
        return len(self.lpas)


class FileSystemError(Exception):
    """File-system-level failure (no space, missing file, ...)."""


class OutOfSpaceError(FileSystemError):
    """The file system has no free logical pages left."""
