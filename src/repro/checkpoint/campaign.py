"""Resumable simulation campaigns built on the checkpoint store.

:func:`run_chunked_simulation` is :func:`repro.sim.runner.
simulate_workload` with the request stream cut into *checkpoint
windows*: after every ``checkpoint_every`` dispatched requests the
engine drains to a quiescent boundary, the full device state is written
as one new generation, and the run continues.  Kill the process at any
point -- between windows, mid-checkpoint-write, mid-window -- and a
``resume=True`` invocation with the same parameters picks the newest
generation that validates *and* passes the restore audit, falls back
generation by generation past anything corrupt, and replays the
remaining windows.

The determinism contract (DESIGN.md section 3i): an interrupted and
resumed campaign produces byte-identical results (stats, latency
percentiles, telemetry) to the same campaign run uninterrupted **at the
same cadence**, because a checkpoint boundary is defined purely by the
request index and every RNG stream, clock, and accumulator round-trips
through the snapshot exactly.  With ``checkpoint_every >= len(stream)``
the single window *is* the historical ``engine.run()``.

The campaign directory carries a ``campaign.json`` fingerprint of every
behaviour-determining parameter; resuming with different parameters
raises :class:`CampaignMismatchError` instead of silently diverging.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.checkers.sanitizer import default_checked, default_interval
from repro.checkpoint.codec import CodecError, canonical_dumps, encode
from repro.checkpoint.device import (
    CheckpointAuditError,
    restore_device,
    snapshot_device,
)
from repro.checkpoint.store import (
    FORMAT_VERSION,
    CheckpointStore,
    CorruptionReport,
)
from repro.faults import FaultPlan
from repro.sim.arrivals import ArrivalProcess, ClosedLoopArrivals
from repro.sim.engine import QueueingEngine
from repro.sim.ops import RecordingTiming
from repro.sim.policies import SchedulingPolicy, policy_by_name
from repro.sim.runner import SimResult, capture_block_trace
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSD
from repro.telemetry import Telemetry

__all__ = [
    "STOP_CONDITIONS",
    "CampaignMismatchError",
    "run_chunked_simulation",
]


class CampaignMismatchError(Exception):
    """Resume parameters disagree with the stored campaign manifest."""


def _first_wearout(ssd: SSD) -> bool:
    return ssd.ftl.stats.worn_out_blocks > 0


#: named early-stop predicates for :func:`run_chunked_simulation`,
#: evaluated only at checkpoint boundaries so serial, sharded, and
#: killed+resumed campaigns all stop at the identical request index.
#: Names (not callables) go into the campaign fingerprint.  The aging
#: campaigns use ``first-wearout`` to halt at first block death --
#: before endurance-limited variants spiral into pool exhaustion.
STOP_CONDITIONS: dict[str, Any] = {
    "first-wearout": _first_wearout,
}


def _fingerprint(
    config: SSDConfig,
    workload: str,
    variant: str,
    seed: int,
    secure_fraction: float,
    write_multiplier: float,
    policy: SchedulingPolicy,
    arrivals: ArrivalProcess,
    checked: bool,
    check_interval: int,
    faults: FaultPlan | None,
    telemetry: bool,
    checkpoint_every: int,
    stop_when: str | None,
) -> dict[str, Any]:
    """Every parameter that determines the request/result byte stream."""
    return {
        "format_version": FORMAT_VERSION,
        "config": asdict(config),
        "workload": workload,
        "variant": variant,
        "seed": seed,
        "secure_fraction": secure_fraction,
        "write_multiplier": write_multiplier,
        "policy": policy.describe(),
        "arrivals": arrivals.describe(),
        "checked": checked,
        "check_interval": check_interval,
        "faults": None if faults is None else faults.to_state(),
        "telemetry": telemetry,
        "checkpoint_every": checkpoint_every,
        "stop_when": stop_when,
    }


def _check_manifest(stored: dict[str, Any], current: dict[str, Any]) -> None:
    if canonical_dumps(encode(stored)) == canonical_dumps(encode(current)):
        return
    diverging = sorted(
        key
        for key in set(stored) | set(current)
        if canonical_dumps(encode(stored.get(key)))
        != canonical_dumps(encode(current.get(key)))
    )
    raise CampaignMismatchError(
        "campaign parameters do not match the checkpoint directory's "
        f"manifest; diverging field(s): {', '.join(diverging) or 'unknown'}"
    )


def run_chunked_simulation(
    config: SSDConfig,
    workload: str,
    variant: str,
    directory: str | Path,
    checkpoint_every: int,
    seed: int = 1,
    secure_fraction: float = 1.0,
    write_multiplier: float = 1.0,
    policy: SchedulingPolicy | str = "fifo",
    arrivals: ArrivalProcess | None = None,
    checked: bool | None = None,
    check_interval: int | None = None,
    faults: FaultPlan | None = None,
    telemetry: Telemetry | None = None,
    resume: bool = False,
    stop_after: int | None = None,
    stop_when: str | None = None,
    _crash_after: str | None = None,
) -> SimResult | None:
    """Run (or resume) one simulation in checkpointed windows.

    ``stop_after=k`` exits (returning ``None``) after writing ``k``
    checkpoint generations -- the deterministic stand-in for "the
    process was killed here" that tests and the torture harness use.
    ``stop_when`` names a :data:`STOP_CONDITIONS` predicate evaluated
    at every checkpoint boundary (and right after a resume restore);
    when it fires the campaign completes early with the state at that
    boundary -- the same boundary on every run shape, so the byte-
    identity contract extends to early-stopped campaigns.  Every other
    parameter matches :func:`~repro.sim.runner.simulate_workload`; the
    completed run returns the identical :class:`~repro.sim.runner.
    SimResult` (with ``result.device`` attached for post-run forensics
    such as per-block wear surveys).

    Recovery reporting: corrupt or audit-failed generations encountered
    while resuming are quarantined and surfaced on the result as
    ``result.run.extra["checkpoint_recovery"]`` (a list of
    :class:`~repro.checkpoint.store.CorruptionReport` dicts).
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    if stop_when is not None and stop_when not in STOP_CONDITIONS:
        raise ValueError(
            f"unknown stop_when {stop_when!r}; "
            f"choose from {sorted(STOP_CONDITIONS)}"
        )
    if isinstance(policy, str):
        policy = policy_by_name(policy)
    if arrivals is None:
        arrivals = ClosedLoopArrivals()
    resolved_checked = checked if checked is not None else default_checked()
    resolved_interval = (
        check_interval if check_interval is not None else default_interval()
    )
    store = CheckpointStore(directory)
    if _crash_after is not None:
        # test/torture hook: simulate a power cut at a named point of
        # the next generation write (see CheckpointStore._maybe_crash).
        store._crash_after = _crash_after
    fingerprint = _fingerprint(
        config,
        workload,
        variant,
        seed,
        secure_fraction,
        write_multiplier,
        policy,
        arrivals,
        resolved_checked,
        resolved_interval,
        faults,
        telemetry is not None,
        checkpoint_every,
        stop_when,
    )
    stored = store.read_campaign_manifest()
    if resume and stored is None:
        raise CampaignMismatchError(
            f"cannot resume: no campaign manifest in {store.root}"
        )
    if stored is not None:
        _check_manifest(stored, fingerprint)
    else:
        store.write_campaign_manifest(fingerprint)

    def build() -> tuple[list, int, SSD, QueueingEngine]:
        requests, steady_start = capture_block_trace(
            config,
            workload,
            seed=seed,
            secure_fraction=secure_fraction,
            write_multiplier=write_multiplier,
        )
        ssd = SSD(
            config,
            variant,
            seed=seed,
            checked=checked,
            check_interval=check_interval,
            faults=faults,
            telemetry=telemetry,
        )
        ssd.instrument_timing(RecordingTiming.from_config(config))
        engine = QueueingEngine(
            ssd, requests, arrivals, policy, steady_start=steady_start
        )
        return requests, steady_start, ssd, engine

    recovery: list[CorruptionReport] = []
    if resume:
        # fall back generation by generation: a checkpoint that decodes
        # but fails restore or the invariant audit is quarantined just
        # like a checksum failure, and the next-older one is tried.
        while True:
            load = store.latest_good()  # raises CheckpointError when dry
            recovery.extend(load.corrupt)
            requests, steady_start, ssd, engine = build()
            try:
                restore_device(ssd, engine, load.sections, audit=True)
            except CheckpointAuditError as exc:
                recovery.append(
                    store.quarantine_generation(
                        load.generation, "audit-failed", str(exc)
                    )
                )
                continue
            except (CodecError, ValueError, KeyError, TypeError) as exc:
                recovery.append(
                    store.quarantine_generation(
                        load.generation, "restore-failed", str(exc)
                    )
                )
                continue
            start = int(load.meta.get("stop", 0))
            break
    else:
        requests, steady_start, ssd, engine = build()
        start = 0

    n = len(requests)
    written = 0
    stop = start
    stop_predicate = None if stop_when is None else STOP_CONDITIONS[stop_when]
    while stop < n:
        if stop_predicate is not None and stop_predicate(ssd):
            break  # fired at a prior boundary (possibly pre-resume)
        stop = min(stop + checkpoint_every, n)
        engine.run_window(stop)
        store.write_generation(
            snapshot_device(ssd, engine),
            meta={"stop": stop, "requests": n},
        )
        written += 1
        if stop_after is not None and written >= stop_after:
            return None

    report = engine._report()
    run = ssd.result()
    run.latency = report.latency
    run.utilization = report.utilization
    if recovery:
        run.extra["checkpoint_recovery"] = [r.to_dict() for r in recovery]
    return SimResult(
        workload=workload,
        variant=variant,
        policy=policy.describe(),
        arrivals=arrivals.describe(),
        requests=n,
        steady_start=steady_start,
        report=report,
        run=run,
        device=ssd,
    )
