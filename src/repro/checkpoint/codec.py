"""Tagged, versioned JSON codec for simulator state.

Plain JSON cannot round-trip the simulator's state: page payloads are
*tuples* (``(lpa, "host", seq)``) that FTL code distinguishes from
lists via ``isinstance``, bad-block tables are sets, allocator queues
are deques, page-status tables hold IntEnums, and the pLock model owns
a NumPy ``Generator``.  Everything that is not a JSON scalar is encoded
as a single-key-tagged object ``{"__t": kind, ...}`` and decoded back
to the exact original type.

Two properties matter more than compactness:

* **Determinism** -- :func:`canonical_dumps` emits sorted-key,
  no-whitespace JSON so the same state always produces the same bytes
  (and therefore the same :func:`section_checksum`).  Sets are emitted
  sorted; every set in the simulator (bad blocks, condemned blocks,
  retired blocks, pending GC victims) is membership-only, so sorting
  does not perturb behavior on restore.
* **Versioned strictness** -- unknown tags and malformed tagged objects
  raise :class:`CodecError` instead of degrading to dicts; a checkpoint
  either decodes exactly or fails loudly so the store can quarantine it.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from enum import Enum
from typing import Any

import numpy as np

from repro.faults import FaultKind
from repro.flash.block import BlockState
from repro.flash.page import PageState
from repro.ftl.page_status import PageStatus
from repro.sim.ops import OpKind
from repro.ssd.request import RequestOp

__all__ = [
    "CodecError",
    "canonical_dumps",
    "decode",
    "encode",
    "section_checksum",
]

TAG = "__t"

# Every enum that may appear in device state.  Decoding looks classes up
# by name, so renaming an enum is a format break (bump FORMAT_VERSION in
# repro.checkpoint.store if you must).
_ENUMS: dict[str, type[Enum]] = {
    cls.__name__: cls
    for cls in (PageState, BlockState, PageStatus, RequestOp, FaultKind, OpKind)
}

_SCALARS = (str, int, float, bool, type(None))


class CodecError(ValueError):
    """A value cannot be encoded, or encoded bytes cannot be decoded."""


def encode(value: Any) -> Any:
    """Map a state value onto JSON-safe primitives, tagging rich types."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, Enum):
        cls = type(value).__name__
        if cls not in _ENUMS:
            raise CodecError(f"unregistered enum type: {cls}")
        return {TAG: "enum", "cls": cls, "name": value.name}
    if isinstance(value, tuple):
        return {TAG: "tuple", "v": [encode(item) for item in value]}
    if isinstance(value, deque):
        return {TAG: "deque", "v": [encode(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        try:
            items = sorted(value)
        except TypeError as exc:  # pragma: no cover - no heterogeneous sets
            raise CodecError(f"unsortable set cannot be checkpointed: {exc}")
        return {TAG: "set", "v": [encode(item) for item in items]}
    if isinstance(value, np.ndarray):
        return {
            TAG: "ndarray",
            "dtype": str(value.dtype),
            "shape": list(value.shape),
            "v": value.ravel().tolist(),
        }
    if isinstance(value, np.generic):
        return {TAG: "npscalar", "dtype": str(value.dtype), "v": value.item()}
    if isinstance(value, np.random.Generator):
        # bit_generator.state is a plain nested dict of ints/strings;
        # Python's json keeps arbitrary-precision ints exact.
        return {TAG: "nprng", "state": encode(value.bit_generator.state)}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and TAG not in value:
            return {k: encode(v) for k, v in value.items()}
        # non-string keys (int ppns, RequestOp, ...) or a colliding
        # literal "__t" key: encode as an explicit item list.
        return {
            TAG: "dict",
            "v": [[encode(k), encode(v)] for k, v in value.items()],
        }
    raise CodecError(f"cannot checkpoint value of type {type(value).__name__}")


def decode(value: Any) -> Any:
    """Inverse of :func:`encode`; strict about unknown tags."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, list):
        return [decode(item) for item in value]
    if isinstance(value, dict):
        tag = value.get(TAG)
        if tag is None:
            return {k: decode(v) for k, v in value.items()}
        if tag == "tuple":
            return tuple(decode(item) for item in value["v"])
        if tag == "deque":
            return deque(decode(item) for item in value["v"])
        if tag == "set":
            return {decode(item) for item in value["v"]}
        if tag == "enum":
            cls = _ENUMS.get(value["cls"])
            if cls is None:
                raise CodecError(f"unknown enum type in checkpoint: {value['cls']}")
            try:
                return cls[value["name"]]
            except KeyError:
                raise CodecError(
                    f"unknown member {value['name']!r} for enum {value['cls']}"
                )
        if tag == "dict":
            return {decode(k): decode(v) for k, v in value["v"]}
        if tag == "ndarray":
            arr = np.array(value["v"], dtype=np.dtype(value["dtype"]))
            return arr.reshape(tuple(value["shape"]))
        if tag == "npscalar":
            return np.dtype(value["dtype"]).type(value["v"])
        if tag == "nprng":
            gen = np.random.default_rng(0)
            gen.bit_generator.state = decode(value["state"])
            return gen
        raise CodecError(f"unknown codec tag: {tag!r}")
    raise CodecError(f"cannot decode value of type {type(value).__name__}")


def canonical_dumps(payload: Any) -> str:
    """Deterministic JSON text: sorted keys, compact separators, newline.

    ``payload`` must already be encoded (JSON-safe).  The trailing
    newline keeps section files POSIX-friendly without affecting the
    checksum contract (the checksum covers the full file content,
    newline included).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def section_checksum(text: str) -> str:
    """SHA-256 hex digest of a section's exact file content."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
