"""Versioned, crash-consistent device-state checkpointing.

The simulator's campaigns (``repro simulate``, ``repro torture``,
``repro bench``) historically ran to completion or not at all; ROADMAP
item 3 names the blocker that removes: lifetime-scale studies need a
durable, restartable representation of *full* device state.  This
package provides it in four pieces:

* :mod:`repro.checkpoint.codec` -- a tagged, versioned JSON codec that
  round-trips every state value the simulator holds (tuples vs. lists,
  sets, deques, enums, ``random.Random`` streams, NumPy generators and
  arrays) byte-exactly, with a canonical serialization for checksums;
* :mod:`repro.checkpoint.store` -- generation directories written via
  write-temp/fsync/atomic-rename with per-section SHA-256 checksums and
  a manifest; corrupt generations (truncated, torn, bit-flipped, stale
  version) are detected, quarantined, and recovery falls back to the
  previous good generation with a structured report;
* :mod:`repro.checkpoint.device` -- snapshot/restore of one SSD +
  engine pair, plus the restore-time invariant audit that replays the
  runtime sanitizer's checks (L2P bijection, block counters,
  unreadability probes on locked and sanitized-stale pages) before any
  operation executes on restored state;
* :mod:`repro.checkpoint.campaign` -- resumable simulation campaigns:
  a request stream chunked into checkpoint windows at quiescent engine
  boundaries, with the determinism contract that an interrupted and
  resumed campaign is byte-identical to the same campaign run
  uninterrupted (see DESIGN.md section 3i).

This package sits outside the ``flash < ftl < ssd < sim < telemetry <
analysis`` layer stack (like ``checkers``): it reaches *down* into
every layer to collect state but is imported only by campaigns, the
CLI, and the analysis harnesses.  Rule SIM15 keeps all serialization
decisions here: ``pickle`` and friends are banned everywhere else.
"""

from repro.checkpoint.codec import (
    canonical_dumps,
    decode,
    encode,
    section_checksum,
)
from repro.checkpoint.store import (
    CheckpointError,
    CheckpointStore,
    CorruptionReport,
    LoadReport,
    StoreCrashInjected,
)
from repro.checkpoint.device import (
    CheckpointAuditError,
    restore_audit,
    restore_device,
    snapshot_device,
)
from repro.checkpoint.campaign import (
    CampaignMismatchError,
    run_chunked_simulation,
)

__all__ = [
    "CampaignMismatchError",
    "CheckpointAuditError",
    "CheckpointError",
    "CheckpointStore",
    "CorruptionReport",
    "LoadReport",
    "StoreCrashInjected",
    "canonical_dumps",
    "decode",
    "encode",
    "restore_audit",
    "restore_device",
    "run_chunked_simulation",
    "section_checksum",
    "snapshot_device",
]
