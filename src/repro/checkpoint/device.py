"""Snapshot/restore of one device (+ engine), with a restore-time audit.

A *snapshot* is a flat ``{section name: state_dict}`` mapping -- one
section per subsystem -- taken at a quiescent engine boundary (no event
in the heap, no request in flight, no deferred lock pulse pending).
Sections deliberately mirror the architecture so a corruption report
names the subsystem, not a byte offset:

=============  =====================================================
``ftl``        mapping/status/allocator/GC/bad-block state + stats
``chips``      per-chip flash arrays, pAP/bAP flags, erase counters
``faults``     fault-plan cursor, RNG stream, injected-fault log
``timing``     busy clocks and work accumulators (t_* validated)
``checker``    the runtime sanitizer's shadow state (checked runs)
``worklog``    per-request device-work samples
``telemetry``  metrics registry + trace-event ring
``engine``     sim clock, arrival cursor, latency/depth recorders
=============  =====================================================

Restore rebuilds the device *constructively* -- the caller constructs a
fresh ``SSD``/engine from the campaign parameters, then
:func:`restore_device` loads every section in place -- so objects keep
their wiring (observers, fault hooks, telemetry taps) and only *state*
travels through the checkpoint.

Before a restored device executes a single operation,
:func:`restore_audit` replays the runtime sanitizer's full invariant
pass (L2P/P2S bijection, block counters, shadow divergence,
unreadability probes on sanitized stale copies) and additionally probes
every pLocked page and bLocked block on every Evanesco chip, asserting
the chip still suppresses the read.  Audit failures raise
:class:`CheckpointAuditError` -- a structured verdict the campaign layer
turns into quarantine + fallback, never a traceback.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import TYPE_CHECKING, Any

from repro.checkers.sanitizer import FtlSanitizer, InvariantViolation
from repro.core.evanesco_chip import EvanescoChip
from repro.flash.chip import ZERO_DATA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import QueueingEngine
    from repro.ssd.device import SSD

__all__ = [
    "CheckpointAuditError",
    "restore_audit",
    "restore_device",
    "snapshot_device",
]


class CheckpointAuditError(Exception):
    """A restored device failed the pre-execution invariant audit.

    Attributes
    ----------
    invariant:
        Which check failed (the sanitizer's invariant names, or
        ``"locked-page-probe"`` / ``"locked-block-probe"`` for the
        Evanesco lock re-verification).
    detail:
        Human-readable description with the offending addresses.
    """

    def __init__(self, invariant: str, detail: str) -> None:
        self.invariant = invariant
        self.detail = detail
        super().__init__(f"[{invariant}] {detail}")


def snapshot_device(
    ssd: SSD, engine: QueueingEngine | None = None
) -> dict[str, Any]:
    """Collect one full device snapshot as ``{section: state}``."""
    ftl = ssd.ftl
    sections: dict[str, Any] = {
        "ftl": ftl.state_dict(),
        "chips": [chip.state_dict() for chip in ftl.chips],
        "faults": (
            None
            if ftl.fault_injector is None
            else ftl.fault_injector.state_dict()
        ),
        "timing": ftl.timing.state_dict(),
        "checker": None if ftl.checker is None else ftl.checker.state_dict(),
        "worklog": ssd.work_log.state_dict(),
        "telemetry": (
            None if ssd.telemetry is None else ssd.telemetry.state_dict()
        ),
    }
    if engine is not None:
        sections["engine"] = engine.state_dict()
    return sections


def restore_device(
    ssd: SSD,
    engine: QueueingEngine | None,
    sections: dict[str, Any],
    audit: bool = True,
) -> None:
    """Load a snapshot into a freshly constructed device (+ engine).

    The target must have been built from the *same campaign parameters*
    (config, variant, seed, fault plan, checked mode) as the snapshotted
    one; the per-section loaders validate the cheap structural half of
    that contract (topology sizes, timing constants, fault plans) and
    raise ``ValueError`` on mismatch.  With ``audit=True`` (the
    default), the restored state must then pass :func:`restore_audit`
    before this function returns.
    """
    ftl = ssd.ftl
    # chips first: the FTL's tables describe what the arrays must hold.
    for chip, payload in zip(ftl.chips, sections["chips"]):
        chip.load_state_dict(payload)
    ftl.load_state_dict(sections["ftl"])
    faults = sections.get("faults")
    if (faults is None) != (ftl.fault_injector is None):
        raise ValueError(
            "checkpoint fault section does not match the configured device "
            f"(snapshot {'has' if faults is not None else 'lacks'} faults)"
        )
    if faults is not None:
        ftl.fault_injector.load_state_dict(faults)
    ftl.timing.load_state_dict(sections["timing"])
    checker = sections.get("checker")
    if checker is not None and ftl.checker is None:
        raise ValueError(
            "checkpoint was taken from a checked run but the restored "
            "device has no sanitizer attached"
        )
    if ftl.checker is not None:
        if checker is None:
            raise ValueError(
                "checkpoint was taken from an unchecked run but the "
                "restored device is checked"
            )
        ftl.checker.load_state_dict(checker)
    ssd.work_log.load_state_dict(sections["worklog"])
    telemetry = sections.get("telemetry")
    if telemetry is not None and ssd.telemetry is not None:
        ssd.telemetry.load_state_dict(telemetry)
    if engine is not None:
        engine.load_state_dict(sections["engine"])
    if audit:
        restore_audit(ssd)


def restore_audit(ssd: SSD) -> None:
    """Replay the sanitizer's invariants against just-restored state.

    Checked devices re-run their (restored) sanitizer's
    ``full_check`` -- shadow divergence included, so a bit-flip that
    survived the checksums but skewed the status table is still caught.
    Unchecked devices get a temporary sanitizer resynced from the
    restored tables, which verifies the structural invariants (bijection,
    counters) and is detached afterwards.

    On Evanesco chips the audit then re-verifies enforcement physically:
    every pLocked page and every page of a bLocked block must still read
    as blocked all-zero data.  Probe reads restore the chip counters and
    run with fault injection suspended, so an audited restore reports
    statistics identical to an unaudited one.
    """
    ftl = ssd.ftl
    checker = ftl.checker
    if checker is not None:
        saved = (checker.full_checks, checker.probes)
        try:
            checker.full_check()
        except InvariantViolation as exc:
            raise CheckpointAuditError(exc.invariant, exc.detail) from exc
        finally:
            checker.full_checks, checker.probes = saved
    else:
        temp = FtlSanitizer(ftl)
        try:
            temp.resync()
            temp.full_check()
        except InvariantViolation as exc:
            raise CheckpointAuditError(exc.invariant, exc.detail) from exc
        finally:
            # detach: the recording observer was chained in front of the
            # FTL's observer by the sanitizer's constructor.
            ftl.observer = ftl.observer._inner
    _probe_locked_pages(ssd)


def _probe_locked_pages(ssd: SSD) -> None:
    """Assert every locked page on every Evanesco chip is unreadable.

    Fault injection and the wear gate are suspended: the probe asserts
    the lock state, and a locked read is blocked before sensing anyway.
    """
    ftl = ssd.ftl
    injector = ftl.fault_injector
    wear_gate = getattr(ftl, "wear_gate", None)
    for chip_id, chip in enumerate(ftl.chips):
        if not isinstance(chip, EvanescoChip):
            continue
        saved_reads = chip.stats.reads
        saved_busy = chip.stats.busy_time_us
        try:
            with ExitStack() as stack:
                if injector is not None:
                    stack.enter_context(injector.suspended())
                if wear_gate is not None:
                    stack.enter_context(wear_gate.suspended())
                _probe_chip(chip_id, chip)
        finally:
            chip.stats.reads = saved_reads
            chip.stats.busy_time_us = saved_busy


def _probe_chip(chip_id: int, chip: EvanescoChip) -> None:
    geometry = chip.geometry
    for block in chip.blocks:
        if chip._bap[block.index].is_disabled(0.0):
            # one probe per bLocked block: the first programmed page
            # must come back blocked (the SSL gate is block-wide).
            for offset, page in enumerate(block.pages):
                if page.is_erased:
                    continue
                ppn = geometry.ppn(block.index, offset)
                result = chip.read_page(ppn)
                if not (result.blocked and result.data == ZERO_DATA):
                    raise CheckpointAuditError(
                        "locked-block-probe",
                        f"chip {chip_id} block {block.index} is bLocked "
                        f"but reading ppn {ppn} returned "
                        f"{result.data!r} (blocked={result.blocked})",
                    )
                break
            continue
        pap = chip._pap[block.index]
        for offset in pap.locked_offsets():
            ppn = geometry.ppn(block.index, offset)
            if not chip.page_locked(ppn):
                # a lock pulse that an injected fault left below the
                # majority threshold: issued but not enforcing; the FTL
                # already re-classified the page, nothing to assert.
                continue
            result = chip.read_page(ppn)
            if not (result.blocked and result.data == ZERO_DATA):
                raise CheckpointAuditError(
                    "locked-page-probe",
                    f"chip {chip_id} ppn {ppn} is pLocked but a read "
                    f"returned {result.data!r} "
                    f"(blocked={result.blocked})",
                )
