"""Crash-consistent generation store for device checkpoints.

One checkpoint *generation* is a directory::

    <root>/
      campaign.json            # campaign manifest (params fingerprint)
      gen-000001/
        MANIFEST.json          # format version + per-section checksums
        ftl.json               # one file per state section
        chips.json
        ...
      gen-000002/
      quarantine/
        gen-000002.bad-checksum/   # corrupt generations moved, not deleted

The write protocol is the classic journaling dance:

1. write every section into ``gen-NNNNNN.tmp/`` (write, flush, fsync);
2. write ``MANIFEST.json`` *last* -- a directory without a manifest is
   by definition torn;
3. fsync the tmp directory, then atomically ``os.rename`` it into
   place, then fsync the parent so the rename itself is durable.

A crash at any point leaves either (a) the previous generations intact
and a stray ``*.tmp`` directory, or (b) the fully-renamed new
generation.  :meth:`CheckpointStore.latest_good` quarantines stray tmp
directories as torn writes, validates manifests and section checksums
newest-first, quarantines anything corrupt (truncated, bit-flipped,
missing sections, stale format version) with a structured
:class:`CorruptionReport`, and falls back to the newest generation that
validates.  Only when *no* generation survives does it raise
:class:`CheckpointError` -- carrying every report, so the caller can
render a diagnosis instead of a traceback.

``_crash_after`` is the torture hook: naming a protocol point (e.g.
``"section:ftl"`` or ``"rename"``) makes the next write raise
:class:`StoreCrashInjected` at exactly that point, leaving the same
on-disk state a power cut there would.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.checkpoint.codec import (
    CodecError,
    canonical_dumps,
    decode,
    encode,
    section_checksum,
)

__all__ = [
    "FORMAT_VERSION",
    "CheckpointError",
    "CheckpointStore",
    "CorruptionReport",
    "LoadReport",
    "StoreCrashInjected",
]

#: bump on any incompatible change to the manifest or codec format.
#: v2: the engine section grew the sanitization-backlog series
#: (``sanitize_backlog`` / ``sanitize_backlog_us``); v1 snapshots lack
#: the keys and must be quarantined as stale, not crash the restore.
FORMAT_VERSION = 2

_MANIFEST = "MANIFEST.json"
_GEN_PREFIX = "gen-"
_CAMPAIGN = "campaign.json"


class StoreCrashInjected(RuntimeError):
    """Raised by the ``_crash_after`` torture hook mid-write."""


@dataclass(frozen=True)
class CorruptionReport:
    """One generation found corrupt, and what was done about it."""

    generation: int
    reason: str
    detail: str
    quarantined_to: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "generation": self.generation,
            "reason": self.reason,
            "detail": self.detail,
            "quarantined_to": self.quarantined_to,
        }


@dataclass
class LoadReport:
    """A successfully loaded generation plus any corruption en route."""

    generation: int
    sections: dict[str, Any]
    meta: dict[str, Any]
    corrupt: list[CorruptionReport] = field(default_factory=list)


class CheckpointError(Exception):
    """No usable checkpoint generation exists.

    Carries the :class:`CorruptionReport` list so callers can print a
    structured account of every generation that was tried and rejected.
    """

    def __init__(self, message: str, reports: list[CorruptionReport]) -> None:
        super().__init__(message)
        self.reports = reports

    def render(self) -> str:
        lines = [f"checkpoint recovery failed: {self}"]
        for report in self.reports:
            lines.append(
                f"  gen {report.generation:06d}: {report.reason}"
                f" ({report.detail}) -> quarantined as"
                f" {report.quarantined_to}"
            )
        if not self.reports:
            lines.append("  (no checkpoint generations present)")
        return "\n".join(lines)


def _fsync_path(path: Path) -> None:
    """fsync a file or directory so a preceding write/rename is durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class CheckpointStore:
    """Generation-directory checkpoint store under one root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: torture hook -- a protocol point name at which the next
        #: :meth:`write_generation` raises :class:`StoreCrashInjected`:
        #: ``"section:<name>"`` (after that section file is written),
        #: ``"manifest"`` (after the manifest, before the rename), or
        #: ``"rename"`` (after the rename, before the parent fsync).
        self._crash_after: str | None = None

    # -- campaign manifest ---------------------------------------------
    def write_campaign_manifest(self, manifest: dict[str, Any]) -> None:
        """Atomically write the campaign parameter fingerprint."""
        text = canonical_dumps(encode(manifest))
        tmp = self.root / (_CAMPAIGN + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.rename(tmp, self.root / _CAMPAIGN)
        _fsync_path(self.root)

    def read_campaign_manifest(self) -> dict[str, Any] | None:
        """The campaign fingerprint, or None when absent/unreadable."""
        path = self.root / _CAMPAIGN
        try:
            return decode(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, ValueError, CodecError):
            return None

    # -- generation enumeration ----------------------------------------
    @staticmethod
    def _gen_name(generation: int) -> str:
        return f"{_GEN_PREFIX}{generation:06d}"

    def _gen_path(self, generation: int) -> Path:
        return self.root / self._gen_name(generation)

    def generations(self) -> list[int]:
        """Fully-renamed generation numbers, ascending."""
        found = []
        for entry in self.root.iterdir():
            name = entry.name
            if not entry.is_dir() or not name.startswith(_GEN_PREFIX):
                continue
            if name.endswith(".tmp"):
                continue
            suffix = name[len(_GEN_PREFIX):]
            if suffix.isdigit():
                found.append(int(suffix))
        return sorted(found)

    # -- writing -------------------------------------------------------
    def _maybe_crash(self, point: str) -> None:
        if self._crash_after == point:
            self._crash_after = None
            raise StoreCrashInjected(f"injected power loss after {point!r}")

    def write_generation(
        self, sections: dict[str, Any], meta: dict[str, Any] | None = None
    ) -> int:
        """Write one new generation durably; returns its number.

        Sections are raw state values; this encodes, checksums, and
        writes each to its own file, then the manifest, then performs
        the atomic rename.  A crash (real or injected via
        ``_crash_after``) at any point never damages prior generations.
        """
        generation = (self.generations() or [0])[-1] + 1
        final = self._gen_path(generation)
        tmp = self.root / (self._gen_name(generation) + ".tmp")
        if tmp.exists():  # pragma: no cover - stale from a prior crash
            shutil.rmtree(tmp)
        tmp.mkdir()
        checksums: dict[str, dict[str, Any]] = {}
        for name in sorted(sections):
            text = canonical_dumps(encode(sections[name]))
            path = tmp / f"{name}.json"
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            checksums[name] = {
                "checksum": section_checksum(text),
                "size": len(text.encode("utf-8")),
            }
            self._maybe_crash(f"section:{name}")
        manifest = {
            "format_version": FORMAT_VERSION,
            "generation": generation,
            "sections": checksums,
            "meta": dict(meta or {}),
        }
        text = canonical_dumps(manifest)
        with open(tmp / _MANIFEST, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_path(tmp)
        self._maybe_crash("manifest")
        os.rename(tmp, final)
        self._maybe_crash("rename")
        _fsync_path(self.root)
        return generation

    # -- quarantine + recovery -----------------------------------------
    def quarantine(self, path: Path, reason: str) -> Path:
        """Move a directory into ``quarantine/`` tagged with the reason."""
        qdir = self.root / "quarantine"
        qdir.mkdir(exist_ok=True)
        target = qdir / f"{path.name}.{reason}"
        n = 1
        while target.exists():  # pragma: no cover - repeat corruption
            n += 1
            target = qdir / f"{path.name}.{reason}.{n}"
        os.rename(path, target)
        return target

    def quarantine_generation(
        self, generation: int, reason: str, detail: str
    ) -> CorruptionReport:
        """Quarantine a fully-renamed generation (e.g. a failed audit)."""
        target = self.quarantine(self._gen_path(generation), reason)
        return CorruptionReport(
            generation=generation,
            reason=reason,
            detail=detail,
            quarantined_to=target.name,
        )

    def _validate_generation(self, generation: int) -> tuple[dict, dict]:
        """Raise ValueError on any corruption; return (sections, meta)."""
        path = self._gen_path(generation)
        manifest_path = path / _MANIFEST
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ValueError("missing-manifest: MANIFEST.json absent")
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"bad-manifest: {exc}")
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"stale-version: format_version={version!r},"
                f" expected {FORMAT_VERSION}"
            )
        listed = manifest.get("sections")
        if not isinstance(listed, dict):
            raise ValueError("bad-manifest: sections table missing")
        sections: dict[str, Any] = {}
        for name in sorted(listed):
            entry = listed[name]
            section_path = path / f"{name}.json"
            try:
                text = section_path.read_text(encoding="utf-8")
            except FileNotFoundError:
                raise ValueError(f"missing-section: {name}.json absent")
            except OSError as exc:  # pragma: no cover - I/O error
                raise ValueError(f"unreadable-section: {name}: {exc}")
            if section_checksum(text) != entry.get("checksum"):
                raise ValueError(
                    f"bad-checksum: section {name!r} does not match manifest"
                )
            try:
                sections[name] = decode(json.loads(text))
            except (json.JSONDecodeError, CodecError) as exc:
                # checksum matched, so the *write* was intact but the
                # content is undecodable -- a format bug, still quarantine.
                raise ValueError(f"undecodable-section: {name}: {exc}")
        return sections, manifest.get("meta", {})

    def sweep_torn_writes(self) -> list[CorruptionReport]:
        """Quarantine stray ``*.tmp`` generation dirs (torn writes)."""
        reports = []
        for entry in sorted(self.root.iterdir()):
            name = entry.name
            if entry.is_dir() and name.startswith(_GEN_PREFIX) and name.endswith(".tmp"):
                suffix = name[len(_GEN_PREFIX):-len(".tmp")]
                generation = int(suffix) if suffix.isdigit() else -1
                target = self.quarantine(entry, "torn-write")
                reports.append(
                    CorruptionReport(
                        generation=generation,
                        reason="torn-write",
                        detail="tmp directory left by an interrupted write",
                        quarantined_to=target.name,
                    )
                )
        return reports

    def latest_good(self) -> LoadReport:
        """Newest generation that validates, quarantining the corrupt.

        Scans newest-first.  Each corrupt generation is moved into
        ``quarantine/`` and recorded; the first one that validates wins.
        Raises :class:`CheckpointError` (with every report) when none do.
        """
        corrupt = self.sweep_torn_writes()
        for generation in reversed(self.generations()):
            try:
                sections, meta = self._validate_generation(generation)
            except ValueError as exc:
                reason, _, detail = str(exc).partition(": ")
                corrupt.append(
                    self.quarantine_generation(generation, reason, detail)
                )
                continue
            return LoadReport(
                generation=generation,
                sections=sections,
                meta=meta,
                corrupt=corrupt,
            )
        raise CheckpointError(
            "no valid checkpoint generation found", corrupt
        )
