"""The Section 5.1 threat model: a raw-chip forensic attacker.

The attacker de-solders every flash chip and replays read commands over
all known interfaces, bypassing the file system and the FTL entirely.
Encryption does not stop them (they can obtain keys), but they cannot
probe individual cells with an SEM -- they are limited to the chip's
command interface, which is exactly the boundary Evanesco defends:
the pAP/bAP checks run *inside* the chip on every read.

:class:`RawChipAttacker` therefore sees, for each chip:

* on a plain chip -- every programmed page, including logically-invalid
  stale data (the data-versioning vulnerability of Section 3);
* on an Evanesco chip -- only pages whose pAP flag and block bAP flag
  are still enabled (locked data reads as zeros).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ftl.base import PageMappedFtl
from repro.ssd.device import SSD


@dataclass
class RecoveredPage:
    """One page of data the attacker managed to read."""

    gppa: int
    payload: object

    @property
    def lpa(self) -> int | None:
        """LPA recorded in the payload token, if it is host data.

        Host payload tokens are ``(lpa, file_tag, seq)``; opaque payloads
        (scrub residue, ciphertext with no usable key) carry no metadata.
        """
        if (
            isinstance(self.payload, tuple)
            and len(self.payload) == 3
            and isinstance(self.payload[0], int)
        ):
            return self.payload[0]
        return None

    @property
    def file_tag(self) -> object:
        """File id recorded in the payload token, if any."""
        if self.lpa is None:
            return None
        return self.payload[1]


@dataclass
class ForensicImage:
    """Everything the attacker recovered from the device."""

    pages: list[RecoveredPage] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pages)

    def pages_of_file(self, file_tag: object) -> list[RecoveredPage]:
        return [p for p in self.pages if p.file_tag == file_tag]

    def payloads_of_lpa(self, lpa: int) -> list[object]:
        return [p.payload for p in self.pages if p.lpa == lpa]

    def file_tags(self) -> set[object]:
        return {p.file_tag for p in self.pages if p.file_tag is not None}


class RawChipAttacker:
    """Executes the strongest read-everything attack the model allows."""

    def __init__(self, ssd: SSD) -> None:
        self.ssd = ssd

    def image_device(self) -> ForensicImage:
        """Dump every readable page from every chip."""
        ftl: PageMappedFtl = self.ssd.ftl
        image = ForensicImage()
        for gppa, payload in sorted(ftl.raw_device_dump().items()):
            image.pages.append(RecoveredPage(gppa, payload))
        return image

    def recover_file(self, file_tag: object) -> list[RecoveredPage]:
        """All data of one file the attacker can still read."""
        return self.image_device().pages_of_file(file_tag)

    def stale_versions_of(self, lpa: int) -> list[object]:
        """Every recoverable version of one logical page.

        On an insecure SSD, an overwritten LPA yields multiple payload
        tokens (the live one plus stale ones) -- the data versioning
        problem.  A sanitizing SSD must yield at most the live version.
        """
        return self.image_device().payloads_of_lpa(lpa)


class KeyCompromiseAttacker(RawChipAttacker):
    """The stronger Section 5.1 attacker against encryption-based SSDs.

    "If the storage system is encrypted, the attacker can obtain any
    necessary passwords and encryption keys" -- modelled as a cold-boot
    snapshot of the controller's key store.  Any ciphertext whose key is
    in the snapshot decrypts, *even if the FTL deleted the key later*:
    key deletion only sanitizes against attackers who never held the key.
    """

    def snapshot_keys(self) -> frozenset[int]:
        """Cold-boot: capture every key currently in controller memory."""
        store = getattr(self.ssd.ftl, "key_store", None)
        if store is None:
            return frozenset()
        return frozenset(store)

    def image_with_keys(self, keys: frozenset[int]) -> ForensicImage:
        """Dump the chips and decrypt everything the snapshot unlocks."""
        from repro.ftl.crypto_based import is_ciphertext

        image = ForensicImage()
        for gppa, payload in sorted(self.ssd.ftl.raw_device_dump().items()):
            if is_ciphertext(payload):
                _, key_id, plaintext = payload
                if key_id in keys:
                    image.pages.append(RecoveredPage(gppa, plaintext))
                # ciphertext without the key is noise: omitted
            else:
                image.pages.append(RecoveredPage(gppa, payload))
        return image

    def recover_file_with_keys(
        self, file_tag: object, keys: frozenset[int]
    ) -> list[RecoveredPage]:
        return self.image_with_keys(keys).pages_of_file(file_tag)
