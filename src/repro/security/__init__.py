"""Threat model (Section 5.1) and sanitization auditing (C1/C2)."""

from repro.security.attacker import (
    ForensicImage,
    KeyCompromiseAttacker,
    RawChipAttacker,
    RecoveredPage,
)
from repro.security.audit import (
    AuditReport,
    SanitizationAuditor,
    Violation,
    collect_live_versions,
)

__all__ = [
    "AuditReport",
    "ForensicImage",
    "KeyCompromiseAttacker",
    "RawChipAttacker",
    "RecoveredPage",
    "SanitizationAuditor",
    "Violation",
    "collect_live_versions",
]
