"""Sanitization auditor: checks the paper's C1/C2 conditions.

Section 1 defines data sanitization for a set of files F:

* **C1** -- after a file f is deleted, the storage system stores no
  content of f;
* **C2** -- after a file f is updated, the storage system keeps no *old*
  content of f.

The auditor runs the Section 5.1 attacker against the device and decides
whether either condition is violated for the audited files.  "Stores no
content" is evaluated at the attacker boundary: data behind a pLock/bLock
is unreadable through every interface, hence sanitized (the paper's
central claim); data that is merely FTL-invalid on a plain chip is NOT
sanitized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.security.attacker import RawChipAttacker
from repro.ssd.device import SSD


@dataclass(frozen=True)
class Violation:
    """One recoverable page that should have been sanitized."""

    condition: str  # "C1" or "C2"
    file_tag: object
    gppa: int
    payload: object


@dataclass
class AuditReport:
    """Outcome of one audit pass."""

    violations: list[Violation] = field(default_factory=list)
    checked_files: int = 0
    checked_lpas: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations


class SanitizationAuditor:
    """Checks C1 (deleted files) and C2 (updated pages) via the attacker."""

    def __init__(self, ssd: SSD) -> None:
        self.ssd = ssd
        self.attacker = RawChipAttacker(ssd)

    # ------------------------------------------------------------------
    def audit_deleted_files(self, deleted_tags: set[object]) -> AuditReport:
        """C1: no content of any deleted file may be recoverable."""
        image = self.attacker.image_device()
        report = AuditReport(checked_files=len(deleted_tags))
        for page in image.pages:
            if page.file_tag in deleted_tags:
                report.violations.append(
                    Violation("C1", page.file_tag, page.gppa, page.payload)
                )
        return report

    def audit_updated_lpas(
        self, live_versions: dict[int, object]
    ) -> AuditReport:
        """C2: each live LPA may be recoverable in its newest version only.

        ``live_versions`` maps LPA -> the payload the host last wrote
        (the version that is allowed to survive).
        """
        image = self.attacker.image_device()
        report = AuditReport(checked_lpas=len(live_versions))
        for page in image.pages:
            lpa = page.lpa
            if lpa is None or lpa not in live_versions:
                continue
            if page.payload != live_versions[lpa]:
                report.violations.append(
                    Violation("C2", page.file_tag, page.gppa, page.payload)
                )
        return report

    # ------------------------------------------------------------------
    def exposure_summary(self) -> dict[str, int]:
        """How much of the device the attacker can read at all."""
        image = self.attacker.image_device()
        return {
            "readable_pages": len(image),
            "distinct_files": len(image.file_tags()),
        }


def collect_live_versions(
    ssd: SSD, lpas: set[int] | None = None
) -> dict[int, object]:
    """Ground truth: payload of each mapped LPA as the FTL would serve it.

    ``lpas`` restricts the collection, e.g. to the LPAs of files under
    the sanitization contract -- C2 does not cover ``O_INSEC`` data.
    """
    ftl = ssd.ftl
    out: dict[int, object] = {}
    candidates = lpas if lpas is not None else range(ftl.l2p.logical_pages)
    for lpa in candidates:
        gppa = ftl.l2p.lookup(lpa)
        if gppa < 0:
            continue
        chip_id, ppn = ftl.split_gppa(gppa)
        block_index, offset = ftl.geometry.split_ppn(ppn)
        page = ftl.chips[chip_id].blocks[block_index].page(offset)
        out[lpa] = page.data
    return out
