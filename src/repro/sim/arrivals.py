"""Load generators: when host requests arrive at the device.

The open-loop occupancy model answers "how fast can the device go when
the queue never empties"; the arrival processes here are what let the
engine ask everything else:

* :class:`ClosedLoopArrivals` -- a fixed number of outstanding requests
  (queue depth QD); a completion immediately releases the next request.
  This is how fio/FlashBench-style benchmarks drive a device, and at
  high QD it reproduces the open-loop saturation point (the agreement
  cross-check uses it).
* :class:`PoissonArrivals` -- open arrivals at a target rate with
  exponential inter-arrival times; the M/G/k-ish regime of "millions of
  independent users".
* :class:`BurstyArrivals` -- a Markov-modulated Poisson process
  alternating exponentially-distributed ON bursts and OFF silences; the
  regime where background sanitization either hides in the gaps or
  collides with the next burst.

Every process owns a ``random.Random(seed)``; two instances with the
same seed emit the identical arrival sequence (rule SIM07 bans the
module-level RNG in this package outright).
"""

from __future__ import annotations

import random


class ArrivalProcess:
    """Base class: either closed-loop or an inter-arrival time source."""

    #: closed-loop processes dispatch on completion, not on a timer.
    closed_loop = False
    name = "arrival"

    def interarrival_us(self) -> float:
        """Time until the next arrival (open-loop processes only)."""
        raise NotImplementedError

    def describe(self) -> dict[str, object]:
        return {"name": self.name}

    # checkpoint support: stateless processes round-trip an empty dict;
    # RNG-owning subclasses override both methods.
    def state_dict(self) -> dict[str, object]:
        return {}

    def load_state_dict(self, state: dict[str, object]) -> None:
        pass


class ClosedLoopArrivals(ArrivalProcess):
    """Fixed queue depth: QD requests in flight whenever work remains."""

    closed_loop = True
    name = "closed"

    def __init__(self, queue_depth: int = 32) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.queue_depth = queue_depth

    def describe(self) -> dict[str, object]:
        return {"name": self.name, "queue_depth": self.queue_depth}


class PoissonArrivals(ArrivalProcess):
    """Open arrivals at ``rate_iops`` with exponential gaps."""

    name = "poisson"

    def __init__(self, rate_iops: float, seed: int = 0) -> None:
        if not rate_iops > 0.0:
            raise ValueError("rate_iops must be positive")
        self.rate_iops = rate_iops
        self.mean_us = 1e6 / rate_iops
        self._rng = random.Random(seed)

    def interarrival_us(self) -> float:
        return self._rng.expovariate(1.0 / self.mean_us)

    def describe(self) -> dict[str, object]:
        return {"name": self.name, "rate_iops": self.rate_iops}

    def state_dict(self) -> dict[str, object]:
        return {"rng_state": self._rng.getstate()}

    def load_state_dict(self, state: dict[str, object]) -> None:
        self._rng.setstate(state["rng_state"])


class BurstyArrivals(ArrivalProcess):
    """ON/OFF modulated Poisson: bursts at ``burst_rate_iops``, then silence.

    ON and OFF period lengths are exponential with means ``on_mean_us``
    and ``off_mean_us``.  An arrival gap that outlives the current ON
    period is carried across the OFF silence into the next burst, so the
    sequence is a single deterministic stream from one seeded RNG.
    """

    name = "bursty"

    def __init__(
        self,
        burst_rate_iops: float,
        on_mean_us: float = 5_000.0,
        off_mean_us: float = 20_000.0,
        seed: int = 0,
    ) -> None:
        if not burst_rate_iops > 0.0:
            raise ValueError("burst_rate_iops must be positive")
        if not (on_mean_us > 0.0 and off_mean_us > 0.0):
            raise ValueError("on/off period means must be positive")
        self.burst_rate_iops = burst_rate_iops
        self.mean_us = 1e6 / burst_rate_iops
        self.on_mean_us = on_mean_us
        self.off_mean_us = off_mean_us
        self._rng = random.Random(seed)
        self._on_left_us = self._rng.expovariate(1.0 / on_mean_us)

    def interarrival_us(self) -> float:
        elapsed = 0.0
        while True:
            gap = self._rng.expovariate(1.0 / self.mean_us)
            if gap < self._on_left_us:
                self._on_left_us -= gap
                return elapsed + gap
            # the burst ended before the next arrival: spend the rest of
            # the ON window, sleep through an OFF window, start a fresh
            # burst, and draw again inside it.
            elapsed += self._on_left_us
            elapsed += self._rng.expovariate(1.0 / self.off_mean_us)
            self._on_left_us = self._rng.expovariate(1.0 / self.on_mean_us)

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "burst_rate_iops": self.burst_rate_iops,
            "on_mean_us": self.on_mean_us,
            "off_mean_us": self.off_mean_us,
        }

    def state_dict(self) -> dict[str, object]:
        return {
            "rng_state": self._rng.getstate(),
            "on_left_us": self._on_left_us,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self._rng.setstate(state["rng_state"])
        self._on_left_us = state["on_left_us"]
